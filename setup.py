"""Setup shim for environments without the `wheel` package.

The project metadata lives in pyproject.toml; this file only exists so that
`pip install -e . --no-use-pep517` (legacy editable install) works in offline
environments that lack the wheel build backend.
"""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="Reproduction of C3D: Mitigating the NUMA Bottleneck via Coherent DRAM Caches (MICRO 2016)",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy"],
)
