#!/usr/bin/env python3
"""Reproduce the paper's motivation (Table I + Fig. 2) on a few workloads.

The paper motivates DRAM caches by showing that (a) ~75 % of memory accesses
go to remote sockets even under first-touch placement and (b) the NUMA
bottleneck is inter-socket *latency*, not bandwidth: idealising the QPI
latency to zero gives double-digit speedups while infinite bandwidth gives
almost nothing.

Run with::

    python examples/numa_bottleneck.py            # 3 workloads, ~a minute
    python examples/numa_bottleneck.py --all      # all nine workloads
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

import argparse

from repro.api import ExperimentContext, ExperimentSettings
from repro.experiments.fig2 import format_fig2, run_fig2
from repro.experiments.table1 import format_table1, run_table1

QUICK_WORKLOADS = ["streamcluster", "facesim", "cassandra"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true", help="run all nine workloads")
    args = parser.parse_args()

    settings = ExperimentSettings(
        scale=1024, accesses_per_thread=1500, warmup_accesses_per_thread=500
    )
    context = ExperimentContext(settings)
    if not args.all:
        context.workloads = lambda: QUICK_WORKLOADS

    print("== Table I: where do memory accesses go under first-touch placement? ==\n")
    measured = run_table1(context)
    print(format_table1(measured))

    print("\n== Fig. 2: is the bottleneck latency or bandwidth? ==\n")
    series = run_fig2(context)
    print(format_fig2(series))

    zero_latency = series["geomean"]["0_qpi_lat"]
    infinite_bw = series["geomean"]["inf_mem_bw + inf_qpi_bw"]
    print(
        f"\nZero inter-socket latency buys {100 * (zero_latency - 1):.1f} % on average, "
        f"infinite bandwidth only {100 * (infinite_bw - 1):.1f} % -- latency is the "
        "bottleneck, which is what private DRAM caches attack."
    )


if __name__ == "__main__":
    main()
