#!/usr/bin/env python3
"""Quickstart: simulate one workload on a C3D machine and print what happened.

This is the smallest end-to-end use of the library: build the paper's
quad-socket machine (scaled down so the run takes seconds), generate a
synthetic `streamcluster` trace, run it under the C3D coherence design and
print the cache behaviour, AMAT breakdown and NUMA traffic statistics.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NumaSystem, Simulator, SystemConfig, amat_breakdown, make_workload

#: Scale factor applied to capacities and working sets (see DESIGN.md §5).
SCALE = 512
ACCESSES_PER_CORE = 2000
WARMUP_PER_CORE = 500


def main() -> None:
    # 1. Describe the machine: 4 sockets x 8 cores, 1 GB DRAM cache per socket
    #    (divided by SCALE), kept coherent with the C3D protocol.
    config = SystemConfig.quad_socket(protocol="c3d").scaled(SCALE)
    print(f"Machine     : {config.describe()}")

    # 2. Build the machine and a workload whose working set is scaled the same way.
    system = NumaSystem(config)
    workload = make_workload(
        "streamcluster",
        scale=SCALE,
        accesses_per_thread=ACCESSES_PER_CORE + WARMUP_PER_CORE,
        num_threads=config.total_cores,
    )
    print(f"Workload    : {workload.name}, {workload.num_threads} threads, "
          f"~{workload.total_footprint_bytes() / 2**20:.1f} MB footprint (scaled)")

    # 3. Run: pre-warm the DRAM caches, discard a short warm-up window, measure.
    simulator = Simulator(system, workload)
    result = simulator.run(warmup_accesses_per_core=WARMUP_PER_CORE, prewarm=True)

    # 4. Report.
    stats = result.stats
    print(f"\nSimulated {result.accesses_executed} memory accesses "
          f"in {result.total_time_ns / 1000:.1f} simulated us")
    print(f"L1 hit rate         : {stats.l1_hit_rate() * 100:5.1f} %")
    print(f"LLC hit rate        : {stats.llc_hit_rate() * 100:5.1f} %")
    print(f"DRAM cache hit rate : {stats.dram_cache_hit_rate() * 100:5.1f} %")
    print(f"Remote memory frac. : {stats.remote_memory_fraction() * 100:5.1f} %")
    print(f"Inter-socket bytes  : {result.inter_socket_bytes}")
    print(f"Broadcast invalidations sent: {stats.broadcasts}")
    print()
    print(amat_breakdown(stats).format())

    violations = system.check_invariants()
    print(f"\nCoherence invariant check: {'OK' if not violations else violations}")


if __name__ == "__main__":
    main()
