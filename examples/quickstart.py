#!/usr/bin/env python3
"""Quickstart: simulate a workload, record its trace, and replay it exactly.

The smallest end-to-end use of the library, in three steps:

1. build the paper's quad-socket machine (scaled down so the run takes
   seconds), generate a synthetic ``streamcluster`` trace, run it under the
   C3D coherence design and print the cache/NUMA statistics;
2. record the same workload to a trace directory on disk
   (``record_workload``), the API behind ``repro --record-trace``;
3. replay the recorded traces (``TraceDirWorkload``, the API behind
   ``repro --trace-dir``) and check the replay statistics are bit-identical
   to the direct run.

The equivalent CLI commands::

    PYTHONPATH=src python -m repro --workload streamcluster --record-trace traces/sc
    PYTHONPATH=src python -m repro --trace-dir traces/sc

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

# Everything a script needs comes from the one stable facade.
from repro.api import (
    SystemConfig,
    TraceDirWorkload,
    amat_breakdown,
    make_workload,
    record_workload,
    simulate,
)

#: Scale factor applied to capacities and working sets (see DESIGN.md §5).
SCALE = 512
ACCESSES_PER_CORE = 2000
WARMUP_PER_CORE = 500


def run_once(workload) -> "object":
    """Build a fresh machine, run ``workload`` on it, return the result.

    ``repro.api.simulate`` wires the machine, runs the engine and checks
    the coherence invariants in one call.
    """
    config = SystemConfig.quad_socket(protocol="c3d").scaled(SCALE)
    return simulate(config, workload,
                    warmup_accesses_per_core=WARMUP_PER_CORE, prewarm=True)


def main() -> None:
    # 1. Describe the machine: 4 sockets x 8 cores, 1 GB DRAM cache per socket
    #    (divided by SCALE), kept coherent with the C3D protocol.
    config = SystemConfig.quad_socket(protocol="c3d").scaled(SCALE)
    print(f"Machine     : {config.describe()}")

    # 2. A workload whose working set is scaled the same way as the machine.
    workload = make_workload(
        "streamcluster",
        scale=SCALE,
        accesses_per_thread=ACCESSES_PER_CORE + WARMUP_PER_CORE,
        num_threads=config.total_cores,
    )
    print(f"Workload    : {workload.name}, {workload.num_threads} threads, "
          f"~{workload.total_footprint_bytes() / 2**20:.1f} MB footprint (scaled)")

    # 3. Run: pre-warm the DRAM caches, discard a short warm-up window, measure.
    result = run_once(workload)

    # 4. Report.
    stats = result.stats
    print(f"\nSimulated {result.accesses_executed} memory accesses "
          f"in {result.total_time_ns / 1000:.1f} simulated us")
    print(f"L1 hit rate         : {stats.l1_hit_rate() * 100:5.1f} %")
    print(f"LLC hit rate        : {stats.llc_hit_rate() * 100:5.1f} %")
    print(f"DRAM cache hit rate : {stats.dram_cache_hit_rate() * 100:5.1f} %")
    print(f"Remote memory frac. : {stats.remote_memory_fraction() * 100:5.1f} %")
    print(f"Inter-socket bytes  : {result.inter_socket_bytes}")
    print(f"Broadcast invalidations sent: {stats.broadcasts}")
    print()
    print(amat_breakdown(stats).format())

    # 5. Record the workload to per-core trace files (the `--record-trace`
    #    path) and replay them from disk (the `--trace-dir` path).  Replay is
    #    exact: the trace directory's manifest captures the memory-region
    #    hints, so page placement, pre-warm content and therefore every
    #    statistic match the direct run bit for bit.
    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp) / "streamcluster-trace"
        record_workload(workload, trace_dir, trace_format="bin.gz")
        n_files = len(list(trace_dir.iterdir()))
        print(f"\nRecorded {n_files - 1} per-core traces + manifest -> {trace_dir}")

        replayed = run_once(TraceDirWorkload(trace_dir))
        identical = (
            replayed.stats.as_dict() == stats.as_dict()
            and replayed.total_time_ns == result.total_time_ns
            and replayed.inter_socket_bytes == result.inter_socket_bytes
        )
        print(f"Replayed    : {replayed.accesses_executed} accesses from disk")
        print(f"Replay statistics bit-identical to direct run: "
              f"{'OK' if identical else 'MISMATCH'}")
        assert identical, "trace replay diverged from the direct run"


if __name__ == "__main__":
    main()
