#!/usr/bin/env python3
"""Compare the coherent-DRAM-cache designs head to head (the paper's Fig. 6).

For each selected workload the script runs the no-DRAM-cache baseline plus
the four coherent DRAM-cache designs (snoopy, full-dir, c3d, c3d-full-dir) on
the quad-socket machine and reports speedups, DRAM-cache hit rates and the
remote-DRAM-cache pathology counts that explain *why* the naive designs fall
behind C3D.

Run with::

    python examples/design_comparison.py
    python examples/design_comparison.py --workloads streamcluster nutch
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

import argparse

from repro.api import (
    DESIGNS,
    ExperimentContext,
    ExperimentSettings,
    format_table,
    speedup,
)

DEFAULT_WORKLOADS = ["streamcluster", "facesim", "nutch"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--scale", type=int, default=1024)
    parser.add_argument("--accesses", type=int, default=1500)
    args = parser.parse_args()

    settings = ExperimentSettings(
        scale=args.scale,
        accesses_per_thread=args.accesses,
        warmup_accesses_per_thread=args.accesses // 3,
    )
    context = ExperimentContext(settings)

    for workload in args.workloads:
        baseline = context.run(workload, "baseline")
        rows = []
        for design in DESIGNS:
            record = context.run(workload, design)
            stats = record.stats
            rows.append(
                [
                    design,
                    speedup(baseline, record),
                    stats.dram_cache_hit_rate(),
                    stats.amat_ns(),
                    stats.served_remote_dram_cache,
                    stats.broadcasts,
                    record.inter_socket_bytes / max(1, baseline.inter_socket_bytes),
                ]
            )
        print(
            format_table(
                [
                    "design", "speedup", "dram$ hit", "amat (ns)",
                    "remote dram$ hits", "broadcasts", "traffic vs base",
                ],
                rows,
                title=f"{workload}: coherent DRAM-cache designs on the 4-socket machine",
            )
        )
        print()

    print(
        "Reading the table: C3D keeps the local DRAM-cache hit rate of the other\n"
        "designs but never services a read from a *remote* DRAM cache (that column\n"
        "is zero), which is exactly the slow-remote-hit pathology that drags the\n"
        "snoopy and full-dir designs down."
    )


if __name__ == "__main__":
    main()
