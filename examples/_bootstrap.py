"""Make ``import repro`` work when the examples run from a source checkout.

The test suite gets ``src/`` on ``sys.path`` from ``pyproject.toml``'s
``pythonpath = ["src"]``, and installed usage gets it from the package
metadata -- but ``python examples/quickstart.py`` from a bare checkout has
neither.  Each example imports this module first; it appends ``../src`` to
``sys.path`` only when ``repro`` is not already importable, so an installed
copy always wins.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:  # an installed (or PYTHONPATH-provided) repro takes precedence
    import repro  # noqa: F401
except ImportError:  # pragma: no cover - depends on invocation environment
    _SRC = Path(__file__).resolve().parent.parent / "src"
    if _SRC.is_dir():
        sys.path.insert(0, str(_SRC))
    import repro  # noqa: F401
