#!/usr/bin/env python3
"""Study the NUMA memory-placement policies (paper section V, "Memory
Allocation Policy").

The paper profiles every workload under three placement policies --
interleave (INT), first-touch from application start (FT1) and first-touch
from the start of the parallel region (FT2) -- and uses the best one per
workload.  FT1 usually loses badly because the single-threaded initialisation
phase pulls the whole data set onto socket 0, concentrating all memory traffic
on one memory controller.

This example reproduces that profiling run for a couple of workloads on the
baseline machine and reports execution time, remote-access fraction and how
unevenly pages ended up spread over the sockets.

Run with::

    python examples/memory_placement_study.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

from dataclasses import replace

from repro.api import ExperimentContext, ExperimentSettings, format_table

POLICIES = ("interleave", "ft1", "ft2")
WORKLOADS = ("streamcluster", "tunkrank")


def main() -> None:
    settings = ExperimentSettings(
        scale=1024, accesses_per_thread=1500, warmup_accesses_per_thread=500
    )

    for workload in WORKLOADS:
        rows = []
        reference_time = None
        for policy in POLICIES:
            context = ExperimentContext(replace(settings, allocation_policy=policy))
            record = context.run(workload, "baseline")
            if reference_time is None:
                reference_time = record.total_time_ns
            rows.append(
                [
                    policy,
                    record.total_time_ns / 1000.0,
                    reference_time / record.total_time_ns,
                    f"{record.stats.remote_memory_fraction() * 100:.1f}%",
                    f"{record.stats.amat_ns():.1f}",
                ]
            )
        print(
            format_table(
                ["policy", "exec time (us)", "speedup vs interleave",
                 "remote accesses", "AMAT (ns)"],
                rows,
                title=f"{workload}: memory placement policies on the baseline machine",
            )
        )
        print()

    print(
        "FT1 concentrates the shared data on socket 0 (every page is first touched\n"
        "by the initialisation thread), so its remote fraction and AMAT are the\n"
        "worst of the three; FT2 and interleave spread pages across the sockets,\n"
        "which is why the paper profiles per workload and picks the best."
    )


if __name__ == "__main__":
    main()
