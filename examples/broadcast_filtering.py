#!/usr/bin/env python3
"""Evaluate C3D's TLB-based broadcast filter (paper section IV-D / VI-C).

C3D broadcasts invalidations when a write misses on a block the directory
does not track.  For thread-private data those broadcasts are unnecessary, so
the paper adds a page-table/TLB classifier that marks pages private until a
second thread touches them, and skips the broadcast for private pages.

This example runs C3D with and without the filter on a multi-threaded
workload (facesim) and on the single-threaded SPEC workload mcf, reproducing
the paper's conclusion: the filter removes essentially *all* broadcasts for
mcf but has a small effect on overall traffic because data packets dominate.

Run with::

    python examples/broadcast_filtering.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

from repro.api import ExperimentContext, ExperimentSettings, format_table


def run_pair(context: ExperimentContext, workload: str):
    plain = context.run(workload, "c3d")
    filtered_config = context.make_config("c3d", broadcast_filter=True)
    filtered = context.run(
        workload, "c3d", config=filtered_config, cache_key_extra=("filtered",)
    )
    return plain, filtered


def main() -> None:
    settings = ExperimentSettings(
        scale=1024, accesses_per_thread=1500, warmup_accesses_per_thread=500
    )
    context = ExperimentContext(settings)

    rows = []
    for workload in ("facesim", "cassandra", "mcf"):
        plain, filtered = run_pair(context, workload)
        potential = filtered.stats.broadcasts + filtered.stats.broadcasts_elided
        elided_fraction = filtered.stats.broadcasts_elided / potential if potential else 0.0
        traffic_ratio = (
            filtered.inter_socket_bytes / plain.inter_socket_bytes
            if plain.inter_socket_bytes
            else float("nan")
        )
        rows.append(
            [
                workload,
                plain.stats.broadcasts,
                filtered.stats.broadcasts,
                f"{elided_fraction * 100:.1f}%",
                f"{traffic_ratio:.3f}",
            ]
        )

    print(
        format_table(
            ["workload", "broadcasts (plain)", "broadcasts (filtered)",
             "broadcasts elided", "traffic vs plain C3D"],
            rows,
            title="Section VI-C: TLB private/shared classification",
        )
    )
    print(
        "\nmcf is single threaded, so every page stays private and its broadcasts\n"
        "disappear entirely; the multi-threaded workloads share most pages, so only\n"
        "a small fraction of broadcasts is filtered -- and either way the total\n"
        "inter-socket traffic barely moves because reads (data packets) dominate.\n"
        "This is why the paper calls the optimisation useful but non-essential."
    )


if __name__ == "__main__":
    main()
