#!/usr/bin/env python3
"""Model-check the C3D coherence protocol (the paper's Murphi verification).

The paper verifies C3D with the Murphi model checker, proving the
Single-Writer/Multiple-Reader invariant and per-location sequential
consistency.  This example does the reproduction-scale equivalent with the
built-in explicit-state checker:

* exhaustively explores the clean (C3D), C3D+full-directory and
  dirty-full-directory protocol models for 2-4 sockets;
* demonstrates that the checker has teeth by also checking a deliberately
  broken variant (clean caches but *no* broadcast on writes to untracked
  blocks) and printing the counterexample trace it finds.

Run with::

    python examples/protocol_verification.py
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable without PYTHONPATH)

import time

from repro.verification import ProtocolVariant, check_protocol


def main() -> None:
    print("Exhaustive state-space exploration of the abstract protocol models\n")
    for variant in (
        ProtocolVariant.CLEAN,
        ProtocolVariant.CLEAN_FULL_DIR,
        ProtocolVariant.DIRTY_FULL_DIR,
    ):
        for sockets in (2, 3, 4):
            start = time.time()
            result = check_protocol(variant, num_sockets=sockets)
            elapsed = time.time() - start
            status = "PASS" if result.passed else "FAIL"
            print(
                f"  {variant.value:16s} {sockets} sockets: {status}  "
                f"({result.states_explored} states, "
                f"{result.transitions_explored} transitions, {elapsed:.2f} s)"
            )

    print("\nNegative control: C3D without the broadcast on untracked writes\n")
    broken = check_protocol(ProtocolVariant.BROKEN_NO_BROADCAST, num_sockets=2)
    print(broken.summary())
    print(
        "\nThe counterexample shows exactly why the broadcast is needed: after a\n"
        "dirty block is written through and retained (untracked) in a DRAM cache,\n"
        "a write from another socket must invalidate that copy or a later read\n"
        "observes stale data."
    )


if __name__ == "__main__":
    main()
