"""Vectorized columnar execution engine (``engine=vector``).

The exact engines execute one access per Python iteration.  This engine
executes compiled traces in *batch windows*: for each core it classifies a
chunk of upcoming accesses with numpy column operations, proving which prefix
of them is **architecturally fast** -- L1 hits (reads and already-Modified
writes), store-buffer forwards, TLB activity, page-classifier no-ops -- and
then *defers* that prefix's bookkeeping.  Only the first non-fast access of
each core (an L1 miss, a store needing coherence permission, a first-touch
page, a store-buffer stall) drops into the per-access protocol path, via the
very same ``Core.execute_fast`` the ``compiled`` engine uses.

Bit identity with ``compiled``/``object`` (asserted by
``tests/engines/test_differential.py`` and the equivalence matrix) follows
from two invariants:

* **Classification is conservative and exact.**  An access is classified
  fast only when its entire observable effect is its own core's counters,
  its own L1 recency/dirty bits, its TLB/store-buffer state, and a
  constant-``L`` latency-accumulator fold -- all computed from the same
  state the scalar path would see.  Anything uncertain (and every
  classified-slow access) runs through ``execute_fast`` unchanged.
* **Deferred effects are applied in observation order.**  The only fast-path
  state another core can *read* is a dirty bit (own L1 line, LLC line), so
  dirty bits are applied eagerly when an access is consumed; everything else
  (counters, clocks, recency, TLB, store-buffer contents, latency folds) is
  flushed before the owning core -- or, for the shared latency accumulators,
  before *any* core -- next executes a slow access.  Float accumulation
  order is preserved exactly: deferred fast accesses fold the constant L1
  latency in their true global order relative to every slow access's
  variable latency (``LatencyAccumulator.add_constant``), and per-core
  clocks advance through the same left-to-right float chain as the scalar
  loop (``np.cumsum`` folds identically).

Cross-core interleaving uses the same ``(core time, core id)`` merge order as
the scalar engines: each core's next *slow* access is an event in a heap, and
when one pops, every other core's deferred prefix is consumed up to that
point first.  A slow access can change what is fast for other cores (peer
invalidation, LLC back-invalidation, directory downgrade), so each L1 keeps a
change log (``SetAssociativeCache._changes``) and every affected core is
re-classified before execution continues.

When a workload is miss-dominated there is nothing to batch (see
docs/performance.md): whenever a ``bail_after``-access probe window comes
back miss-heavy (fast fraction below ``bail_fast_frac``), the phase runs an
exponentially growing *scalar burst* -- the next ``burst_accesses`` accesses
in exact global merge order on the per-access path -- before re-probing, so
cold-start miss storms and genuinely unbatchable traces both converge to the
scalar loop's speed while staying bit-identical.  Configurations
outside the classifier's proven envelope (non-LRU L1s, custom allocation
policies or page classifiers, zero L1 latency) skip the batch path entirely.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from typing import Dict, List, Optional, Set

import numpy as np

from ..caches.block import CacheBlockState
from ..caches.sram_cache import SetAssociativeCache
from ..core.page_classifier import PrivateSharedClassifier
from ..cpu.store_buffer import StoreBuffer
from ..cpu.tlb import TLB
from ..memory.allocation import FirstTouchPolicy, InterleavePolicy
from ..memory.page_table import PageClassification, PageTable
from .base import EngineContext, ExecutionEngine, SimulationResult

__all__ = ["VectorEngine"]

_MODIFIED = CacheBlockState.MODIFIED
_PAGE_SHARED = PageClassification.SHARED
_EMPTY_F = np.empty(0, dtype=np.float64)


def _vectorizable(system, core_ids) -> bool:
    """True when the batch classifier's assumptions hold for this run.

    The classifier replicates the inlined fast paths of
    :meth:`Core.execute_fast` exactly; any substituted component (a non-LRU
    L1, a subclassed store buffer/TLB/page classifier, an exotic allocation
    policy) voids that proof, so the engine falls back to the scalar loop.
    """
    policy = system.mapper.policy
    if type(policy) not in (InterleavePolicy, FirstTouchPolicy):
        return False
    sockets = system.sockets
    latency = sockets[0].l1_latency_ns
    if latency <= 0:
        # The store-buffer occupancy model needs completion > issue time.
        return False
    for sock in sockets:
        if sock.l1_latency_ns != latency:
            return False
    classifier = system.page_classifier
    if classifier is not None:
        if type(classifier) is not PrivateSharedClassifier:
            return False
        if classifier.track_migrations:
            return False
        if type(classifier.page_table) is not PageTable:
            return False
        if classifier.layout != system.layout:
            return False
    cores = system.cores
    for core_id in core_ids:
        core = cores[core_id]
        if not getattr(core, "_l1_fast", False):
            return False
        if type(core.store_buffer) is not StoreBuffer:
            return False
        if type(core.tlb) is not TLB:
            return False
        if not isinstance(core.l1, SetAssociativeCache):
            return False
    return True


class _CoreState:
    """Per-core batching state: trace columns, chunk masks, derived prefix."""

    __slots__ = (
        # identity / fast-path handles
        "core_id", "core", "execute_fast", "socket_id", "thread_id",
        "l1", "l1_sets", "l1_nsets", "llc", "tlb", "sb", "cycle_ns",
        # trace columns (Python lists for the scalar path, numpy for batches)
        "blocks_l", "pages_l", "addrs_l", "writes_l", "gaps_l",
        "nb", "npg", "nw", "ng",
        "end",
        # chunk-static classification (valid from c0 for cn accesses)
        "c0", "cn", "blk_ch", "pg_ch", "wr_ch", "gp_ch",
        "gap_ns", "inc2", "pok", "res", "mod", "binv", "bmap",
        "lastw", "log_pos", "page_true",
        # derived prefix (origin d0 within the chunk, kd fast entries)
        "d0", "kd", "pts", "cw", "cf", "fwd_d",
        "wrel", "wcomp", "wblocks", "wi",
        "j", "aj", "win",
        # scheduling
        "gen", "kind", "done",
    )


class VectorEngine(ExecutionEngine):
    """Batched execution of compiled traces, bit-identical to ``compiled``."""

    name = "vector"
    supports_trace_compile = True

    #: Accesses classified per batch window.  Tests shrink this to force
    #: prefixes that cross chunk boundaries at adversarial run lengths.
    chunk_size = 16384
    #: Size of the first chunk built per core (and of the chunks rebuilt
    #: after a scalar burst): residency probes on a cold or shifting working
    #: set go stale quickly, so the first classification pass is kept cheap.
    #: Later chunks are full ``chunk_size``.
    chunk_initial = 1024
    #: Initial derive lookahead: each re-derive classifies only this many
    #: upcoming accesses and the window doubles up to ``chunk_size`` every
    #: time it is exhausted fast (so hit-dominated stretches amortize one
    #: classification over the whole chunk).  A slow access resets the
    #: window.  Derive cost is dominated by fixed numpy-call overhead below
    #: a few hundred entries, so the base window is a few hundred, not a
    #: few dozen.
    derive_window = 512
    #: Fast-fraction probe: every ``bail_after`` executed accesses, if the
    #: fraction classified slow exceeded ``1 - bail_fast_frac``, run a
    #: scalar burst (see :meth:`_VectorPhase._scalar_burst`) before
    #: re-entering batch mode.  The threshold is strict because the
    #: economics are lopsided: a slow event costs ~50-100x a scalar access
    #: (re-derive + sweep), so batch mode only wins when hit runs are long
    #: (hundreds of accesses); at even a few percent misses the scalar path
    #: is faster.
    bail_after = 256
    bail_fast_frac = 0.97
    #: Scalar bursts run in segments of ``burst_accesses``; after each
    #: segment the L1 miss fraction over that segment decides whether the
    #: workload is still miss-dominated (keep going, up to ``burst_cap``
    #: per burst) or warm enough to re-enter batch mode.
    burst_accesses = 8192
    burst_cap = 262144

    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        traces = context.compile_streams()
        if not traces:
            return context.empty_result()
        cursors = {core_id: 0 for core_id in traces}
        if warmup_accesses_per_core > 0:
            self._run_phase(context, traces, cursors, warmup_accesses_per_core)
            context.system.reset_measurement()
        warmup_offsets = context.core_times(traces)
        executed = self._run_phase(context, traces, cursors, max_accesses_per_core)
        return context.finalize(traces, warmup_offsets, executed)

    def _run_phase(self, context, traces, cursors, limit_per_core) -> int:
        if not _vectorizable(context.system, traces.keys()):
            return context.run_phase_compiled(traces, cursors, limit_per_core)
        return _VectorPhase(self, context, traces, cursors, limit_per_core).run()


class _VectorPhase:
    """One warmup or measured phase driven in batch windows."""

    def __init__(self, engine, context, traces, cursors, limit):
        self.engine = engine
        self.context = context
        self.traces = traces
        self.cursors = cursors
        self.limit = limit
        system = context.system
        self.system = system
        classifier = system.page_classifier
        self.classifier = classifier
        self.record_access = classifier.record_access if classifier is not None else None
        self.pt_lookup = (
            classifier.page_table.lookup if classifier is not None else None
        )
        mapper = system.mapper
        self.home_of_page = mapper.policy.home_of_page
        self.touched_pages = mapper._touched_pages
        self.L = system.sockets[0].l1_latency_ns
        layout = system.layout
        self.page_ratio = (
            layout.page_size // layout.block_size
            if layout.page_size % layout.block_size == 0
            else 0
        )
        self.chunk = max(1, int(engine.chunk_size))
        self.heap: List = []
        self.live: List[_CoreState] = []
        self.by_id: Dict[int, _CoreState] = {}
        self.executed = 0
        self.pending_r = 0
        self.pending_w = 0
        # Fast-fraction probe window and the scalar-burst length it controls.
        self.win_base = max(1, min(int(engine.derive_window), self.chunk))
        self.win_exec = 0
        self.win_slow = 0

        config = system.config
        cores = system.cores
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit is None else min(trace.length, start + limit)
            if start >= end:
                continue
            core = cores[core_id]
            cols = trace.columns()
            st = _CoreState()
            st.core_id = core_id
            st.core = core
            st.execute_fast = core.execute_fast
            st.socket_id = config.socket_of_core(core_id)
            st.thread_id = core.thread_id
            st.l1 = core.l1
            st.l1_sets = core.l1._sets
            st.l1_nsets = core.l1.num_sets
            st.llc = core.socket.llc
            st.tlb = core.tlb
            st.sb = core.store_buffer
            st.cycle_ns = core.cycle_ns
            st.blocks_l = trace.blocks
            st.pages_l = trace.pages
            st.addrs_l = trace.addrs
            st.writes_l = trace.writes
            st.gaps_l = trace.gaps
            st.nb = cols["blocks"]
            st.npg = cols["pages"]
            st.nw = cols["writes"]
            st.ng = cols["gaps"]
            st.end = end
            st.gen = 0
            st.done = False
            st.win = self.win_base
            st.page_true: Set[int] = set()
            core.l1._track_changes = True
            core.l1._changes.clear()
            st.log_pos = 0
            self.live.append(st)
            self.by_id[core_id] = st

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> int:
        try:
            heap = self.heap
            engine = self.engine
            size = engine.chunk_initial
            for st in self.live:
                self._build_chunk(st, self.cursors[st.core_id], size)
                self._derive(st)
                self._push_event(st)
            heappop = heapq.heappop
            chunk = self.chunk
            slow_limit = 1.0 - engine.bail_fast_frac
            while heap:
                t_slow, cid, gen = heappop(heap)
                st = self.by_id[cid]
                if gen != st.gen or st.done:
                    continue
                if st.kind == "slow":
                    self._window_sweep(t_slow, cid)
                    self._consume_range(st, st.kd)
                    self._flush(st)
                    self._flush_global_latency()
                    self._run_slow(st)
                    self.executed += 1
                    self.win_exec += 1
                    self.win_slow += 1
                    # Track the observed miss spacing: clustered misses get
                    # short (cheap) rederives, sparse misses long lookahead.
                    w = st.kd << 1
                    if w < 64:
                        w = 64
                    st.win = w if w < chunk else chunk
                    # Advance before the probe: a scalar burst re-derives
                    # every cursor from the flushed state, which must already
                    # reflect the slow access just executed.
                    self._advance(st)
                    if self.win_exec >= engine.bail_after:
                        if self.win_slow > slow_limit * self.win_exec:
                            self._scalar_burst()
                            continue
                        self.win_exec = 0
                        self.win_slow = 0
                    self._push_event(st)
                    self._revalidate(cid)
                else:  # boundary: lookahead exhausted, no access executes here
                    self._consume_range(st, st.kd)
                    self._flush(st)
                    w = st.win << 2
                    st.win = w if w < chunk else chunk
                    self._advance(st)
                    self._push_event(st)
            # Every remaining core's trace tail is fast: consume it all.
            for st in self.live:
                if st.done:
                    continue
                self._consume_range(st, st.kd)
                self._flush(st)
            self._flush_global_latency()
            return self.executed
        finally:
            for st in self.live:
                st.l1._track_changes = False
                st.l1._changes.clear()

    def _push_event(self, st) -> None:
        st.gen += 1
        if not st.done and st.kind != "end":
            heapq.heappush(self.heap, (st.pts[st.kd], st.core_id, st.gen))

    def _window_sweep(self, t_slow: float, slow_cid: int) -> None:
        """Consume every other core's entries due before ``(t_slow, slow_cid)``."""
        for o in self.live:
            if o.done or o.core_id == slow_cid:
                continue
            j = o.j
            if j >= o.kd:
                continue
            pts = o.pts
            head = pts[j]
            ocid = o.core_id
            if head > t_slow or (head == t_slow and ocid > slow_cid):
                continue
            if ocid < slow_cid:
                cut = bisect_right(pts, t_slow, j, o.kd)
            else:
                cut = bisect_left(pts, t_slow, j, o.kd)
            self._consume_range(o, cut)

    def _revalidate(self, slow_cid: int) -> None:
        """Re-classify any core whose L1 the slow access just mutated."""
        for o in self.live:
            if o.done or o.core_id == slow_cid:
                continue
            if len(o.l1._changes) != o.log_pos:
                self._flush(o)
                self._advance(o)
                self._push_event(o)

    def _scalar_burst(self) -> None:
        """Execute a stretch of accesses on the per-access path.

        Runs the same global ``(core time, core id)`` merge as
        ``run_phase_compiled`` but stops on a *global* access count, which
        preserves the exact execution-order prefix -- a per-core limit would
        let leading cores run past lagging ones and diverge.  The burst is
        segmented: after every ``burst_accesses`` accesses the L1 miss
        fraction over that segment decides whether the workload is still
        miss-dominated (keep bursting, up to ``burst_cap``) or warm enough
        to re-enter batch mode.  All deferred state is flushed first;
        afterwards every chunk is rebuilt (the scalar stretch invalidated
        the residency probes wholesale).
        """
        for o in self.live:
            if not o.done:
                self._flush(o)
        self._flush_global_latency()
        engine = self.engine
        cursors = self.cursors
        by_id = self.by_id
        touched_pages = self.touched_pages
        home_of_page = self.home_of_page
        record_access = self.record_access
        entries = [
            (o.core.time, o.core_id) for o in self.live if cursors[o.core_id] < o.end
        ]
        heapq.heapify(entries)
        heapreplace = heapq.heapreplace
        heappop = heapq.heappop
        caches = [o.l1 for o in self.live if not o.done]
        seg = max(1, int(engine.burst_accesses))
        cap = max(seg, int(engine.burst_cap))
        miss_limit = 1.0 - engine.bail_fast_frac
        total = 0
        while entries and total < cap:
            misses0 = 0
            for cache in caches:
                misses0 += cache.misses
            remaining = seg
            while entries and remaining:
                cid = entries[0][1]
                st = by_id[cid]
                i = cursors[cid]
                page = st.pages_l[i]
                home = home_of_page(page, st.socket_id)
                if page not in touched_pages:
                    touched_pages[page] = home
                if record_access is not None:
                    record_access(st.thread_id, st.addrs_l[i])
                new_time = st.execute_fast(
                    st.blocks_l[i], page, st.writes_l[i], st.gaps_l[i]
                )
                i += 1
                cursors[cid] = i
                remaining -= 1
                if i < st.end:
                    heapreplace(entries, (new_time, cid))
                else:
                    heappop(entries)
            ran = seg - remaining
            total += ran
            misses1 = 0
            for cache in caches:
                misses1 += cache.misses
            if misses1 - misses0 <= miss_limit * ran:
                break
        self.executed += total
        # Re-enter batch mode: rebuild every chunk from the new cursors.
        self.heap.clear()
        size = engine.chunk_initial
        for o in self.live:
            if o.done:
                continue
            if cursors[o.core_id] >= o.end:
                o.done = True
                o.kind = "end"
                o.l1._changes.clear()
                o.log_pos = 0
                continue
            o.win = self.win_base
            self._build_chunk(o, cursors[o.core_id], size)
            self._derive(o)
            self._push_event(o)
        self.win_exec = 0
        self.win_slow = 0

    # ------------------------------------------------------------------
    # Per-access slow path (identical to run_phase_compiled's run_one)
    # ------------------------------------------------------------------

    def _run_slow(self, st) -> None:
        i = self.cursors[st.core_id]
        page = st.pages_l[i]
        home = self.home_of_page(page, st.socket_id)
        if page not in self.touched_pages:
            self.touched_pages[page] = home
        if self.record_access is not None:
            self.record_access(st.thread_id, st.addrs_l[i])
        st.execute_fast(st.blocks_l[i], page, st.writes_l[i], st.gaps_l[i])
        self.cursors[st.core_id] = i + 1

    def _advance(self, st) -> None:
        cursor = self.cursors[st.core_id]
        if cursor >= st.end:
            st.done = True
            st.kind = "end"
            return
        if cursor - st.c0 >= st.cn:
            self._build_chunk(st, cursor)
        else:
            st.d0 = cursor - st.c0
        self._derive(st)

    # ------------------------------------------------------------------
    # Deferred-effect application
    # ------------------------------------------------------------------

    def _flush_global_latency(self) -> None:
        stats = self.system.stats
        if self.pending_r:
            stats.read_latency.add_constant(self.L, self.pending_r)
            self.pending_r = 0
        if self.pending_w:
            stats.write_latency.add_constant(self.L, self.pending_w)
            self.pending_w = 0

    def _consume_range(self, st, cut: int) -> None:
        """Mark entries ``[j, cut)`` of the derived prefix as executed.

        Applies the only cross-core-visible effect (dirty bits) eagerly;
        everything else waits for :meth:`_flush`.
        """
        j = st.j
        if cut <= j:
            return
        cw = st.cw
        w = int(cw[cut] - cw[j]) if cw is not None else 0
        self.pending_w += w
        self.pending_r += (cut - j) - w
        wrel = st.wrel
        wi = st.wi
        if wi < len(wrel) and wrel[wi] < cut:
            sets_ = st.l1_sets
            nsets = st.l1_nsets
            llc = st.llc
            wblocks = st.wblocks
            while wi < len(wrel) and wrel[wi] < cut:
                block = wblocks[wi]
                sets_[block % nsets][block].dirty = True
                llc_line = llc.peek(block)
                if llc_line is not None:
                    llc_line.dirty = True
                wi += 1
            st.wi = wi
        st.j = cut
        self.executed += cut - j
        self.win_exec += cut - j

    def _flush(self, st) -> None:
        """Apply all deferred effects of consumed entries ``[aj, j)``."""
        j = st.j
        aj = st.aj
        if j > aj:
            d0 = st.d0
            lo = d0 + aj
            hi = d0 + j
            m = j - aj
            t = st.pts[j]
            core = st.core
            # Exact cast: the heap keys and sb comparisons tolerate the
            # numpy scalar, but core.time flows into JSON-serialised stats.
            core.time = float(t)
            cw = st.cw
            w = int(cw[j] - cw[aj]) if cw is not None else 0
            r = m - w
            cf = st.cf
            f = int(cf[j] - cf[aj]) if cf is not None else 0
            gapsum = int(st.gp_ch[lo:hi].sum())
            core.instructions += gapsum + m
            core.loads += r
            core.stores += w
            stats = self.system.stats
            stats.instructions += m
            stats.reads += r
            stats.writes += w
            stats.l1_hits += m - f
            if f:
                stats.store_forward_hits += f
            st.l1.record_bulk_hits(m - f)
            if self.classifier is not None:
                self.classifier.stats.accesses += m

            # TLB: replay runs of equal consecutive pages (a run's first
            # access hits or misses exactly as the scalar path would; the
            # rest of the run are guaranteed hits on the just-touched entry).
            # Fast path: when every page of the window is already resident,
            # no run can miss or evict, so the whole window hits and only
            # the final recency order (last touch per page, in window
            # order) needs replaying.
            tlb = st.tlb
            pages_ = st.pg_ch[lo:hi]
            tlb_pages = tlb._pages
            if m == 1:
                page = st.pages_l[st.c0 + lo]
                if page in tlb_pages:
                    tlb_pages.move_to_end(page)
                    tlb.hits += 1
                else:
                    tlb.misses += 1
                    if len(tlb_pages) >= tlb.entries:
                        tlb_pages.popitem(last=False)
                    tlb_pages[page] = None
            else:
                rev_p = pages_[::-1]
                _, pfirst = np.unique(rev_p, return_index=True)
                last_order = rev_p[np.sort(pfirst)][::-1].tolist()
                if all(page in tlb_pages for page in last_order):
                    tlb.hits += m
                    for page in last_order:
                        tlb_pages.move_to_end(page)
                else:
                    cap = tlb.entries
                    cuts = (np.flatnonzero(pages_[1:] != pages_[:-1]) + 1).tolist()
                    runs = []
                    prev = 0
                    for c in cuts:
                        runs.append((int(pages_[prev]), c - prev))
                        prev = c
                    runs.append((int(pages_[prev]), m - prev))
                    for page, cnt in runs:
                        if page in tlb_pages:
                            tlb_pages.move_to_end(page)
                            tlb.hits += cnt
                        else:
                            tlb.misses += 1
                            if len(tlb_pages) >= cap:
                                tlb_pages.popitem(last=False)
                            tlb_pages[page] = None
                            if cnt > 1:
                                tlb.hits += cnt - 1

            # Store buffer: rebuild the deque as the scalar path would have
            # left it (entries retired by ``t`` may linger in the scalar
            # deque until a later purge, but an entry with completion <= now
            # can never forward or stall again, so dropping it early is
            # unobservable).
            sb = st.sb
            if w:
                sb.pushes += w
            if f:
                sb.forward_hits += f
            a_i = bisect_left(st.wrel, aj)
            b_i = bisect_left(st.wrel, j)
            entries = sb._entries
            if b_i > a_i or entries:
                merged = [e for e in entries if e[0] > t]
                wcomp = st.wcomp
                wblocks = st.wblocks
                for idx in range(a_i, b_i):
                    completion = wcomp[idx]
                    if completion > t:
                        merged.append((completion, wblocks[idx]))
                entries.clear()
                entries.extend(merged)

            # L1 recency: replay only the *last* touch of each block, in
            # window order -- the same final LRU order as per-access touches.
            blocks_seg = st.blk_ch[lo:hi]
            if f:
                blocks_seg = blocks_seg[~st.fwd_d[aj:j]]
            ns = blocks_seg.size
            if ns == 1:
                st.l1.bulk_touch((int(blocks_seg[0]),))
            elif ns:
                rev = blocks_seg[::-1]
                _, first_idx = np.unique(rev, return_index=True)
                st.l1.bulk_touch(rev[np.sort(first_idx)][::-1].tolist())

            st.aj = j
        self.cursors[st.core_id] = st.c0 + st.d0 + st.j

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def _page_fast(self, page: int, thread_id: int) -> bool:
        """True when an access to ``page`` has no placement/classifier effect.

        Requires the page already touched (so the inlined first-touch update
        is a no-op and ``home_of_page`` is pure) and, when a classifier is
        active, an existing entry that is SHARED or owned by this thread (the
        two no-op arms of ``PageTable.touch``).  All three conditions are
        monotone-stable once true.
        """
        if page not in self.touched_pages:
            return False
        lookup = self.pt_lookup
        if lookup is None:
            return True
        entry = lookup(page)
        if entry is None:
            return False
        return entry.classification is _PAGE_SHARED or entry.owner_thread == thread_id

    def _build_chunk(self, st, start: int, size: Optional[int] = None) -> None:
        """Classify the chunk-static masks for accesses ``[start, start+cn)``.

        ``size`` caps the chunk below ``chunk_size`` (first build per core
        and post-burst rebuilds, where the probes are likely to go stale).
        """
        st.c0 = start
        st.d0 = 0
        limit = self.chunk if size is None else max(1, min(int(size), self.chunk))
        cn = min(st.end - start, limit)
        st.cn = cn
        sl = slice(start, start + cn)
        blk = st.nb[sl]
        st.blk_ch = blk
        st.pg_ch = st.npg[sl]
        wr = st.nw[sl]
        st.wr_ch = wr
        gp = st.ng[sl]
        st.gp_ch = gp
        st.gap_ns = gp * st.cycle_ns
        st.inc2 = np.where(wr, st.cycle_ns, self.L)

        # Blocks: one stable argsort yields the sorted unique blocks, the
        # inverse mapping (same as ``np.unique(return_inverse=True)``) *and*
        # the last-prior-write index, so the chunk is sorted once, not three
        # times.
        order = np.argsort(blk, kind="stable")
        sorted_b = blk[order]
        seg_start = np.empty(cn, dtype=bool)
        seg_start[0] = True
        seg_start[1:] = sorted_b[1:] != sorted_b[:-1]
        segid = np.cumsum(seg_start) - 1
        ubk = sorted_b[seg_start]
        binv = np.empty(cn, dtype=np.int64)
        binv[order] = segid
        st.binv = binv
        resu = np.empty(ubk.size, dtype=bool)
        modu = np.empty(ubk.size, dtype=bool)
        bmap = {}
        sets_ = st.l1_sets
        nsets = st.l1_nsets
        for u, block in enumerate(ubk.tolist()):
            bmap[block] = u
            cache_set = sets_.get(block % nsets)
            line = cache_set.get(block) if cache_set is not None else None
            if line is None:
                resu[u] = False
                modu[u] = False
            else:
                resu[u] = True
                modu[u] = line.state is _MODIFIED
        st.bmap = bmap
        st.res = resu[binv]
        st.mod = modu[binv]

        # Page classification: when pages are whole multiples of blocks the
        # page of every access follows from its (already deduplicated)
        # block, so only the handful of unique pages is probed and no second
        # full-chunk ``np.unique`` is needed.
        ratio = self.page_ratio
        if ratio:
            upg, pinv = np.unique(ubk // ratio, return_inverse=True)
        else:
            upg, pinv = np.unique(st.pg_ch, return_inverse=True)
        pvals = np.empty(upg.size, dtype=bool)
        page_true = st.page_true
        thread_id = st.thread_id
        for u, page in enumerate(upg.tolist()):
            if page in page_true:
                pvals[u] = True
            else:
                ok = self._page_fast(page, thread_id)
                pvals[u] = ok
                if ok:
                    page_true.add(page)
        st.pok = pvals[pinv][binv] if ratio else pvals[pinv]

        # Last prior write to the same block, per access: within each
        # equal-block segment a running max over (write position + 1, offset
        # per segment so the accumulate cannot leak across segments) yields
        # the latest prior write; -1 where none exists in the chunk.
        if wr.any():
            write_pos = np.where(wr[order], order, -1)
            enc = (write_pos + 1) + segid * (cn + 1)
            run = np.maximum.accumulate(enc)
            prior = np.empty(cn, dtype=np.int64)
            prior[0] = -1
            prior[1:] = run[:-1] - segid[1:] * (cn + 1) - 1
            prior[seg_start] = -1
            lastw = np.empty(cn, dtype=np.int64)
            lastw[order] = prior
            st.lastw = lastw
        else:
            st.lastw = np.full(cn, -1, dtype=np.int64)
        # The probes above reflect every logged change so far.
        st.l1._changes.clear()
        st.log_pos = 0

    def _patch(self, st) -> None:
        """Fold the L1 change log into the chunk-static residency masks."""
        changes = st.l1._changes
        if st.log_pos == len(changes):
            return
        delta = changes[st.log_pos:]
        if -1 in delta:  # wholesale clear: re-probe everything
            self._build_chunk(st, self.cursors[st.core_id])
            return
        sets_ = st.l1_sets
        nsets = st.l1_nsets
        bmap = st.bmap
        binv = st.binv
        for block in set(delta):
            u = bmap.get(block)
            if u is None:
                continue
            cache_set = sets_.get(block % nsets)
            line = cache_set.get(block) if cache_set is not None else None
            sel = binv == u
            if line is None:
                st.res[sel] = False
                st.mod[sel] = False
            else:
                st.res[sel] = True
                st.mod[sel] = line.state is _MODIFIED
        changes.clear()
        st.log_pos = 0

    def _derive(self, st) -> None:
        """Compute the fast prefix from the core's current position.

        Times, store-buffer occupancy/forwarding and the combined fast mask
        depend on the core's clock and deque *now*; the residency/page masks
        are chunk-static (patched via the change log).
        """
        self._patch(st)
        d0 = st.d0
        # Adaptive lookahead: classify only ``st.win`` accesses (the window
        # doubles on exhaustion, resets on a slow access), so frequent misses
        # pay for short windows and long hit runs amortize whole chunks.
        n = st.cn - d0
        if n > st.win:
            n = st.win
        hi = d0 + n
        t0 = st.core.time
        L = self.L

        # Clock chain: T[i] is the core time before access d0+i, folded
        # left-to-right exactly as execute_fast folds it (gap advance, then
        # the access's own latency/cycle).
        inc = np.empty(2 * n + 1, dtype=np.float64)
        inc[0] = t0
        inc[1::2] = st.gap_ns[d0:hi]
        inc[2::2] = st.inc2[d0:hi]
        cs = np.cumsum(inc)
        tga = cs[1::2]  # time after the gap = when the access issues

        wr = st.wr_ch[d0:hi]
        res = st.res[d0:hi]

        # Store-buffer model over the window's writes: completions are a
        # running max of (issue + L) seeded with the live deque's tail
        # (deque completions are non-decreasing, so the tail is its max);
        # occupancy before push j counts unretired entries via searchsorted
        # on the merged non-decreasing completion sequence.
        sb = st.sb
        deque_entries = list(sb._entries)
        n0 = len(deque_entries)
        wrel_np = np.flatnonzero(wr)
        nw = wrel_np.size
        if n0:
            init_comps = np.fromiter(
                (e[0] for e in deque_entries), dtype=np.float64, count=n0
            )
            tail = init_comps[-1]
        else:
            init_comps = _EMPTY_F
            tail = -np.inf
        stall = None
        if nw:
            wtga = tga[wrel_np]
            seed = np.empty(nw + 1, dtype=np.float64)
            seed[0] = tail
            seed[1:] = wtga + L
            wc = np.maximum.accumulate(seed)[1:]
            if n0 + nw >= sb.capacity:
                # Occupancy can only reach capacity when the live deque plus
                # the window's stores could; otherwise no store can stall.
                all_comps = np.concatenate((init_comps, wc))
                retired = np.searchsorted(all_comps, wtga, side="right")
                occ = n0 + np.arange(nw) - retired
                if bool((occ >= sb.capacity).any()):
                    stall = np.zeros(n, dtype=bool)
                    stall[wrel_np] = occ >= sb.capacity

        # Store-to-load forwarding: a read forwards iff the last prior write
        # to its block is still unretired (the deque's completions are
        # non-decreasing, so if the last matching entry retired, every older
        # one did too).  The last prior write is either inside this window
        # (-> wc) or already in the live deque.
        reads = ~wr
        lastw = st.lastw[d0:hi]
        fwd_time = None
        if nw:
            in_window = lastw >= d0
            idxs = np.flatnonzero(in_window & reads)
            if idxs.size:
                ranks = np.searchsorted(wrel_np, lastw[idxs] - d0)
                fwd_time = np.full(n, -np.inf)
                fwd_time[idxs] = wc[ranks]
        else:
            in_window = None
        if n0:
            # Match reads whose last prior write predates the window against
            # the live deque (last entry per block wins): searchsorted over
            # the <= capacity deque blocks instead of a per-element scan.
            init_last: Dict[int, float] = {}
            for completion, block in deque_entries:
                init_last[block] = completion
            no_window_write = reads if in_window is None else ~in_window & reads
            outw = np.flatnonzero(no_window_write)
            if outw.size:
                nk = len(init_last)
                kb = np.fromiter(init_last.keys(), dtype=np.int64, count=nk)
                kv = np.fromiter(init_last.values(), dtype=np.float64, count=nk)
                order = np.argsort(kb)
                kb = kb[order]
                kv = kv[order]
                seg = st.blk_ch[d0:hi][outw]
                pos = np.searchsorted(kb, seg)
                pos[pos == nk] = 0
                hit = kb[pos] == seg
                if bool(hit.any()):
                    if fwd_time is None:
                        fwd_time = np.full(n, -np.inf)
                    fwd_time[outw[hit]] = kv[pos[hit]]
        fwd = None if fwd_time is None else reads & (fwd_time > tga)

        wr_fast = res & st.mod[d0:hi]
        if stall is not None:
            wr_fast &= ~stall
        rd_fast = res if fwd is None else fwd | res
        fast = st.pok[d0:hi] & np.where(wr, wr_fast, rd_fast)
        if bool(fast.all()):
            kd = n
        else:
            kd = int(np.argmin(fast))
        st.kd = kd
        st.pts = cs[0 : 2 * kd + 1 : 2]
        if nw:
            cw = np.empty(kd + 1, dtype=np.int64)
            cw[0] = 0
            np.cumsum(wr[:kd], out=cw[1:])
            st.cw = cw
        else:
            st.cw = None
        if fwd is None:
            st.cf = None
            st.fwd_d = None
        else:
            cf = np.empty(kd + 1, dtype=np.int64)
            cf[0] = 0
            np.cumsum(fwd[:kd], out=cf[1:])
            st.cf = cf
            st.fwd_d = fwd[:kd]
        if nw:
            kw = wrel_np[wrel_np < kd]
            st.wrel = kw.tolist()
            st.wcomp = wc[: kw.size].tolist()
            st.wblocks = st.blk_ch[d0 + kw].tolist()
        else:
            st.wrel = []
            st.wcomp = []
            st.wblocks = []
        st.wi = 0
        st.j = 0
        st.aj = 0
        if kd < n:
            st.kind = "slow"
        elif hi == st.cn and st.c0 + st.cn >= st.end:
            st.kind = "end"
        else:
            st.kind = "boundary"
