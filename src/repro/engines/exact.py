"""The two exact engines: ``compiled`` (fast path) and ``object`` (reference).

Both replay every access of the measured region in full detail and are
verified bit-identical to each other for all five coherence designs
(``tests/system/test_engine_equivalence.py``); the ``compiled`` engine is a
pure performance transformation (array-backed traces, lean dispatch loop --
docs/performance.md), the ``object`` engine is the seed-style
one-``MemoryAccess``-at-a-time generator path kept as the semantic
reference.
"""

from __future__ import annotations

from typing import Optional

from .base import EngineContext, ExecutionEngine, SimulationResult

__all__ = ["CompiledEngine", "ObjectEngine"]


class CompiledEngine(ExecutionEngine):
    """Array-backed traces through the lean dispatch loop (the default)."""

    name = "compiled"
    supports_trace_compile = True

    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        traces = context.compile_streams()
        if not traces:
            return context.empty_result()
        cursors = {core_id: 0 for core_id in traces}
        if warmup_accesses_per_core > 0:
            context.run_phase_compiled(traces, cursors, warmup_accesses_per_core)
            context.system.reset_measurement()
        warmup_offsets = context.core_times(traces)
        executed = context.run_phase_compiled(traces, cursors, max_accesses_per_core)
        return context.finalize(traces, warmup_offsets, executed)


class ObjectEngine(ExecutionEngine):
    """One ``MemoryAccess`` object at a time (the legacy reference engine)."""

    name = "object"
    supports_trace_compile = False

    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        streams = context.open_streams()
        if not streams:
            return context.empty_result()
        if warmup_accesses_per_core > 0:
            context.run_phase_object(streams, warmup_accesses_per_core)
            context.system.reset_measurement()
        warmup_offsets = context.core_times(streams)
        executed = context.run_phase_object(streams, max_accesses_per_core)
        return context.finalize(streams, warmup_offsets, executed)
