"""The ``sampled-par`` engine: measurement windows across worker processes.

``sampled`` measures every warmup+detail window in an isolated forked child
seeded with the functional chain's state at the window start, which makes
each window a *pure function* of the plan prefix before it (see
:mod:`repro.engines.sampled`).  This engine exploits that purity: the plan's
units are split into contiguous ranges
(:func:`~repro.stats.sampling.partition_units`), each range goes to one
``multiprocessing.Process`` worker that fast-forwards from the region start
to its range (one prefix replay per worker, not per window) and then walks
its range exactly like the serial engine -- same two
``run_phase_functional`` calls per unit, same forked window children -- and
ships its :class:`~repro.stats.sampling.WindowOutcome` list back over a
pipe.  The parent merges outcomes in deterministic window order, so every
reported number -- counters, confidence intervals, store hash keys -- is
bit-identical to ``engine=sampled`` at any ``jobs`` setting.

Graceful degradation mirrors ``experiments/runner.py``'s isolated executor:
a watchdog polls each worker's pipe; a worker that dies (crash, SIGKILL) or
exceeds the optional ``timeout_s`` engine option is killed and its unit
range is re-run inline by the parent over a fresh chain walk.  ``jobs <= 1``
-- including the nested-parallelism clamp, when :data:`WORKER_ENV` marks
this process as already being someone's worker -- short-circuits to the
serial walk, sharing the exact serial code path.

``REPRO_FAULTS`` (docs/robustness.md) covers the range workers: each worker
rolls the deterministic crash/hang sites with a ``window-worker`` payload
before touching the chain, so chaos tests exercise the retry path end to
end.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..stats.sampling import SamplingUnit, WindowOutcome, partition_units
from ..testing import faults
from ..workloads.compiled import CompiledTrace
from .base import WORKER_ENV, EngineContext
from .sampled import SampledEngine

__all__ = ["SampledParEngine", "effective_jobs"]

#: Test hook run at every range worker's entry (after the nested-parallelism
#: marker is set, before any simulation work).  Monkeypatched module state is
#: inherited by forked workers, so chaos tests install e.g. a SIGKILL here.
_WORKER_TEST_HOOK = None


def effective_jobs(requested: Optional[int]) -> int:
    """The worker count ``sampled-par`` actually uses for a request.

    Clamped to 1 when the request is absent or not parallel, when this
    process is itself someone's worker (:data:`WORKER_ENV` -- campaigns with
    ``--jobs`` and ``repro serve`` already own the machine's parallelism),
    and on platforms whose multiprocessing start method is not ``fork``
    (range workers inherit live traces and system state by forking).
    """
    jobs = 1 if requested is None else int(requested)
    if jobs <= 1:
        return 1
    if os.environ.get(WORKER_ENV):
        return 1
    if multiprocessing.get_start_method() != "fork":
        return 1
    return jobs


def _range_worker(
    conn,
    engine: "SampledParEngine",
    context: EngineContext,
    traces: Dict[int, CompiledTrace],
    cursors: Dict[int, int],
    units: Sequence[SamplingUnit],
    lo: int,
    hi: int,
) -> None:
    """Worker entry: replay the prefix, measure units ``[lo, hi)``, ship back."""
    os.environ[WORKER_ENV] = "1"
    try:
        plan = faults.active()
        if plan is not None:
            plan.inject_point_faults(
                f"sampled-par/units[{lo}:{hi})",
                {"kind": "window-worker", "site": "sampled-par", "units": [lo, hi]},
                attempt=1,
            )
        if _WORKER_TEST_HOOK is not None:
            _WORKER_TEST_HOOK(lo, hi)
        outcomes, executed = engine._walk_units(
            context, traces, cursors, units, stop=hi, count_from=lo
        )
        conn.send(("ok", outcomes, executed))
    except BaseException as exc:  # noqa: BLE001 - isolation is the point
        try:
            conn.send(("error", repr(exc)))
        except Exception:
            pass
    finally:
        conn.close()


class SampledParEngine(SampledEngine):
    """Sampled execution with window ranges on parallel worker processes."""

    name = "sampled-par"
    supports_sampling = True
    supports_trace_compile = True
    #: Bit-identical to ``sampled`` by contract, so runs share store keys
    #: and cached results with it (tests/engines/test_store_keys.py).
    store_name = "sampled"

    #: Watchdog poll interval while workers are in flight.
    _POLL_S = 0.02

    def _execute_units(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        units: Sequence[SamplingUnit],
    ) -> Tuple[List[WindowOutcome], int]:
        jobs = effective_jobs(context.engine_options.get("jobs"))
        ranges = partition_units(units, jobs) if jobs > 1 else []
        if len(ranges) <= 1:
            # Serial fallback: the clamp, a one-range partition, or an
            # explicit jobs=1 all share the exact serial chain walk.
            return super()._execute_units(context, traces, cursors, units)
        timeout_s = context.engine_options.get("timeout_s")
        region_cursors = dict(cursors)
        deadline = (
            time.monotonic() + float(timeout_s) if timeout_s is not None else None
        )

        mp = multiprocessing.get_context()
        inflight = {}
        for lo, hi in ranges:
            parent_conn, child_conn = mp.Pipe(duplex=False)
            process = mp.Process(
                target=_range_worker,
                args=(
                    child_conn, self, context, traces, region_cursors, units, lo, hi,
                ),
                daemon=True,
            )
            process.start()
            child_conn.close()
            inflight[process] = (lo, hi, parent_conn)

        outcomes: List[WindowOutcome] = []
        executed = 0
        failed: List[Tuple[int, int]] = []
        while inflight:
            progressed = False
            for process in list(inflight):
                lo, hi, conn = inflight[process]
                if conn.poll(0):
                    try:
                        message = conn.recv()
                    except EOFError:
                        message = ("error", "worker closed its pipe mid-send")
                    progressed = True
                    del inflight[process]
                    process.join()
                    if message[0] == "ok":
                        outcomes.extend(message[1])
                        executed += message[2]
                    else:
                        failed.append((lo, hi))
                elif not process.is_alive():
                    # Died without a message: crashed or SIGKILLed.
                    progressed = True
                    del inflight[process]
                    process.join()
                    failed.append((lo, hi))
                elif deadline is not None and time.monotonic() > deadline:
                    progressed = True
                    del inflight[process]
                    self._kill_worker(process)
                    failed.append((lo, hi))
            if inflight and not progressed:
                time.sleep(self._POLL_S)

        if failed:
            # Inline retry under the parent: one fresh chain walk measures
            # exactly the failed ranges' windows.  The walk covers the whole
            # region, so its executed count replaces the workers' partial
            # sums (some of which died before reporting).
            retry_measure = {
                index for lo, hi in failed for index in range(lo, hi)
            }
            keep = [o for o in outcomes if o.unit_index not in retry_measure]
            retried, executed = self._walk_units(
                context, traces, dict(region_cursors), units, measure=retry_measure
            )
            outcomes = keep + retried
        return outcomes, executed

    @staticmethod
    def _kill_worker(process) -> None:
        """Stop a hung worker like the campaign runner does (TERM, then KILL)."""
        from ..experiments.runner import _kill_worker

        _kill_worker(process)
