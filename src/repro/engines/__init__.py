"""Pluggable execution engines for the C3D reproduction's simulator.

An *execution engine* decides how a workload's access streams drive the
simulated machine: the exact engines replay every access in full detail,
the sampled engine alternates functional fast-forward with measured detail
windows.  The :class:`~repro.engines.base.ExecutionEngine` interface plus
the :class:`~repro.engines.base.EngineContext` (shared per-run setup) keep a
new engine down to its scheduling strategy, and the registry makes its name
valid across every layer at once (`Simulator(engine=...)`, ``--engine``,
``repro bench --engines``, sweep points, campaign specs).

Built-ins (names are part of the results-store key contract and stable):

=============  ======================================================
``compiled``   Array-backed traces through the lean dispatch loop
               (the default; docs/performance.md).
``object``     One ``MemoryAccess`` object at a time -- the seed-style
               reference engine the others are verified against.
``sampled``    SMARTS-style statistical sampling: batched functional
               fast-forward + measured detail windows with per-metric
               confidence intervals (docs/sampling.md).
``vector``     Batched columnar execution: numpy-classified windows of
               L1 hits applied in bulk, per-access protocol path only on
               misses; bit-identical to ``compiled``/``object``
               (docs/performance.md, "Vectorized execution").
``sampled-par``  Sampled execution with measurement windows partitioned
               across worker processes (``jobs`` engine option /
               ``--engine-jobs``); bit-identical to ``sampled`` at any
               job count (docs/performance.md, "Parallel windows").
=============  ======================================================

See docs/architecture.md ("Execution engines") for the interface and for
how to register a third-party engine.
"""

from .base import (
    WORKER_ENV,
    EngineContext,
    ExecutionEngine,
    SimulationResult,
    functional_timing,
    scratch_stats,
)
from .exact import CompiledEngine, ObjectEngine
from .registry import get, names, register, unregister, validate
from .sampled import SampledEngine
from .sampled_par import SampledParEngine
from .vector import VectorEngine

__all__ = [
    "ExecutionEngine",
    "EngineContext",
    "SimulationResult",
    "CompiledEngine",
    "ObjectEngine",
    "SampledEngine",
    "SampledParEngine",
    "VectorEngine",
    "WORKER_ENV",
    "register",
    "unregister",
    "get",
    "names",
    "validate",
    "scratch_stats",
    "functional_timing",
]

# Built-in registration order defines the default listing order (and the
# historical ENGINES tuple order the CLI help shows).
register(CompiledEngine)
register(ObjectEngine)
register(SampledEngine)
register(VectorEngine)
register(SampledParEngine)
