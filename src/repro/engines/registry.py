"""The execution-engine registry: the single authority on engine names.

Every layer that accepts an ``engine=`` string -- the simulator, the CLI,
``repro bench``, the sweep runner, campaign specs -- resolves it here, so an
engine registered once (built-in or third-party) is immediately valid
everywhere and an unknown name fails everywhere with the same message
listing what *is* registered.

Registering a custom engine::

    from repro import engines

    class MyEngine(engines.ExecutionEngine):
        name = "my-engine"
        def run(self, context, *, max_accesses_per_core=None,
                warmup_accesses_per_core=0):
            ...

    engines.register(MyEngine)

Store keys embed the engine *name* (see ``docs/campaigns.md``), so names are
part of the persistence contract: renaming an engine invalidates its stored
results, and the built-in names (``compiled``, ``object``, ``sampled``) are
stable.
"""

from __future__ import annotations

from typing import Dict, Tuple, Type

from .base import ExecutionEngine

__all__ = ["register", "unregister", "get", "names", "validate"]

#: Registration-ordered name -> engine class mapping.
_REGISTRY: Dict[str, Type[ExecutionEngine]] = {}


def register(
    engine_cls: Type[ExecutionEngine], *, replace: bool = False
) -> Type[ExecutionEngine]:
    """Register an engine class under its ``name``; returns the class.

    ``replace=True`` allows overriding an existing registration (e.g. a
    faster drop-in implementation of a built-in name); without it a name
    collision raises ``ValueError`` so two plugins cannot silently shadow
    each other.
    """
    if not (isinstance(engine_cls, type) and issubclass(engine_cls, ExecutionEngine)):
        raise TypeError(f"engines must subclass ExecutionEngine, got {engine_cls!r}")
    name = engine_cls.name
    if not name or name == ExecutionEngine.name:
        raise ValueError(
            f"engine class {engine_cls.__name__} needs a unique 'name' attribute"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"engine {name!r} is already registered "
            f"({_REGISTRY[name].__name__}); pass replace=True to override"
        )
    _REGISTRY[name] = engine_cls
    return engine_cls


def unregister(name: str) -> None:
    """Remove a registered engine (primarily for tests and plugins)."""
    _REGISTRY.pop(name, None)


def names() -> Tuple[str, ...]:
    """Registered engine names, in registration order."""
    return tuple(_REGISTRY)


def validate(name: str) -> str:
    """Return ``name`` if registered; raise a listing ``ValueError`` otherwise."""
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown engine {name!r}; registered engines: {', '.join(_REGISTRY) or '(none)'}"
        )
    return name


def get(name: str) -> Type[ExecutionEngine]:
    """Resolve an engine name to its class (same error as :func:`validate`)."""
    validate(name)
    return _REGISTRY[name]
