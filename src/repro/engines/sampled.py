"""The ``sampled`` engine: SMARTS-style statistical sampling on compiled traces.

The measured region is covered by a :class:`~repro.stats.sampling.SamplingPlan`'s
units: functional **fast-forward** (state advances, no timing), detailed but
unmeasured **warm-up**, and measured **detail** windows whose per-window
counter deltas become the observations behind the per-metric confidence
intervals (docs/sampling.md).

The fast-forward phase runs directly on the compiled-trace batches: each
core's slice of the trace arrays is walked with the L1 hit paths (read *and*
write) inlined, first-touch page placement short-circuited for
already-placed pages, and everything below the L1 routed through
:meth:`~repro.system.socket.Socket.access_functional`, which drives the
coherence protocols' lean state-only ``*_functional`` mirrors.  This is what
makes fast-forward substantially cheaper per access than a detail window
while leaving bit-identical architectural state behind
(``tests/system/test_sampling.py`` and ``tools/check_sampling.py`` validate
the resulting estimates against exact runs).

Measurement windows are *isolated*: the engine's persistent chain advances
functionally through the whole region, and each warmup+detail window runs in
a copy-on-write forked child seeded with the chain state at the window's
start, shipping its counter deltas back as a
:class:`~repro.stats.sampling.WindowOutcome`.  The one exception is the
*last* measured window of a walk, which runs inline on the chain itself:
detailed execution is state-exact with functional execution and nothing
after the final window reads the chain again, so the outcome is identical
and the fork is saved.  Every window is therefore a pure function of the
functional prefix before it, which is what lets ``engine=sampled-par``
measure windows on concurrent worker processes (see
:mod:`repro.engines.sampled_par`) while staying bit-identical to this serial
engine.
"""

from __future__ import annotations

import copy
import os
import pickle
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..caches.block import CacheBlockState
from ..stats.counters import SimulationStats
from ..stats.sampling import (
    SampledSimulationStats,
    SamplingPlan,
    SamplingSummary,
    SamplingUnit,
    WindowOutcome,
    estimate_metrics,
    merge_window_outcomes,
)
from ..workloads.compiled import CompiledTrace
from .base import EngineContext, ExecutionEngine, SimulationResult

__all__ = ["SampledEngine"]

_MODIFIED = CacheBlockState.MODIFIED

#: Test/diagnostic switch: force the deepcopy (non-fork) window isolation
#: path even on platforms where ``os.fork`` is available.
_FORCE_COPY_ISOLATION = False


def _run_window_counted(
    context: EngineContext,
    traces: Dict[int, CompiledTrace],
    cursors: Dict[int, int],
    unit: SamplingUnit,
    index: int,
) -> Tuple[Optional[WindowOutcome], int]:
    """Measure one warmup+detail window, consuming its span from ``cursors``.

    Runs the warmup segment under scratch statistics, then the detail
    segment onto a fresh zeroed stats object whose counters become the
    window's deltas.  The outcome is ``None`` when every trace was exhausted
    before the detail segment (the serial engine's historical skip
    semantics); the second element is the number of accesses executed, equal
    to what a functional pass over the same span would have advanced.
    """
    system = context.system
    warmup_executed = 0
    if unit.warmup:
        with context.scratch_stats():
            warmup_executed = context.run_phase_compiled(
                traces, cursors, unit.warmup
            )
    window_stats = SimulationStats()
    saved_stats = system.stats
    system.stats = window_stats
    interconnect = system.interconnect
    bytes_before = interconnect.bytes_sent
    cores = system.cores
    starts = {core_id: cores[core_id].time for core_id in traces}
    try:
        detail_executed = context.run_phase_compiled(traces, cursors, unit.detail)
    finally:
        system.stats = saved_stats
    executed = warmup_executed + detail_executed
    if not detail_executed:
        return None, executed
    outcome = WindowOutcome(
        unit_index=index,
        detail_executed=detail_executed,
        stats=window_stats,
        inter_socket_bytes=interconnect.bytes_sent - bytes_before,
        detail_elapsed={
            core_id: cores[core_id].time - starts[core_id] for core_id in traces
        },
    )
    return outcome, executed


def _run_window(
    context: EngineContext,
    traces: Dict[int, CompiledTrace],
    cursors: Dict[int, int],
    unit: SamplingUnit,
    index: int,
) -> Optional[WindowOutcome]:
    """Measure one window on (an isolated copy of) ``context``."""
    return _run_window_counted(context, traces, cursors, unit, index)[0]


class SampledEngine(ExecutionEngine):
    """Compiled detail windows + batched functional fast-forward."""

    name = "sampled"
    supports_sampling = True
    supports_trace_compile = True

    #: Accesses each core advances per turn of the functional round-robin.
    #: Coarser than the timed engines' per-access interleave, which is fine:
    #: fast-forward is approximate by design (no timing), and the chunking
    #: amortises the scheduling overhead the phase exists to avoid.
    _FUNCTIONAL_CHUNK = 32

    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        """Drive the compiled loop through the sampling plan.

        The run-level warm-up (``warmup_accesses_per_core``) executes in full
        detail with blacked-out statistics, exactly like the exact engines.
        The measured region is then covered by the plan's units.

        ``accesses_executed`` counts every access the measured region
        *covered* (fast-forwarded, warm-up and detail alike) so that
        accesses/second is directly comparable with an exact run over the
        same trace.
        """
        system = context.system
        traces = context.compile_streams()
        plan = context.sample_plan
        if not traces:
            stats = SampledSimulationStats(
                SamplingSummary(plan=plan or SamplingPlan())
            )
            system.stats = stats
            return SimulationResult(stats, 0.0, 0, 0)
        cursors = {core_id: 0 for core_id in traces}
        if warmup_accesses_per_core > 0:
            with context.scratch_stats():
                context.run_phase_compiled(traces, cursors, warmup_accesses_per_core)

        # The sampled analogue of reset_measurement(): fresh (sampled)
        # counters, preserved cache/directory/timing state.
        stats = SampledSimulationStats()
        system.stats = stats
        interconnect = system.interconnect
        interconnect.reset_counters()

        region = max(traces[cid].length - cursors[cid] for cid in traces)
        if max_accesses_per_core is not None:
            region = min(region, max_accesses_per_core)
        if plan is None:
            plan = SamplingPlan.for_region(region)
        units = plan.units(region)

        outcomes, executed = self._execute_units(context, traces, cursors, units)
        samples, detail_total, inter_socket_bytes, _ = merge_window_outcomes(
            stats, outcomes, list(traces)
        )
        summary = SamplingSummary(
            plan=plan,
            detail_accesses=detail_total,
            covered_accesses=executed,
        )
        if len(samples) >= 2:
            summary.metrics = estimate_metrics(
                samples, confidence=plan.confidence, bias_floor=plan.bias_floor
            )
        stats.sampling = summary
        return SimulationResult(
            stats=stats,
            total_time_ns=stats.total_time_ns(),
            inter_socket_bytes=inter_socket_bytes,
            accesses_executed=executed,
        )

    # ------------------------------------------------------------------
    # Unit execution: the functional chain + isolated window measurement
    # ------------------------------------------------------------------

    def _execute_units(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        units: Sequence[SamplingUnit],
    ) -> Tuple[List[WindowOutcome], int]:
        """Execute the plan's units; the serial strategy walks the chain once.

        ``sampled-par`` overrides this hook to farm window ranges out to
        worker processes; everything else (setup, merge, estimators) is
        shared, which is what keeps the two engines bit-identical.
        """
        return self._walk_units(context, traces, cursors, units)

    def _walk_units(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        units: Sequence[SamplingUnit],
        *,
        stop: Optional[int] = None,
        count_from: int = 0,
        measure: Optional[Set[int]] = None,
    ) -> Tuple[List[WindowOutcome], int]:
        """Advance the functional chain over ``units[:stop]``.

        The chain itself is purely functional: every unit's fast-forward
        *and* its warmup+detail span advance as one ``run_phase_functional``
        call each (the two-call-per-unit pattern is part of the bit-identity
        contract -- prefix replays in range workers must interleave chunks
        exactly like the serial walk).  Windows are measured on forked
        copies of the chain state, never on the chain, so a window's outcome
        does not depend on who walks the chain or how far it continues.

        ``executed`` counts (and windows are measured) only from unit
        ``count_from`` on -- a range worker replays its prefix without
        re-counting units another worker owns.  ``measure`` optionally
        restricts measurement to a set of unit indices (the parent's inline
        retry of a failed worker's range).

        The *last* measured window of a walk runs inline on the chain
        itself, no isolation: its outcome is computed by the same phase
        calls from the same state either way, and nothing after it reads
        the timing residue it leaves behind (detailed execution is
        state-exact with functional execution, so any trailing fast-forward
        advances identically).  This is what makes a one-window-per-worker
        partition fork-free.
        """
        executed = 0
        outcomes: List[WindowOutcome] = []
        limit = len(units) if stop is None else stop

        def measured(index: int) -> bool:
            return bool(
                units[index].detail
                and index >= count_from
                and (measure is None or index in measure)
            )

        last_measured = next(
            (index for index in range(limit - 1, -1, -1) if measured(index)), None
        )
        for index in range(limit):
            unit = units[index]
            counted = index >= count_from
            if unit.fastforward:
                with context.scratch_stats(), context.functional_timing():
                    advanced = self.run_phase_functional(
                        context, traces, cursors, unit.fastforward
                    )
                if counted:
                    executed += advanced
            span = unit.warmup + unit.detail
            if not span:
                continue
            if index == last_measured:
                # Inline: the window's warmup+detail advance the chain
                # cursors themselves, so the span is consumed -- no
                # functional pass over it.
                outcome, advanced = _run_window_counted(
                    context, traces, cursors, unit, index
                )
                if outcome is not None:
                    outcomes.append(outcome)
                if counted:
                    executed += advanced
                continue
            if measured(index):
                outcome = self._measure_window(context, traces, cursors, unit, index)
                if outcome is not None:
                    outcomes.append(outcome)
            with context.scratch_stats(), context.functional_timing():
                advanced = self.run_phase_functional(context, traces, cursors, span)
            if counted:
                executed += advanced
        return outcomes, executed

    def _measure_window(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        unit: SamplingUnit,
        index: int,
    ) -> Optional[WindowOutcome]:
        """Measure one window on an isolated copy of the chain state.

        On POSIX the copy is a forked child (copy-on-write, ~ms); the child
        runs the window and pickles its :class:`WindowOutcome` back through
        a pipe.  ``os.fork`` is used directly rather than
        ``multiprocessing.Process`` so the measurement works inside daemonic
        campaign workers too (daemons may not spawn multiprocessing
        children).  Elsewhere -- or under ``_FORCE_COPY_ISOLATION`` -- the
        system is deep-copied instead: slower, but state-identical, which
        the equivalence tests assert.
        """
        if _FORCE_COPY_ISOLATION or os.name != "posix":
            system_copy, cursors_copy = copy.deepcopy((context.system, cursors))
            isolated = EngineContext(
                system_copy, context.workload, sample_plan=context.sample_plan
            )
            return _run_window(isolated, traces, cursors_copy, unit, index)
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:  # pragma: no cover - child process exits before coverage flush
            status = 0
            try:
                os.close(read_fd)
                outcome = _run_window(context, traces, dict(cursors), unit, index)
                payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
                with os.fdopen(write_fd, "wb") as pipe:
                    pipe.write(payload)
            except BaseException:
                status = 70
            finally:
                # Skip interpreter teardown: the child must not run the
                # parent's atexit hooks or flush its inherited buffers.
                os._exit(status)
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as pipe:
            payload = pipe.read()
        _, status = os.waitpid(pid, 0)
        if status != 0 or not payload:
            raise RuntimeError(
                f"window measurement child for unit {index} failed "
                f"(wait status {status})"
            )
        return pickle.loads(payload)

    # ------------------------------------------------------------------
    # Functional fast-forward on compiled-trace batches
    # ------------------------------------------------------------------

    def run_phase_functional(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every compiled trace functionally: state, no timing.

        Each round-robin turn walks one ``_FUNCTIONAL_CHUNK``-sized slice of
        a core's trace arrays (a single ``zip`` over the column slices --
        no per-access indexing).  First-touch page placement and the
        broadcast-filter classifier see every access (they are
        order-dependent and must not skip), but the placement call is
        short-circuited for already-placed pages (the policies are
        idempotent, so the skip is state-identical).  L1 read hits are an
        inlined recency update and L1 write hits to Modified lines an
        inlined dirty-bit update; everything else goes through
        :meth:`Socket.access_functional` -- the state-exact mirror of the
        demand path.  Callers wrap this phase in ``scratch_stats`` and
        ``functional_timing`` so neither statistics nor busy-until state
        advance.
        """
        system = context.system
        classifier = system.page_classifier
        record_access = classifier.record_access if classifier is not None else None
        mapper = system.mapper
        home_of_page = mapper.policy.home_of_page
        touched_pages = mapper._touched_pages
        config = system.config

        states = []
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit_per_core is None else min(
                trace.length, start + limit_per_core
            )
            if start >= end:
                continue
            core = system.cores[core_id]
            socket = system.sockets[config.socket_of_core(core_id)]
            l1 = socket.l1s[core.local_index]
            states.append((
                core_id,
                trace.blocks,
                trace.pages,
                trace.addrs,
                trace.writes,
                end,
                core.local_index,
                core.thread_id,
                socket.access_functional,
                l1._sets if getattr(l1, "_touch_moves", False) else None,
                l1.num_sets,
                socket.socket_id,
                socket.llc.peek,
            ))

        executed = 0
        chunk = self._FUNCTIONAL_CHUNK
        active = states
        while active:
            next_active = []
            for state in active:
                (core_id, blocks, pages, addrs, writes, end,
                 local_index, thread_id, access_functional, l1_sets,
                 num_sets, socket_id, llc_peek) = state
                i = cursors[core_id]
                stop = min(end, i + chunk)
                executed += stop - i
                if l1_sets is None:
                    # Non-LRU L1: every access takes the full functional path.
                    for offset in range(i, stop):
                        page = pages[offset]
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        if record_access is not None:
                            record_access(thread_id, addrs[offset])
                        access_functional(
                            local_index, blocks[offset], writes[offset], thread_id
                        )
                elif record_access is not None:
                    for block, page, write, addr in zip(
                        blocks[i:stop], pages[i:stop], writes[i:stop], addrs[i:stop]
                    ):
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        record_access(thread_id, addr)
                        cache_set = l1_sets.get(block % num_sets)
                        line = cache_set.get(block) if cache_set is not None else None
                        if line is None:
                            access_functional(local_index, block, write, thread_id)
                        elif not write:
                            # Inlined intrusive-LRU L1 read-hit path (recency
                            # only; the cache's own hit counters are skipped).
                            del cache_set[block]
                            cache_set[block] = line
                        elif line.state is _MODIFIED:
                            # Inlined L1 write-hit path: recency + dirty bits.
                            del cache_set[block]
                            cache_set[block] = line
                            line.dirty = True
                            llc_line = llc_peek(block)
                            if llc_line is not None:
                                llc_line.dirty = True
                        else:
                            access_functional(local_index, block, True, thread_id)
                else:
                    for block, page, write in zip(
                        blocks[i:stop], pages[i:stop], writes[i:stop]
                    ):
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        cache_set = l1_sets.get(block % num_sets)
                        line = cache_set.get(block) if cache_set is not None else None
                        if line is None:
                            access_functional(local_index, block, write, thread_id)
                        elif not write:
                            del cache_set[block]
                            cache_set[block] = line
                        elif line.state is _MODIFIED:
                            del cache_set[block]
                            cache_set[block] = line
                            line.dirty = True
                            llc_line = llc_peek(block)
                            if llc_line is not None:
                                llc_line.dirty = True
                        else:
                            access_functional(local_index, block, True, thread_id)
                cursors[core_id] = stop
                if stop < end:
                    next_active.append(state)
            active = next_active
        return executed
