"""The ``sampled`` engine: SMARTS-style statistical sampling on compiled traces.

The measured region is covered by a :class:`~repro.stats.sampling.SamplingPlan`'s
units: functional **fast-forward** (state advances, no timing), detailed but
unmeasured **warm-up**, and measured **detail** windows whose per-window
counter deltas become the observations behind the per-metric confidence
intervals (docs/sampling.md).

The fast-forward phase runs directly on the compiled-trace batches: each
core's slice of the trace arrays is walked with the L1 hit paths (read *and*
write) inlined, first-touch page placement short-circuited for
already-placed pages, and everything below the L1 routed through
:meth:`~repro.system.socket.Socket.access_functional`, which drives the
coherence protocols' lean state-only ``*_functional`` mirrors.  This is what
makes fast-forward substantially cheaper per access than a detail window
while leaving bit-identical architectural state behind
(``tests/system/test_sampling.py`` and ``tools/check_sampling.py`` validate
the resulting estimates against exact runs).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..caches.block import CacheBlockState
from ..stats.sampling import (
    SampledSimulationStats,
    SamplingPlan,
    SamplingSummary,
    delta_counters,
    estimate_metrics,
    snapshot_counters,
)
from ..workloads.compiled import CompiledTrace
from .base import EngineContext, ExecutionEngine, SimulationResult

__all__ = ["SampledEngine"]

_MODIFIED = CacheBlockState.MODIFIED


class SampledEngine(ExecutionEngine):
    """Compiled detail windows + batched functional fast-forward."""

    name = "sampled"
    supports_sampling = True
    supports_trace_compile = True

    #: Accesses each core advances per turn of the functional round-robin.
    #: Coarser than the timed engines' per-access interleave, which is fine:
    #: fast-forward is approximate by design (no timing), and the chunking
    #: amortises the scheduling overhead the phase exists to avoid.
    _FUNCTIONAL_CHUNK = 32

    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        """Drive the compiled loop through the sampling plan.

        The run-level warm-up (``warmup_accesses_per_core``) executes in full
        detail with blacked-out statistics, exactly like the exact engines.
        The measured region is then covered by the plan's units.

        ``accesses_executed`` counts every access the measured region
        *covered* (fast-forwarded, warm-up and detail alike) so that
        accesses/second is directly comparable with an exact run over the
        same trace.
        """
        system = context.system
        traces = context.compile_streams()
        plan = context.sample_plan
        if not traces:
            stats = SampledSimulationStats(
                SamplingSummary(plan=plan or SamplingPlan())
            )
            system.stats = stats
            return SimulationResult(stats, 0.0, 0, 0)
        cursors = {core_id: 0 for core_id in traces}
        if warmup_accesses_per_core > 0:
            with context.scratch_stats():
                context.run_phase_compiled(traces, cursors, warmup_accesses_per_core)

        # The sampled analogue of reset_measurement(): fresh (sampled)
        # counters, preserved cache/directory/timing state.
        stats = SampledSimulationStats()
        system.stats = stats
        interconnect = system.interconnect
        interconnect.reset_counters()

        region = max(traces[cid].length - cursors[cid] for cid in traces)
        if max_accesses_per_core is not None:
            region = min(region, max_accesses_per_core)
        if plan is None:
            plan = SamplingPlan.for_region(region)
        units = plan.units(region)

        cores = system.cores
        executed = 0
        detail_total = 0
        inter_socket_bytes = 0
        detail_elapsed = {core_id: 0.0 for core_id in traces}
        samples = []
        for unit in units:
            if unit.fastforward:
                with context.scratch_stats(), context.functional_timing():
                    executed += self.run_phase_functional(
                        context, traces, cursors, unit.fastforward
                    )
            if unit.warmup:
                with context.scratch_stats():
                    executed += context.run_phase_compiled(traces, cursors, unit.warmup)
            if unit.detail:
                before = snapshot_counters(stats)
                bytes_before = interconnect.bytes_sent
                starts = {core_id: cores[core_id].time for core_id in traces}
                detail_executed = context.run_phase_compiled(
                    traces, cursors, unit.detail
                )
                if not detail_executed:
                    continue  # every trace exhausted before this window
                executed += detail_executed
                detail_total += detail_executed
                samples.append(delta_counters(before, snapshot_counters(stats)))
                inter_socket_bytes += interconnect.bytes_sent - bytes_before
                for core_id in traces:
                    detail_elapsed[core_id] += cores[core_id].time - starts[core_id]

        for core_id, elapsed in detail_elapsed.items():
            stats.core_finish_ns[core_id] = elapsed
        summary = SamplingSummary(
            plan=plan,
            detail_accesses=detail_total,
            covered_accesses=executed,
        )
        if len(samples) >= 2:
            summary.metrics = estimate_metrics(
                samples, confidence=plan.confidence, bias_floor=plan.bias_floor
            )
        stats.sampling = summary
        return SimulationResult(
            stats=stats,
            total_time_ns=stats.total_time_ns(),
            inter_socket_bytes=inter_socket_bytes,
            accesses_executed=executed,
        )

    # ------------------------------------------------------------------
    # Functional fast-forward on compiled-trace batches
    # ------------------------------------------------------------------

    def run_phase_functional(
        self,
        context: EngineContext,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every compiled trace functionally: state, no timing.

        Each round-robin turn walks one ``_FUNCTIONAL_CHUNK``-sized slice of
        a core's trace arrays (a single ``zip`` over the column slices --
        no per-access indexing).  First-touch page placement and the
        broadcast-filter classifier see every access (they are
        order-dependent and must not skip), but the placement call is
        short-circuited for already-placed pages (the policies are
        idempotent, so the skip is state-identical).  L1 read hits are an
        inlined recency update and L1 write hits to Modified lines an
        inlined dirty-bit update; everything else goes through
        :meth:`Socket.access_functional` -- the state-exact mirror of the
        demand path.  Callers wrap this phase in ``scratch_stats`` and
        ``functional_timing`` so neither statistics nor busy-until state
        advance.
        """
        system = context.system
        classifier = system.page_classifier
        record_access = classifier.record_access if classifier is not None else None
        mapper = system.mapper
        home_of_page = mapper.policy.home_of_page
        touched_pages = mapper._touched_pages
        config = system.config

        states = []
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit_per_core is None else min(
                trace.length, start + limit_per_core
            )
            if start >= end:
                continue
            core = system.cores[core_id]
            socket = system.sockets[config.socket_of_core(core_id)]
            l1 = socket.l1s[core.local_index]
            states.append((
                core_id,
                trace.blocks,
                trace.pages,
                trace.addrs,
                trace.writes,
                end,
                core.local_index,
                core.thread_id,
                socket.access_functional,
                l1._sets if getattr(l1, "_touch_moves", False) else None,
                l1.num_sets,
                socket.socket_id,
                socket.llc.peek,
            ))

        executed = 0
        chunk = self._FUNCTIONAL_CHUNK
        active = states
        while active:
            next_active = []
            for state in active:
                (core_id, blocks, pages, addrs, writes, end,
                 local_index, thread_id, access_functional, l1_sets,
                 num_sets, socket_id, llc_peek) = state
                i = cursors[core_id]
                stop = min(end, i + chunk)
                executed += stop - i
                if l1_sets is None:
                    # Non-LRU L1: every access takes the full functional path.
                    for offset in range(i, stop):
                        page = pages[offset]
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        if record_access is not None:
                            record_access(thread_id, addrs[offset])
                        access_functional(
                            local_index, blocks[offset], writes[offset], thread_id
                        )
                elif record_access is not None:
                    for block, page, write, addr in zip(
                        blocks[i:stop], pages[i:stop], writes[i:stop], addrs[i:stop]
                    ):
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        record_access(thread_id, addr)
                        cache_set = l1_sets.get(block % num_sets)
                        line = cache_set.get(block) if cache_set is not None else None
                        if line is None:
                            access_functional(local_index, block, write, thread_id)
                        elif not write:
                            # Inlined intrusive-LRU L1 read-hit path (recency
                            # only; the cache's own hit counters are skipped).
                            del cache_set[block]
                            cache_set[block] = line
                        elif line.state is _MODIFIED:
                            # Inlined L1 write-hit path: recency + dirty bits.
                            del cache_set[block]
                            cache_set[block] = line
                            line.dirty = True
                            llc_line = llc_peek(block)
                            if llc_line is not None:
                                llc_line.dirty = True
                        else:
                            access_functional(local_index, block, True, thread_id)
                else:
                    for block, page, write in zip(
                        blocks[i:stop], pages[i:stop], writes[i:stop]
                    ):
                        if page not in touched_pages:
                            touched_pages[page] = home_of_page(page, socket_id)
                        cache_set = l1_sets.get(block % num_sets)
                        line = cache_set.get(block) if cache_set is not None else None
                        if line is None:
                            access_functional(local_index, block, write, thread_id)
                        elif not write:
                            del cache_set[block]
                            cache_set[block] = line
                        elif line.state is _MODIFIED:
                            del cache_set[block]
                            cache_set[block] = line
                            line.dirty = True
                            llc_line = llc_peek(block)
                            if llc_line is not None:
                                llc_line.dirty = True
                        else:
                            access_functional(local_index, block, True, thread_id)
                cursors[core_id] = stop
                if stop < end:
                    next_active.append(state)
            active = next_active
        return executed
