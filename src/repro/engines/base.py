"""The execution-engine interface and the shared per-run machinery.

An :class:`ExecutionEngine` is a strategy for driving a
:class:`~repro.system.numa_system.NumaSystem` with a workload's access
streams.  The repository ships three (``compiled``, ``object``, ``sampled``
-- see :mod:`repro.engines`), and third-party engines plug in through
:func:`repro.engines.register` without touching the simulator.

Engines are stateless: everything one *run* needs -- the system, the
workload, stream opening/compilation, first-touch page placement, DRAM-cache
pre-warming, the phase loops and the result assembly -- lives in the
:class:`EngineContext` the :class:`~repro.system.simulator.Simulator` builds
per run and hands to :meth:`ExecutionEngine.run`.  That shared setup used to
be duplicated across the per-engine private methods of a monolithic
``Simulator``; centralising it here is what keeps a new engine small.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, Optional

from ..stats.counters import SimulationStats
from ..workloads.compiled import CompiledTrace, compile_trace
from ..workloads.trace import MemoryAccess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..stats.sampling import SamplingPlan
    from ..system.numa_system import NumaSystem

__all__ = [
    "SimulationResult",
    "EngineContext",
    "ExecutionEngine",
    "scratch_stats",
    "functional_timing",
    "WORKER_ENV",
]

#: Environment marker set in every repro-owned worker process (isolated
#: campaign points, ``run_all_parallel`` pool workers, ``repro serve``
#: daemons, sampled-par range workers).  Engines that spawn their own
#: processes (``sampled-par``) clamp their effective parallelism to 1 when
#: it is set, so nested parallelism never oversubscribes the machine.
WORKER_ENV = "REPRO_IN_WORKER"


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    stats: SimulationStats
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int

    @property
    def amat_ns(self) -> float:
        return self.stats.amat_ns()


@contextmanager
def scratch_stats(system: "NumaSystem"):
    """Swap the system statistics for a throw-away object, then restore.

    Everything in the machine reaches the counters through ``system.stats``
    dynamically (sockets, cores and protocols all read the attribute per
    access), so a swap is a complete measurement blackout: warm-up windows
    advance every architectural and timing structure while the measured
    counters stay untouched.
    """
    real = system.stats
    system.stats = SimulationStats()
    try:
        yield
    finally:
        system.stats = real


@contextmanager
def functional_timing(system: "NumaSystem"):
    """Stub the timing models out while leaving every state update intact.

    Inside this context the interconnect's ``send`` and each memory
    controller's ``read_fast``/``write_fast`` return zero latency and mutate
    no busy-until bandwidth state, so the coherence protocols can run their
    normal (state-exact) transaction logic during fast-forward without
    polluting channel/link occupancy for the detailed windows that follow.
    The protocols' lean ``*_functional`` mirrors skip the timing calls
    entirely; this context is what keeps the *generic* mirror fallback (and
    any protocol without a lean mirror) state-exact too.
    """

    def _zero_send(now, src, dst, message_class):
        return 0.0

    def _zero_memory(now, block):
        return 0.0

    interconnect = system.interconnect
    protocol = system.protocol
    saved_send = interconnect.send
    saved_protocol_send = protocol._net_send
    interconnect.send = _zero_send
    protocol._net_send = _zero_send
    saved_memory = []
    for sock in system.sockets:
        memory = sock.memory
        saved_memory.append((memory, memory.read_fast, memory.write_fast))
        memory.read_fast = _zero_memory
        memory.write_fast = _zero_memory
    try:
        yield
    finally:
        interconnect.send = saved_send
        protocol._net_send = saved_protocol_send
        for memory, read_fast, write_fast in saved_memory:
            memory.read_fast = read_fast
            memory.write_fast = write_fast


class EngineContext:
    """Everything one simulation run shares across engines.

    Owns the pieces every engine needs -- the system, the workload, stream
    opening/compilation, first-touch preparation, DRAM-cache pre-warm, the
    two exact phase loops and result assembly -- so concrete engines contain
    only their scheduling strategy.
    """

    def __init__(
        self,
        system: "NumaSystem",
        workload,
        *,
        sample_plan: Optional["SamplingPlan"] = None,
        engine_options: Optional[Dict[str, object]] = None,
    ) -> None:
        self.system = system
        self.workload = workload
        #: Plan for sampling engines; ``None`` lets the engine derive one
        #: from the measured-region length (:meth:`SamplingPlan.for_region`).
        self.sample_plan = sample_plan
        #: Engine-specific execution knobs (``jobs``, ``timeout_s``, ...).
        #: Strictly *how* a run executes, never *what* it computes: options
        #: must not change any reported statistic, and they never enter
        #: store payloads (see ``sweep_point_payload``).
        self.engine_options: Dict[str, object] = dict(engine_options or {})

    # ------------------------------------------------------------------
    # Stream setup
    # ------------------------------------------------------------------

    def open_streams(self) -> Dict[int, Iterator[MemoryAccess]]:
        """Create one access iterator per active core."""
        num_threads = min(self.workload.num_threads, self.system.num_cores)
        return {
            thread_id: iter(self.workload.stream(thread_id))
            for thread_id in range(num_threads)
        }

    def compile_streams(self) -> Dict[int, CompiledTrace]:
        """Materialise one compiled trace per active core."""
        num_threads = min(self.workload.num_threads, self.system.num_cores)
        layout = self.system.layout
        return {
            thread_id: compile_trace(self.workload, thread_id, layout=layout)
            for thread_id in range(num_threads)
        }

    # ------------------------------------------------------------------
    # Warm-up helpers
    # ------------------------------------------------------------------

    def prepare_first_touch(self) -> None:
        """Model the first-touch policies' page placement.

        * **FT1**: the pages touched by the (single-threaded) initialisation
          phase are all homed at socket 0 before the parallel region starts
          (this is why the paper found FT1 to perform poorly).
        * **FT2 / first_touch**: placement reflects steady state -- the
          measured window starts long after the data set was allocated, so
          private pages are homed at their owning thread's socket and shared
          pages are spread (pseudo-uniformly, by page number) across the
          sockets.  Pages not described by the workload's
          :meth:`memory_regions` hint still follow plain dynamic first touch.

        The interleave policy ignores both hints.
        """
        policy_name = self.system.config.allocation_policy.lower()
        pin = getattr(self.system.policy, "pin_page", None)
        if pin is None:
            return

        if policy_name == "ft1":
            pages = getattr(self.workload, "serial_init_pages", None)
            if pages is None:
                return
            for page in pages():
                pin(page, 0)
            return

        if policy_name in ("ft2", "first_touch", "first-touch"):
            regions = getattr(self.workload, "memory_regions", None)
            if regions is None:
                return
            layout = self.system.layout
            config = self.system.config
            num_sockets = config.num_sockets
            for region in regions():
                first_page = layout.page_of(region["base"])
                num_pages = max(1, region["size"] // layout.page_size)
                owner_thread = region.get("owner_thread")
                if owner_thread is not None:
                    core = owner_thread % config.total_cores
                    home = config.socket_of_core(core)
                    for page in range(first_page, first_page + num_pages):
                        pin(page, home)
                else:
                    for page in range(first_page, first_page + num_pages):
                        pin(page, page % num_sockets)

    def prewarm_dram_caches(self, *, fill_fraction: float = 1.0) -> int:
        """Functionally pre-load the DRAM caches with the workload's shared data.

        The paper warms its DRAM caches with 100 million accesses before
        measuring; replaying that many accesses is not affordable here, so
        the equivalent steady-state content is installed directly: each
        socket's DRAM cache is filled with blocks of the shared regions (cold
        first, then warm, then hot, so that the hottest data wins
        direct-mapped conflicts), up to ``fill_fraction`` of its capacity.
        For directory designs that track DRAM-cache residency (full-dir and
        c3d-full-dir) the pre-loaded blocks are also registered as sharers so
        the directory stays a superset of reality.

        Returns the largest number of blocks inserted into any single cache.
        """
        system = self.system
        if not system.protocol.uses_dram_cache:
            return 0
        regions_fn = getattr(self.workload, "memory_regions", None)
        if regions_fn is None:
            return 0
        layout = system.layout
        shared_regions = [r for r in regions_fn() if r.get("owner_thread") is None]
        # Least important first so the hottest regions win conflicts.
        order = {"cold": 0, "warm": 1, "hot": 2}
        shared_regions.sort(key=lambda r: order.get(r["kind"], 0))
        track_in_directory = system.protocol.tracks_dram_cache_in_directory

        max_inserted = 0
        for sock in system.sockets:
            if sock.dram_cache is None:
                continue
            capacity_blocks = max(1, int(sock.dram_cache.num_sets * fill_fraction))
            inserted = 0
            for region in shared_regions:
                base_block = layout.block_of(region["base"])
                num_blocks = max(1, region["size"] // layout.block_size)
                block_range = range(base_block, base_block + min(num_blocks, capacity_blocks))
                if track_in_directory:
                    for block in block_range:
                        sock.dram_cache.insert(block, dirty=False)
                        inserted += 1
                        home = system.mapper.home_of_block(block)
                        system.directories[home].add_sharer(block, sock.socket_id)
                else:
                    inserted += sock.dram_cache.bulk_insert_clean(block_range)
            max_inserted = max(max_inserted, inserted)
        return max_inserted

    # ------------------------------------------------------------------
    # Measurement-blackout helpers (re-exported for engines)
    # ------------------------------------------------------------------

    def scratch_stats(self):
        """Blackout context: statistics land on a throw-away object."""
        return scratch_stats(self.system)

    def functional_timing(self):
        """Stub context: interconnect/memory timing models return zero."""
        return functional_timing(self.system)

    # ------------------------------------------------------------------
    # Phase accounting
    # ------------------------------------------------------------------

    def empty_result(self) -> SimulationResult:
        """The result of a run whose workload produced no streams."""
        return SimulationResult(self.system.stats, 0.0, 0, 0)

    def core_times(self, core_ids) -> Dict[int, float]:
        """Snapshot of each core's local clock (phase-boundary accounting)."""
        cores = self.system.cores
        return {core_id: cores[core_id].time for core_id in core_ids}

    def finalize(
        self, core_ids, warmup_offsets: Dict[int, float], executed: int
    ) -> SimulationResult:
        """Assemble the :class:`SimulationResult` of an exact measured phase."""
        system = self.system
        stats = system.stats
        for core_id in core_ids:
            stats.core_finish_ns[core_id] = (
                system.cores[core_id].time - warmup_offsets[core_id]
            )
        return SimulationResult(
            stats=stats,
            total_time_ns=stats.total_time_ns(),
            inter_socket_bytes=system.inter_socket_bytes(),
            accesses_executed=executed,
        )

    # ------------------------------------------------------------------
    # Exact phase loops (shared by the exact engines and sampled windows)
    # ------------------------------------------------------------------

    def run_phase_object(
        self,
        streams: Dict[int, Iterator[MemoryAccess]],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every stream until exhaustion or ``limit_per_core`` accesses."""
        system = self.system
        classifier = system.page_classifier
        mapper = system.mapper
        config = system.config

        heap = [(system.cores[core_id].time, core_id) for core_id in streams]
        heapq.heapify(heap)
        counts = {core_id: 0 for core_id in streams}
        executed = 0

        while heap:
            _time, core_id = heapq.heappop(heap)
            if limit_per_core is not None and counts[core_id] >= limit_per_core:
                continue
            try:
                access = next(streams[core_id])
            except StopIteration:
                continue

            core = system.cores[core_id]
            socket_id = config.socket_of_core(core_id)
            # NUMA placement (first touch) and page classification are driven
            # by the raw access stream, before the caches see the access.
            mapper.touch(access.addr, socket_id)
            if classifier is not None:
                classifier.record_access(core.thread_id, access.addr)

            core.execute(access)
            counts[core_id] += 1
            executed += 1
            if limit_per_core is None or counts[core_id] < limit_per_core:
                heapq.heappush(heap, (core.time, core_id))
        return executed

    def run_phase_compiled(
        self,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every compiled trace until exhaustion or ``limit_per_core``.

        Executes the same access interleaving as :meth:`run_phase_object`
        (smallest ``(core time, core id)`` first) with the per-access Python
        overhead stripped out: no generator resumption, no ``MemoryAccess``
        allocation, no address arithmetic (block/page are precomputed), a
        single ``heappushpop`` per access instead of a push/pop pair -- and
        no heap at all when at most two cores are active (a direct two-stream
        merge).
        """
        system = self.system
        classifier = system.page_classifier
        record_access = classifier.record_access if classifier is not None else None
        mapper = system.mapper
        home_of_page = mapper.policy.home_of_page
        touched_pages = mapper._touched_pages
        config = system.config
        cores = system.cores

        # Per-core state tuples indexed by core id:
        # (blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id)
        states = {}
        ends = {}
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit_per_core is None else min(
                trace.length, start + limit_per_core
            )
            ends[core_id] = end
            if start >= end:
                continue
            core = cores[core_id]
            states[core_id] = (
                trace.blocks,
                trace.pages,
                trace.addrs,
                trace.writes,
                trace.gaps,
                core.execute_fast,
                config.socket_of_core(core_id),
                core.thread_id,
            )
        if not states:
            return 0

        executed = 0

        def run_one(core_id: int) -> float:
            """Execute one access of ``core_id``; returns the core's new time."""
            blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id = states[
                core_id
            ]
            i = cursors[core_id]
            page = pages[i]
            # Inlined AddressMapper.touch_page.
            home = home_of_page(page, socket_id)
            if page not in touched_pages:
                touched_pages[page] = home
            if record_access is not None:
                record_access(thread_id, addrs[i])
            new_time = execute_fast(blocks[i], page, writes[i], gaps[i])
            cursors[core_id] = i + 1
            return new_time

        if len(states) <= 2:
            # Two-stream merge: compare the two head entries directly.
            entries = sorted((cores[cid].time, cid) for cid in states)
            if len(entries) == 1:
                (_t, cid), = entries
                end = ends[cid]
                while cursors[cid] < end:
                    run_one(cid)
                    executed += 1
                return executed
            a, b = entries
            while True:
                if a <= b:
                    current, other = a, b
                else:
                    current, other = b, a
                cid = current[1]
                new_time = run_one(cid)
                executed += 1
                if cursors[cid] >= ends[cid]:
                    # Drain the remaining stream alone.
                    cid = other[1]
                    end = ends[cid]
                    while cursors[cid] < end:
                        run_one(cid)
                        executed += 1
                    return executed
                a, b = (new_time, cid), other

        heap = [(cores[cid].time, cid) for cid in states]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop

        current = heappop(heap)
        while True:
            cid = current[1]
            # Inlined run_one (this loop executes once per simulated access).
            blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id = states[
                cid
            ]
            i = cursors[cid]
            page = pages[i]
            # Inlined AddressMapper.touch_page.
            home = home_of_page(page, socket_id)
            if page not in touched_pages:
                touched_pages[page] = home
            if record_access is not None:
                record_access(thread_id, addrs[i])
            new_time = execute_fast(blocks[i], page, writes[i], gaps[i])
            i += 1
            cursors[cid] = i
            executed += 1
            if i < ends[cid]:
                current = heappushpop(heap, (new_time, cid))
            elif heap:
                current = heappop(heap)
            else:
                return executed


class ExecutionEngine(ABC):
    """Strategy interface: how to drive a system with a workload.

    Concrete engines declare themselves through three capability flags the
    registry, the CLI and the test matrix read (no string comparisons
    anywhere else):

    ``supports_sampling``
        The engine consumes a :class:`~repro.stats.sampling.SamplingPlan`
        and reports :class:`~repro.stats.sampling.SampledSimulationStats`
        (per-metric confidence intervals) instead of bit-exact counters.
    ``supports_trace_compile``
        The engine materialises workload streams into
        :class:`~repro.workloads.compiled.CompiledTrace` arrays (any
        workload works either way; the flag describes the execution
        representation).
    ``deterministic``
        Identical inputs produce bit-identical statistics.  Every built-in
        engine is deterministic -- the results store and the golden tests
        rely on it -- so a non-deterministic third-party engine must opt
        out to be skipped by those layers.
    """

    #: Registry name (``engine=`` string); unique per registered engine.
    name: str = "abstract"
    supports_sampling: bool = False
    supports_trace_compile: bool = True
    deterministic: bool = True
    #: Results-store alias: the engine name hashed into store payloads.
    #: ``None`` means the registry name itself.  An engine that is
    #: *bit-identical* to another one by contract (``sampled-par`` vs
    #: ``sampled``) aliases to it so both share cached results and pinned
    #: store keys stay byte-identical.
    store_name: Optional[str] = None

    @abstractmethod
    def run(
        self,
        context: EngineContext,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
    ) -> SimulationResult:
        """Execute the workload on the context's system and return the result.

        ``warmup_accesses_per_core`` accesses per core execute first with
        full architectural effect but without counting toward the reported
        statistics or the measured execution time; ``max_accesses_per_core``
        bounds the measured region.  First-touch preparation and DRAM-cache
        pre-warm have already been applied by the caller.
        """

    @classmethod
    def capabilities(cls) -> Dict[str, bool]:
        """The engine's capability flags as a dict (CLI/docs convenience)."""
        return {
            "supports_sampling": cls.supports_sampling,
            "supports_trace_compile": cls.supports_trace_compile,
            "deterministic": cls.deterministic,
        }
