"""Clean DRAM-cache write-through policy (section IV-A).

The first of C3D's two ideas is to keep DRAM caches *clean*: when the LLC
evicts a modified block, the data is written back to main memory *and* a
clean copy is retained in the local DRAM cache.  The consequences this module
captures:

* a remote socket's read miss never needs to consult another socket's DRAM
  cache -- memory is always up to date for any block whose only copies live
  in DRAM caches;
* the local DRAM cache's hit rate is unaffected by the write-through, because
  a subsequent local read still hits the retained clean copy;
* write *traffic* to memory equals the baseline's (every dirty LLC eviction
  reaches memory in both designs), which is why Fig. 8 reports no change in
  write traffic.

:class:`CleanWriteThroughPolicy` encapsulates the eviction-time decision so
it can be unit-tested and ablated (the ablation benchmarks compare it against
the dirty victim-cache policy used by full-dir/snoopy).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..caches.dram_cache import DRAMCache

__all__ = ["EvictionDecision", "CleanWriteThroughPolicy", "DirtyVictimCachePolicy"]


@dataclass(frozen=True)
class EvictionDecision:
    """What to do with an LLC victim.

    Attributes
    ----------
    insert_in_dram_cache:
        Whether a copy of the victim should be inserted into the local DRAM
        cache (as a victim cache entry).
    insert_dirty:
        Whether that copy carries the dirty bit (only meaningful when
        ``insert_in_dram_cache``).
    write_through_to_memory:
        Whether the victim's data must be written back to its home memory now.
    """

    insert_in_dram_cache: bool
    insert_dirty: bool
    write_through_to_memory: bool


class CleanWriteThroughPolicy:
    """C3D's policy: retain a clean copy locally, write dirty data to memory."""

    name = "clean-write-through"
    keeps_cache_clean = True

    def on_llc_eviction(self, *, dirty: bool, has_dram_cache: bool = True) -> EvictionDecision:
        """Decide how to handle an LLC victim under the clean-cache policy."""
        if not has_dram_cache:
            return EvictionDecision(
                insert_in_dram_cache=False,
                insert_dirty=False,
                write_through_to_memory=dirty,
            )
        return EvictionDecision(
            insert_in_dram_cache=True,
            insert_dirty=False,
            write_through_to_memory=dirty,
        )

    @staticmethod
    def validate_cache(cache: DRAMCache) -> bool:
        """Check the clean invariant: no resident line is dirty."""
        return all(not line.dirty for line in (cache.peek(b) for b in cache.resident_blocks())
                   if line is not None)


class DirtyVictimCachePolicy:
    """The conventional policy (full-dir / snoopy): absorb dirty victims as-is."""

    name = "dirty-victim-cache"
    keeps_cache_clean = False

    def on_llc_eviction(self, *, dirty: bool, has_dram_cache: bool = True) -> EvictionDecision:
        """Decide how to handle an LLC victim under the dirty-victim policy."""
        if not has_dram_cache:
            return EvictionDecision(
                insert_in_dram_cache=False,
                insert_dirty=False,
                write_through_to_memory=dirty,
            )
        return EvictionDecision(
            insert_in_dram_cache=True,
            insert_dirty=dirty,
            write_through_to_memory=False,
        )
