"""C3D core: the paper's contribution (clean coherent DRAM caches).

This package contains the C3D protocol itself, the clean write-through
policy, the idealised C3D + full-directory variant, and the TLB-based
private/shared page classifier used to filter broadcasts.
"""

from .c3d_full_dir import C3DFullDirectoryProtocol
from .c3d_protocol import C3DProtocol
from .clean_dram_cache import (
    CleanWriteThroughPolicy,
    DirtyVictimCachePolicy,
    EvictionDecision,
)
from .page_classifier import ClassifierStats, PrivateSharedClassifier

__all__ = [
    "C3DProtocol",
    "C3DFullDirectoryProtocol",
    "CleanWriteThroughPolicy",
    "DirtyVictimCachePolicy",
    "EvictionDecision",
    "PrivateSharedClassifier",
    "ClassifierStats",
]
