"""C3D + idealised full directory (evaluated as *c3d-full-dir*).

This design combines C3D's clean DRAM caches with an idealised inclusive
global directory (no recalls, baseline 10-cycle access latency) that also
tracks blocks held only in DRAM caches.  Because the directory always knows
the precise sharer set, no broadcast invalidations are ever needed -- the
paper uses this configuration to isolate the performance cost of C3D's
broadcasts (which turns out to be small: 19.2% vs. 20.3% average speedup in
the 4-socket system).

Two behavioural changes relative to :class:`~repro.core.c3d_protocol.C3DProtocol`:

* a block written back by the LLC (PutX) transitions the directory entry to
  *Shared* (owned by the writing socket's DRAM cache) instead of Invalid, so
  the block stays tracked;
* reads and writes to blocks the plain C3D directory would consider
  untracked consult the (idealised) full sharing information instead, so the
  GetX-in-Invalid case sends directed invalidations only to actual holders.
"""

from __future__ import annotations

from ..coherence.directory import DirectoryState
from ..coherence.messages import CoherenceRequestType, EvictionResult, MissResult, ServiceSource
from ..coherence.protocol_base import GlobalCoherenceProtocol
from .c3d_protocol import C3DProtocol

__all__ = ["C3DFullDirectoryProtocol"]


class C3DFullDirectoryProtocol(C3DProtocol):
    """Clean DRAM caches with an idealised full (inclusive) directory."""

    name = "c3d-full-dir"
    tracks_dram_cache_in_directory = True

    # The timed entry points below diverge from plain C3D (the ideal
    # directory tracks DRAM-cache residency), so the lean functional mirrors
    # inherited from C3DProtocol would drift; fall back to the generic
    # state-exact mirrors, which wrap the timed paths.
    read_miss_functional = GlobalCoherenceProtocol.read_miss_functional
    write_miss_functional = GlobalCoherenceProtocol.write_miss_functional
    llc_eviction_functional = GlobalCoherenceProtocol.llc_eviction_functional

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        result = super().read_miss(now, requester, block)
        # The idealised directory tracks DRAM-cache residency too, so a read
        # served by memory (the untracked case in plain C3D) still allocates
        # a sharer entry here.  Local DRAM-cache hits are already tracked.
        if result.source in (ServiceSource.LOCAL_MEMORY, ServiceSource.REMOTE_MEMORY):
            directory = self.directory_for(block)
            self._directory_note_read_sharer(directory, block, requester)
        return result

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        request_type = (
            CoherenceRequestType.UPGRADE if has_shared_copy else CoherenceRequestType.GETX
        )
        local_hit = False
        local_latency = 0.0
        if not has_shared_copy:
            local_hit, local_latency, _ = self._probe_local_dram_cache(now, requester, block)

        home = self.home_of(block)
        directory = self.directories[home]
        latency = local_latency
        latency += self._request_to_home(now + latency, requester, home)
        latency += directory.latency_ns
        self.stats.directory_lookups += 1
        entry = directory.lookup(block)
        invalidations = 0

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            latency += self._invalidate_remote_socket(
                now + latency, home, owner, block, include_dram_cache=True
            )
            latency += self._data_response(now + latency, owner, requester)
            invalidations = 1
            source = ServiceSource.REMOTE_LLC
        else:
            # The idealised directory knows the exact holders: use the tracked
            # sharing vector when present, otherwise fall back to the true
            # holder set (equivalent, since the ideal directory is precise).
            if entry is not None and entry.sharers:
                targets = sorted(entry.sharers - {requester})
            else:
                targets = self._sockets_with_any_copy(block, exclude=requester)
            invalidation_latency = 0.0
            for target in targets:
                invalidation_latency = max(
                    invalidation_latency,
                    self._invalidate_remote_socket(
                        now + latency, home, target, block, include_dram_cache=True
                    ),
                )
                invalidations += 1
            data_latency, source = self._write_data_path(
                now + latency, requester, home, block,
                has_shared_copy=has_shared_copy, local_hit=local_hit,
            )
            latency += max(invalidation_latency, data_latency)

        directory.set_modified(block, requester)
        if has_shared_copy:
            self.stats.upgrades += 1
        return MissResult(
            latency=latency,
            source=source,
            request_type=request_type,
            invalidations=invalidations,
            used_broadcast=False,
        )

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def llc_eviction(
        self, now: float, requester: int, block: int, *, dirty: bool
    ) -> EvictionResult:
        result = EvictionResult()
        sock = self.socket(requester)
        home = self.home_of(block)
        directory = self.directories[home]

        if sock.dram_cache is not None:
            self._insert_into_dram_cache(now, requester, block, dirty=False)
            result.inserted_in_dram_cache = True

        if dirty:
            result.latency = self._memory_write(now, home, block, requester)
            result.wrote_memory = True
            self.stats.write_throughs += 1
            # Modified -> Shared on write-back: the (clean) copy retained in
            # the DRAM cache keeps the socket in the sharing vector.
            if sock.dram_cache is not None and sock.dram_cache.contains(block):
                directory.set_shared(block, {requester})
            else:
                directory.invalidate(block)
        return result

    # ------------------------------------------------------------------
    # DRAM-cache eviction hooks (keep the ideal directory precise)
    # ------------------------------------------------------------------

    def _on_dram_cache_clean_victim(self, block: int, socket_id: int) -> None:
        if not self.socket(socket_id).llc.contains(block):
            self.directory_for(block).remove_sharer(block, socket_id)
