"""C3D: Clean Coherent DRAM Caches -- the paper's primary contribution.

The protocol combines (section IV):

* **Clean DRAM caches** -- dirty LLC victims are written through to their
  home memory while a clean copy is retained in the local DRAM cache, so a
  read miss from any socket can always be served by memory (or a remote
  *on-chip* cache) and never by a slow remote DRAM cache.
* **Non-inclusive global directory** -- the directory tracks only blocks held
  in on-chip caches (LLC or higher).  Blocks held solely in DRAM caches are
  untracked; a read to such a block is served by memory without allocating a
  directory entry, and a write to an untracked block broadcasts invalidations
  to every other socket's DRAM cache (and any untracked LLC copies) before
  Modified permission is granted.
* **Broadcast filtering** (optional, section IV-D) -- writes to pages the
  OS/TLB classifier still considers thread-private skip the broadcast.

Directory stable states and transitions follow Fig. 5:

* ``Invalid`` only guarantees that memory is not stale (copies may exist in
  DRAM caches); GetS in Invalid is served by memory and stays untracked;
  GetX in Invalid broadcasts invalidations and moves to Modified.
* ``Modified`` means exactly one socket holds the block on-chip (its DRAM
  cache may additionally hold a stale copy); GetS forwards to the owner and
  moves to Shared; GetX/Upgrade invalidates the owner and changes ownership;
  PutX (LLC write-back) moves to Invalid.
* ``Shared`` keeps a precise-superset sharing vector because the only way in
  is from Modified; GetS adds the requester; GetX invalidates the tracked
  sharers.
"""

from __future__ import annotations

from typing import Optional

from ..coherence.directory import DirectoryState
from ..coherence.messages import (
    CoherenceRequestType,
    EvictionResult,
    MissResult,
    ServiceSource,
)
from ..coherence.protocol_base import GlobalCoherenceProtocol
from ..interconnect.packet import MessageClass
from .page_classifier import PrivateSharedClassifier

__all__ = ["C3DProtocol"]


class C3DProtocol(GlobalCoherenceProtocol):
    """Clean Coherent DRAM Caches (C3D)."""

    name = "c3d"
    uses_dram_cache = True
    clean_dram_cache = True

    def __init__(self, system, *, broadcast_filter: bool = False) -> None:
        super().__init__(system)
        self.broadcast_filter = broadcast_filter
        self.classifier: Optional[PrivateSharedClassifier] = getattr(
            system, "page_classifier", None
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        # Fast local hit: a read hit in the local DRAM cache completes with no
        # messages to remote sockets (first bullet of section IV-B summary).
        # (Inlined _probe_local_dram_cache: this is the hottest C3D path.)
        stats = self.system.stats
        sock = self.sockets[requester]
        dram_cache = sock.dram_cache
        local_latency = 0.0
        if dram_cache is not None:
            local_latency = sock.dram_predictor_latency_ns
            probe = dram_cache.probe(block)
            if probe.array_accessed:
                local_latency += sock.dram_cache_latency_ns
            if probe.hit:
                stats.dram_cache_hits += 1
                return MissResult(
                    latency=local_latency,
                    source=ServiceSource.LOCAL_DRAM_CACHE,
                    request_type=CoherenceRequestType.GETS,
                )
            stats.dram_cache_misses += 1

        home = self._home_of_block(block)
        directory = self.directories[home]
        latency = local_latency
        latency += self._net_send(now + latency, requester, home, MessageClass.REQUEST)
        latency += directory.latency_ns
        stats.directory_lookups += 1
        entry = directory.lookup(block)

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            # The only place a modified copy can live is a remote *on-chip*
            # cache; forward there.  The owner downgrades to Shared and the
            # dirty data is written through so memory becomes valid again.
            owner = entry.owner
            latency += self._fetch_from_remote_llc(
                now + latency, home, owner, requester, block, downgrade=True
            )
            directory.set_shared(block, {owner, requester})
            source = ServiceSource.REMOTE_LLC
        elif entry is not None and entry.state is DirectoryState.SHARED:
            latency += self._memory_read(now + latency, home, block, requester)
            latency += self._net_send(now + latency, home, requester, MessageClass.DATA_RESPONSE)
            directory.add_sharer(block, requester)
            source = (ServiceSource.LOCAL_MEMORY if home == requester
                      else ServiceSource.REMOTE_MEMORY)
        else:
            # Invalid / untracked: memory is guaranteed valid (clean DRAM
            # caches) and the request is NOT inserted into the directory.
            latency += self._memory_read(now + latency, home, block, requester)
            latency += self._net_send(now + latency, home, requester, MessageClass.DATA_RESPONSE)
            source = (ServiceSource.LOCAL_MEMORY if home == requester
                      else ServiceSource.REMOTE_MEMORY)

        return MissResult(latency=latency, source=source, request_type=CoherenceRequestType.GETS)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def _broadcast_invalidations(self, now: float, requester: int, home: int, block: int) -> float:
        """Invalidate every other socket's DRAM-cache (and untracked LLC) copy.

        Returns the completion latency of the broadcast (last ack received).
        """
        worst = 0.0
        send = self._net_send
        stats = self.system.stats
        sockets = self.sockets
        broadcast_class = MessageClass.BROADCAST_INVALIDATION
        ack_class = MessageClass.ACK
        for target in range(len(sockets)):
            if target == requester:
                continue
            # Fused _invalidate_remote_socket (this loop is the hot C3D
            # write path: one probe + invalidation round trip per peer).
            target_socket = sockets[target]
            out = send(now, home, target, broadcast_class)
            probe = 0.0
            if target_socket.dram_cache is not None:
                target_socket.dram_cache.invalidate(block)
                probe = target_socket.dram_cache_latency_ns
            if target_socket.llc.contains(block):
                probe = max(probe, target_socket.llc_latency_ns)
            target_socket.invalidate_onchip(block)
            ack = send(now + out + probe, target, home, ack_class)
            stats.invalidations_sent += 1
            latency = out + probe + ack
            if latency > worst:
                worst = latency
        stats.broadcasts += 1
        return worst

    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        request_type = (
            CoherenceRequestType.UPGRADE if has_shared_copy else CoherenceRequestType.GETX
        )
        stats = self.system.stats
        local_hit = False
        local_latency = 0.0
        if not has_shared_copy:
            # Inlined _probe_local_dram_cache.
            sock = self.sockets[requester]
            dram_cache = sock.dram_cache
            if dram_cache is not None:
                local_latency = sock.dram_predictor_latency_ns
                probe = dram_cache.probe(block)
                if probe.array_accessed:
                    local_latency += sock.dram_cache_latency_ns
                local_hit = probe.hit
                if local_hit:
                    stats.dram_cache_hits += 1
                else:
                    stats.dram_cache_misses += 1

        home = self._home_of_block(block)
        directory = self.directories[home]
        latency = local_latency
        latency += self._net_send(now + latency, requester, home, MessageClass.REQUEST)
        latency += directory.latency_ns
        stats.directory_lookups += 1
        entry = directory.lookup(block)
        invalidations = 0
        used_broadcast = False

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            latency += self._invalidate_remote_socket(
                now + latency, home, owner, block, include_dram_cache=True
            )
            latency += self._data_response(now + latency, owner, requester)
            invalidations = 1
            source = ServiceSource.REMOTE_LLC
        elif entry is not None and entry.state is DirectoryState.SHARED:
            sharers = sorted(entry.sharers - {requester})
            invalidation_latency = 0.0
            for target in sharers:
                invalidation_latency = max(
                    invalidation_latency,
                    self._invalidate_remote_socket(
                        now + latency, home, target, block, include_dram_cache=True
                    ),
                )
                invalidations += 1
            data_latency, source = self._write_data_path(
                now + latency, requester, home, block,
                has_shared_copy=has_shared_copy, local_hit=local_hit,
            )
            latency += max(invalidation_latency, data_latency)
        else:
            # Invalid / untracked: unless the page is known thread-private,
            # broadcast invalidations to all other DRAM caches.
            skip_broadcast = False
            if self.broadcast_filter and self.classifier is not None:
                skip_broadcast = self.classifier.write_is_private(thread_id, block)
            if skip_broadcast:
                stats.broadcasts_elided += 1
            else:
                broadcast_latency = self._broadcast_invalidations(
                    now + latency, requester, home, block
                )
                invalidations += self.num_sockets - 1
                used_broadcast = True
            data_latency, source = self._write_data_path(
                now + latency, requester, home, block,
                has_shared_copy=has_shared_copy, local_hit=local_hit,
            )
            if skip_broadcast:
                latency += data_latency
            else:
                latency += max(broadcast_latency, data_latency)

        directory.set_modified(block, requester)
        if has_shared_copy:
            stats.upgrades += 1
        return MissResult(
            latency=latency,
            source=source,
            request_type=request_type,
            invalidations=invalidations,
            used_broadcast=used_broadcast,
        )

    def _write_data_path(
        self,
        now: float,
        requester: int,
        home: int,
        block: int,
        *,
        has_shared_copy: bool,
        local_hit: bool,
    ):
        """Latency and source of the data portion of a write transaction."""
        if has_shared_copy:
            return 0.0, ServiceSource.LLC
        if local_hit:
            # Clean local DRAM-cache copy provides the data; memory is not
            # accessed (its copy is identical).
            return 0.0, ServiceSource.LOCAL_DRAM_CACHE
        data_latency = self._memory_read(now, home, block, requester)
        data_latency += self._net_send(now + data_latency, home, requester,
                                       MessageClass.DATA_RESPONSE)
        return data_latency, (ServiceSource.LOCAL_MEMORY if home == requester
                              else ServiceSource.REMOTE_MEMORY)

    # ------------------------------------------------------------------
    # Functional (state-only) mirrors -- see GlobalCoherenceProtocol
    # ------------------------------------------------------------------

    def read_miss_functional(self, requester: int, block: int) -> None:
        # The DRAM-cache probe is stateful (predictor presence bits and LRU
        # recency advance) and must run exactly as in the timed path.
        dram_cache = self.sockets[requester].dram_cache
        if dram_cache is not None and dram_cache.probe(block).hit:
            return
        directory = self.directories[self._home_of_block(block)]
        entry = directory.lookup(block)
        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            # Mirror of _fetch_from_remote_llc(downgrade=True).
            self.sockets[owner].downgrade_block(block)
            directory.set_shared(block, {owner, requester})
        elif entry is not None and entry.state is DirectoryState.SHARED:
            directory.add_sharer(block, requester)
        # Invalid / untracked: served by memory, stays untracked.

    def write_miss_functional(
        self, requester: int, block: int, *, thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> None:
        if not has_shared_copy:
            dram_cache = self.sockets[requester].dram_cache
            if dram_cache is not None:
                dram_cache.probe(block)
        directory = self.directories[self._home_of_block(block)]
        entry = directory.lookup(block)
        sockets = self.sockets
        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            # Mirror of _invalidate_remote_socket(include_dram_cache=True).
            target_socket = sockets[entry.owner]
            if target_socket.dram_cache is not None:
                target_socket.dram_cache.invalidate(block)
            target_socket.invalidate_onchip(block)
        elif entry is not None and entry.state is DirectoryState.SHARED:
            for target in sorted(entry.sharers - {requester}):
                target_socket = sockets[target]
                if target_socket.dram_cache is not None:
                    target_socket.dram_cache.invalidate(block)
                target_socket.invalidate_onchip(block)
        else:
            # Invalid / untracked: mirror of _broadcast_invalidations unless
            # the broadcast filter classifies the page thread-private (the
            # classifier query is stateful and must run either way).
            skip_broadcast = False
            if self.broadcast_filter and self.classifier is not None:
                skip_broadcast = self.classifier.write_is_private(thread_id, block)
            if not skip_broadcast:
                for target_socket in sockets:
                    if target_socket.socket_id == requester:
                        continue
                    if target_socket.dram_cache is not None:
                        target_socket.dram_cache.invalidate(block)
                    target_socket.invalidate_onchip(block)
        directory.set_modified(block, requester)

    def llc_eviction_functional(self, requester: int, block: int, *, dirty: bool) -> None:
        dram_cache = self.sockets[requester].dram_cache
        if dram_cache is not None:
            # Clean victim cache: inserts never displace dirty data.
            dram_cache.insert(block, dirty=False)
        if dirty:
            self.directories[self._home_of_block(block)].invalidate(block)

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def llc_eviction(
        self, now: float, requester: int, block: int, *, dirty: bool
    ) -> EvictionResult:
        result = EvictionResult()
        sock = self.sockets[requester]
        home = self._home_of_block(block)
        directory = self.directories[home]

        if sock.dram_cache is not None:
            # Victim cache: retain a clean copy locally regardless of
            # dirtiness.  The DRAM cache is clean, so its victims never need
            # a writeback and can be dropped on the floor directly.
            sock.dram_cache.insert(block, dirty=False)
            result.inserted_in_dram_cache = True

        if dirty:
            # PutX: write the data through to the home memory; the directory
            # acknowledges and transitions Modified -> Invalid (Fig. 5).
            result.latency = self._memory_write(now, home, block, requester)
            result.wrote_memory = True
            self.stats.write_throughs += 1
            directory.invalidate(block)
        # Clean (Shared) LLC evictions are silent; the sharing vector becomes
        # a superset, which remains valid.
        return result
