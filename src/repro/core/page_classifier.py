"""TLB/page-table based private-shared classification (section IV-D).

C3D broadcasts invalidations on writes to blocks the directory does not
track.  For thread-private data those broadcasts are pure waste, so the paper
adds a simple OS/TLB mechanism: each page-table entry carries the owning
thread id and a private/shared bit.  The first touch marks the page private
to the toucher; a later touch by a *different* thread re-classifies the page
as shared (or, if the mismatch is due to thread migration, merely re-homes
it).  A GetX for a block in a page still classified private can skip the
broadcast because no other thread can have cached it.

The classifier wraps the shared :class:`~repro.memory.page_table.PageTable`
and is consulted by :class:`~repro.core.c3d_protocol.C3DProtocol` when the
``broadcast_filter`` option is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..memory.address import DEFAULT_LAYOUT, AddressLayout
from ..memory.page_table import PageClassification, PageTable

__all__ = ["PrivateSharedClassifier", "ClassifierStats"]


@dataclass
class ClassifierStats:
    """Counters for the broadcast-filtering study of section VI-C."""

    accesses: int = 0
    tlb_misses: int = 0
    reclassifications: int = 0
    migrations: int = 0
    private_write_checks: int = 0
    shared_write_checks: int = 0


class PrivateSharedClassifier:
    """Classifies pages as thread-private or shared, driven by the access stream.

    Parameters
    ----------
    page_table:
        The page table extended with owner/classification fields.  A fresh
        one is created when not supplied.
    layout:
        Address layout used to map addresses/blocks to pages.
    track_migrations:
        When True, a thread-id mismatch where the previous owner thread has
        been observed to migrate is treated as a migration (the page stays
        private); the simple reproduction treats every mismatch as sharing,
        matching the conservative behaviour described in the paper for
        multi-threaded workloads.
    """

    def __init__(
        self,
        page_table: Optional[PageTable] = None,
        *,
        layout: Optional[AddressLayout] = None,
        track_migrations: bool = False,
    ) -> None:
        self.layout = layout or DEFAULT_LAYOUT
        self.page_table = page_table if page_table is not None else PageTable(layout=self.layout)
        self.track_migrations = track_migrations
        self.stats = ClassifierStats()
        # thread id -> socket observed, to distinguish migration from sharing
        self._last_core_of_thread: Dict[int, int] = {}

    # -- driving the classifier ------------------------------------------

    def record_access(self, thread_id: int, addr: int, *, core_id: Optional[int] = None) -> None:
        """Observe one memory access (read or write) by ``thread_id``.

        This is the TLB-miss-time OS action of section IV-D; in the
        simulation every access drives it (the TLB itself is modelled in
        :mod:`repro.cpu.tlb` purely for latency/statistics purposes).
        """
        self.stats.accesses += 1
        page = self.layout.page_of(addr)
        entry = self.page_table.lookup(page)
        migrated = False
        if (
            self.track_migrations
            and entry is not None
            and core_id is not None
            and entry.owner_thread == thread_id
        ):
            self._last_core_of_thread[thread_id] = core_id
        if entry is None:
            self.stats.tlb_misses += 1
        _entry, reclassified = self.page_table.touch(page, thread_id, migrated=migrated)
        if reclassified:
            self.stats.reclassifications += 1

    def record_block_access(self, thread_id: int, block: int) -> None:
        """Convenience wrapper taking a block number instead of a byte address."""
        self.record_access(thread_id, block * self.layout.block_size)

    # -- queries used by the C3D protocol -----------------------------------

    def classification_of_block(self, block: int) -> PageClassification:
        """Current classification of the page containing ``block``."""
        page = self.layout.page_of_block(block)
        return self.page_table.classify(page)

    def write_is_private(self, thread_id: int, block: int) -> bool:
        """True when a write by ``thread_id`` to ``block`` may skip the broadcast.

        The write may skip the broadcast only when the page is classified
        private *and* owned by the writing thread (a write by a non-owner is
        precisely the event that triggers re-classification, so it must not
        skip).
        """
        page = self.layout.page_of_block(block)
        entry = self.page_table.lookup(page)
        if entry is None or not entry.is_private or entry.owner_thread != thread_id:
            self.stats.shared_write_checks += 1
            return False
        self.stats.private_write_checks += 1
        return True

    # -- reporting ------------------------------------------------------------

    def private_page_fraction(self) -> float:
        """Fraction of touched pages currently classified private."""
        total = len(self.page_table)
        if not total:
            return 0.0
        return self.page_table.private_pages() / total
