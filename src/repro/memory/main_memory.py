"""Main-memory (DDR) timing model.

Each socket owns one memory controller with a number of DDR channels
(Table II: 50 ns access latency, DDR3-1600 at 12.8 GB/s per channel, 2
channels per socket).  The model captures the two effects the paper's
evaluation depends on:

* a fixed **access latency** paid by every access, and
* **bandwidth queueing**: each channel can only transfer so many bytes per
  nanosecond, so when the offered load exceeds channel bandwidth, later
  accesses observe queueing delay.  Fig. 2's ``inf_mem_bw`` idealisation is
  modelled by disabling the queueing term.

Accesses are mapped to channels by block address (low-order interleaving),
which matches commodity controllers and spreads the load evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["MemoryAccessResult", "MemoryChannel", "MemoryController"]


@dataclass
class MemoryAccessResult:
    """Outcome of a single memory access.

    ``latency`` is the total time the access occupied the critical path
    (queueing + device latency); ``queue_delay`` is the queueing component.
    """

    latency: float
    queue_delay: float


class MemoryChannel:
    """A single DDR channel with busy-until bandwidth accounting."""

    def __init__(self, bandwidth_bytes_per_ns: float, *, infinite_bandwidth: bool = False) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_bytes_per_ns = bandwidth_bytes_per_ns
        self.infinite_bandwidth = infinite_bandwidth
        self.busy_until = 0.0
        self.last_arrival = 0.0
        self.bytes_transferred = 0
        self.busy_time = 0.0

    def occupy(self, now: float, size_bytes: int) -> float:
        """Reserve the channel for ``size_bytes`` starting no earlier than ``now``.

        Returns the queueing delay experienced (0 when the channel is idle or
        bandwidth is idealised as infinite).

        Trace-driven simulation presents accesses in approximately -- but not
        exactly -- increasing time order (cores run slightly ahead of or
        behind one another).  An access that arrives "in the past" relative
        to the latest arrival seen so far is assumed to be slotted into an
        earlier idle slot and is charged no queueing delay; charging it
        against ``busy_until`` would let small ordering skew snowball into
        large artificial queueing.
        """
        self.bytes_transferred += size_bytes
        if self.infinite_bandwidth:
            return 0.0
        service_time = size_bytes / self.bandwidth_bytes_per_ns
        self.busy_time += service_time
        if now < self.last_arrival:
            return 0.0
        self.last_arrival = now
        start = max(now, self.busy_until)
        queue_delay = start - now
        self.busy_until = start + service_time
        return queue_delay


class MemoryController:
    """Per-socket memory controller with interleaved channels.

    Parameters
    ----------
    latency_ns:
        Device access latency (row activation + column access + transfer
        start), paid by every access.
    channels:
        Number of DDR channels.
    channel_bandwidth_gbps:
        Peak bandwidth per channel in GB/s.
    block_size:
        Transfer size of a cache-block access in bytes.
    infinite_bandwidth:
        When True, bandwidth queueing is disabled (Fig. 2 idealisation).
    """

    def __init__(
        self,
        *,
        latency_ns: float = 50.0,
        channels: int = 2,
        channel_bandwidth_gbps: float = 12.8,
        block_size: int = 64,
        infinite_bandwidth: bool = False,
    ) -> None:
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if latency_ns < 0:
            raise ValueError("latency_ns must be non-negative")
        self.latency_ns = latency_ns
        self.block_size = block_size
        self.channels: List[MemoryChannel] = [
            MemoryChannel(channel_bandwidth_gbps, infinite_bandwidth=infinite_bandwidth)
            for _ in range(channels)
        ]
        self.reads = 0
        self.writes = 0
        self.read_queue_delay = 0.0

    # -- channel selection --------------------------------------------------

    def _channel_for(self, block: int) -> MemoryChannel:
        return self.channels[block % len(self.channels)]

    # -- access paths ---------------------------------------------------------

    def read(self, now: float, block: int) -> MemoryAccessResult:
        """Perform a block read; returns the critical-path latency."""
        queue_delay = self.read_fast(now, block) - self.latency_ns
        return MemoryAccessResult(latency=self.latency_ns + queue_delay, queue_delay=queue_delay)

    def read_fast(self, now: float, block: int) -> float:
        """Hot-path block read; returns just the critical-path latency (ns)."""
        self.reads += 1
        channel = self.channels[block % len(self.channels)]
        # Inlined MemoryChannel.occupy.
        size = self.block_size
        channel.bytes_transferred += size
        if channel.infinite_bandwidth:
            return self.latency_ns
        service_time = size / channel.bandwidth_bytes_per_ns
        channel.busy_time += service_time
        if now < channel.last_arrival:
            return self.latency_ns
        channel.last_arrival = now
        busy_until = channel.busy_until
        if busy_until > now:
            channel.busy_until = busy_until + service_time
            queue_delay = busy_until - now
            self.read_queue_delay += queue_delay
            return self.latency_ns + queue_delay
        channel.busy_until = now + service_time
        return self.latency_ns

    def write(self, now: float, block: int) -> MemoryAccessResult:
        """Perform a block write.

        Writes consume channel bandwidth (so they can congest reads) but are
        not on the critical path of the issuing core; the returned latency is
        reported for completeness and used only for store-buffer drain
        modelling.
        """
        queue_delay = self.write_fast(now, block) - self.latency_ns
        return MemoryAccessResult(latency=self.latency_ns + queue_delay, queue_delay=queue_delay)

    def write_fast(self, now: float, block: int) -> float:
        """Hot-path block write; returns just the latency (ns)."""
        self.writes += 1
        channel = self.channels[block % len(self.channels)]
        # Inlined MemoryChannel.occupy.
        size = self.block_size
        channel.bytes_transferred += size
        if channel.infinite_bandwidth:
            return self.latency_ns
        service_time = size / channel.bandwidth_bytes_per_ns
        channel.busy_time += service_time
        if now < channel.last_arrival:
            return self.latency_ns
        channel.last_arrival = now
        busy_until = channel.busy_until
        if busy_until > now:
            channel.busy_until = busy_until + service_time
            return self.latency_ns + busy_until - now
        channel.busy_until = now + service_time
        return self.latency_ns

    # -- statistics -----------------------------------------------------------

    @property
    def accesses(self) -> int:
        return self.reads + self.writes

    def bytes_transferred(self) -> int:
        return sum(channel.bytes_transferred for channel in self.channels)

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of channel-time busy over ``elapsed_ns`` (0 when idle)."""
        if elapsed_ns <= 0:
            return 0.0
        busy = sum(channel.busy_time for channel in self.channels)
        return busy / (elapsed_ns * len(self.channels))
