"""NUMA memory-allocation policies (paper section V, "Memory Allocation Policy").

The paper evaluates three page-placement policies and, per workload, uses the
best performing one:

* **Interleave (INT)** -- adjacent pages are placed round-robin across the
  sockets' memory controllers.
* **First-touch-1 (FT1)** -- the *first* access to a page (counted from
  application start, i.e. including the serial initialisation phase)
  determines its home socket.  Because initialisation is usually performed by
  one thread, FT1 tends to concentrate memory on a single socket.
* **First-touch-2 (FT2)** -- first-touch counting only begins once the
  parallel region is entered, so pages are distributed according to which
  socket's thread actually uses them first in steady state.

A policy object answers a single question: *which socket is the home of this
page?*  First-touch policies are stateful (they remember the first toucher);
interleave is stateless.  The :class:`AddressMapper` wraps a policy and the
:class:`~repro.memory.address.AddressLayout` to provide block-level home
lookups used by the directories and memory controllers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional

from .address import DEFAULT_LAYOUT, AddressLayout

__all__ = [
    "AllocationPolicy",
    "InterleavePolicy",
    "FirstTouchPolicy",
    "AddressMapper",
    "make_policy",
    "POLICY_NAMES",
]


class AllocationPolicy(ABC):
    """Decides the home socket of each page."""

    name: str = "abstract"

    def __init__(self, num_sockets: int) -> None:
        if num_sockets < 1:
            raise ValueError("num_sockets must be >= 1")
        self.num_sockets = num_sockets

    @abstractmethod
    def home_of_page(self, page: int, toucher_socket: Optional[int] = None) -> int:
        """Return the home socket for ``page``.

        ``toucher_socket`` identifies the socket performing the access; it is
        required the first time a first-touch policy sees a page and ignored
        by stateless policies.
        """

    def reset(self) -> None:
        """Forget any placement state (used between profiling runs)."""


class InterleavePolicy(AllocationPolicy):
    """Round-robin page interleaving across sockets (policy ``INT``)."""

    name = "interleave"

    def home_of_page(self, page: int, toucher_socket: Optional[int] = None) -> int:
        return page % self.num_sockets


class FirstTouchPolicy(AllocationPolicy):
    """First-touch placement (policies ``FT1`` and ``FT2``).

    The distinction between FT1 and FT2 in the paper is *when* touches begin
    to count: FT1 counts from application start (so the serial initialisation
    phase performed by thread 0 claims most pages for socket 0), while FT2
    starts counting when the parallel region is entered.  The policy itself is
    identical; the workload generators model the difference by optionally
    pre-touching pages from socket 0 (see
    :meth:`repro.workloads.synthetic.SyntheticWorkload.pretouch_pages`).
    """

    name = "first_touch"

    def __init__(self, num_sockets: int) -> None:
        super().__init__(num_sockets)
        self._page_home: Dict[int, int] = {}

    def home_of_page(self, page: int, toucher_socket: Optional[int] = None) -> int:
        home = self._page_home.get(page)
        if home is None:
            if toucher_socket is None:
                # A lookup for a never-touched page (e.g. by a directory
                # probe) falls back to interleaving so that the answer is
                # deterministic; the page will be pinned on its first real
                # touch.
                return page % self.num_sockets
            home = toucher_socket % self.num_sockets
            self._page_home[page] = home
        return home

    def pin_page(self, page: int, socket: int) -> None:
        """Force the placement of ``page`` (used to model FT1 pre-touching)."""
        self._page_home[page] = socket % self.num_sockets

    def placed_pages(self) -> Dict[int, int]:
        """Return a copy of the page -> home-socket map decided so far."""
        return dict(self._page_home)

    def reset(self) -> None:
        self._page_home.clear()


#: Policy names accepted by :func:`make_policy`, matching the paper's labels.
POLICY_NAMES = ("interleave", "first_touch", "ft1", "ft2", "int")


def make_policy(name: str, num_sockets: int) -> AllocationPolicy:
    """Create an allocation policy from its paper name.

    ``ft1`` and ``ft2`` both map to :class:`FirstTouchPolicy`; the FT1/FT2
    distinction is realised by the workload's pre-touch behaviour.
    """
    key = name.lower()
    if key in ("interleave", "int"):
        return InterleavePolicy(num_sockets)
    if key in ("first_touch", "ft1", "ft2", "first-touch"):
        return FirstTouchPolicy(num_sockets)
    raise ValueError(f"unknown allocation policy {name!r}; expected one of {POLICY_NAMES}")


@dataclass
class AddressMapper:
    """Maps byte/block addresses to their home socket via an allocation policy.

    The mapper also records which pages have been touched so far, which the
    statistics module uses to report footprint sizes.
    """

    policy: AllocationPolicy
    layout: AddressLayout = field(default_factory=lambda: DEFAULT_LAYOUT)

    def __post_init__(self) -> None:
        self._touched_pages: Dict[int, int] = {}
        self._blocks_per_page = self.layout.page_size // self.layout.block_size
        # Fast home lookups for the built-in policies (the page->home dict of
        # a first-touch policy is never reassigned, only mutated in place).
        self._ft_page_home = (
            self.policy._page_home if isinstance(self.policy, FirstTouchPolicy) else None
        )

    @property
    def num_sockets(self) -> int:
        return self.policy.num_sockets

    def touch(self, addr: int, socket: int) -> int:
        """Record an access to ``addr`` by ``socket`` and return the home socket."""
        return self.touch_page(self.layout.page_of(addr), socket)

    def touch_page(self, page: int, socket: int) -> int:
        """Record an access to ``page`` by ``socket`` and return the home socket.

        Hot-loop entry point used by the compiled engine, which has the page
        number precomputed and skips the byte-address division.
        """
        home = self.policy.home_of_page(page, toucher_socket=socket)
        if page not in self._touched_pages:
            self._touched_pages[page] = home
        return home

    def home_of_addr(self, addr: int) -> int:
        """Return the home socket of ``addr`` without recording a touch."""
        return self.policy.home_of_page(self.layout.page_of(addr))

    def home_of_block(self, block: int) -> int:
        """Return the home socket of block number ``block``."""
        page = block // self._blocks_per_page
        page_home = self._ft_page_home
        if page_home is not None:
            # Inlined FirstTouchPolicy.home_of_page without a toucher: an
            # unplaced page falls back to interleaving (and is not pinned).
            home = page_home.get(page)
            return home if home is not None else page % self.policy.num_sockets
        return self.policy.home_of_page(page)

    def touched_pages(self) -> int:
        """Number of distinct pages touched so far."""
        return len(self._touched_pages)

    def footprint_bytes(self) -> int:
        """Total bytes of distinct pages touched so far."""
        return len(self._touched_pages) * self.layout.page_size

    def pages_per_socket(self) -> Dict[int, int]:
        """Histogram of touched pages per home socket."""
        histogram = {socket: 0 for socket in range(self.num_sockets)}
        for home in self._touched_pages.values():
            histogram[home] += 1
        return histogram
