"""Physical address arithmetic for the simulated NUMA machine.

Every component of the simulator (caches, directories, memory controllers,
allocation policies) reasons about addresses at one of three granularities:

* **block** -- the coherence and caching unit (64 bytes in the paper),
* **page** -- the OS allocation / NUMA placement unit (4 KiB),
* **region** -- the granularity of the DRAM-cache miss predictor (4 KiB by
  default, matching the region-based predictor of Qureshi & Loh cited by the
  paper).

An :class:`AddressLayout` instance bundles the block and page sizes and
provides the conversions.  Addresses are plain integers (byte addresses), so
the layout is stateless and cheap to share between components.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AddressLayout", "DEFAULT_LAYOUT"]


def _check_power_of_two(value: int, name: str) -> None:
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a positive power of two, got {value}")


@dataclass(frozen=True)
class AddressLayout:
    """Byte-address arithmetic helpers.

    Parameters
    ----------
    block_size:
        Size of a cache block in bytes (the coherence unit).
    page_size:
        Size of an OS page in bytes (the NUMA placement unit).
    """

    block_size: int = 64
    page_size: int = 4096

    def __post_init__(self) -> None:
        _check_power_of_two(self.block_size, "block_size")
        _check_power_of_two(self.page_size, "page_size")
        if self.page_size < self.block_size:
            raise ValueError("page_size must be at least block_size")

    # -- block granularity -------------------------------------------------

    def block_of(self, addr: int) -> int:
        """Return the block *number* containing byte address ``addr``."""
        return addr // self.block_size

    def block_base(self, addr: int) -> int:
        """Return the first byte address of the block containing ``addr``."""
        return addr - (addr % self.block_size)

    def block_offset(self, addr: int) -> int:
        """Return the byte offset of ``addr`` within its block."""
        return addr % self.block_size

    def block_to_addr(self, block: int) -> int:
        """Return the base byte address of block number ``block``."""
        return block * self.block_size

    # -- page granularity --------------------------------------------------

    def page_of(self, addr: int) -> int:
        """Return the page *number* containing byte address ``addr``."""
        return addr // self.page_size

    def page_base(self, addr: int) -> int:
        """Return the first byte address of the page containing ``addr``."""
        return addr - (addr % self.page_size)

    def page_of_block(self, block: int) -> int:
        """Return the page number containing block number ``block``."""
        return (block * self.block_size) // self.page_size

    def blocks_per_page(self) -> int:
        """Number of cache blocks per OS page."""
        return self.page_size // self.block_size

    # -- convenience -------------------------------------------------------

    def same_block(self, addr_a: int, addr_b: int) -> bool:
        """True if both byte addresses fall in the same cache block."""
        return self.block_of(addr_a) == self.block_of(addr_b)

    def same_page(self, addr_a: int, addr_b: int) -> bool:
        """True if both byte addresses fall in the same OS page."""
        return self.page_of(addr_a) == self.page_of(addr_b)


#: Layout matching the paper's Table II (64-byte blocks, 4 KiB pages).
DEFAULT_LAYOUT = AddressLayout()
