"""Page table with the private/shared classification fields of section IV-D.

The C3D broadcast-filtering optimisation extends each page-table entry with
the owner thread's id and a classification bit.  The OS handles the first
touch of a page by marking it *private* to the toucher; a later access by a
different thread either re-homes the page (thread migration) or re-classifies
it as *shared*.  The classifier built on top of this table lives in
:mod:`repro.core.page_classifier`; this module provides the underlying table
shared by the TLB and the OS model.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

from .address import DEFAULT_LAYOUT, AddressLayout

__all__ = ["PageClassification", "PageTableEntry", "PageTable"]


class PageClassification(enum.Enum):
    """Classification of a page for broadcast filtering (section IV-D)."""

    PRIVATE = "private"
    SHARED = "shared"


@dataclass
class PageTableEntry:
    """Per-page metadata.

    Attributes
    ----------
    page:
        Page number.
    owner_thread:
        Id of the thread that currently owns the page (valid while the page
        is classified private).
    classification:
        Current private/shared classification.
    home_socket:
        Home socket chosen by the NUMA allocation policy, cached here for
        convenience once known.
    """

    page: int
    owner_thread: int
    classification: PageClassification = PageClassification.PRIVATE
    home_socket: Optional[int] = None

    @property
    def is_private(self) -> bool:
        return self.classification is PageClassification.PRIVATE


@dataclass
class PageTable:
    """Simple flat page table keyed by page number."""

    layout: AddressLayout = field(default_factory=lambda: DEFAULT_LAYOUT)

    def __post_init__(self) -> None:
        self._entries: Dict[int, PageTableEntry] = {}
        self.private_to_shared_transitions = 0
        self.migrations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[PageTableEntry]:
        return iter(self._entries.values())

    def lookup(self, page: int) -> Optional[PageTableEntry]:
        """Return the entry for ``page`` or ``None`` if never touched."""
        return self._entries.get(page)

    def lookup_addr(self, addr: int) -> Optional[PageTableEntry]:
        """Return the entry for the page containing byte address ``addr``."""
        return self.lookup(self.layout.page_of(addr))

    def touch(
        self,
        page: int,
        thread_id: int,
        *,
        migrated: bool = False,
    ) -> Tuple[PageTableEntry, bool]:
        """Record an access to ``page`` by ``thread_id``.

        Implements the OS actions of section IV-D:

        * first touch: create a PRIVATE entry owned by the toucher;
        * owner mismatch caused by *thread migration*: update the owner and
          keep the PRIVATE classification (the caller is responsible for the
          shoot-down side effects);
        * owner mismatch caused by *sharing*: re-classify as SHARED.

        Returns ``(entry, reclassified)`` where ``reclassified`` is True when
        this touch performed the private-to-shared transition.
        """
        entry = self._entries.get(page)
        if entry is None:
            entry = PageTableEntry(page=page, owner_thread=thread_id)
            self._entries[page] = entry
            return entry, False

        if entry.classification is PageClassification.SHARED:
            return entry, False

        if entry.owner_thread == thread_id:
            return entry, False

        if migrated:
            entry.owner_thread = thread_id
            self.migrations += 1
            return entry, False

        entry.classification = PageClassification.SHARED
        self.private_to_shared_transitions += 1
        return entry, True

    def classify(self, page: int) -> PageClassification:
        """Return the classification of ``page`` (SHARED if unknown).

        Treating unknown pages as shared is the conservative choice: the
        protocol will broadcast where it did not strictly need to, which is
        always correct.
        """
        entry = self._entries.get(page)
        if entry is None:
            return PageClassification.SHARED
        return entry.classification

    def set_home(self, page: int, socket: int) -> None:
        """Cache the NUMA home socket of ``page`` in its entry (if present)."""
        entry = self._entries.get(page)
        if entry is not None:
            entry.home_socket = socket

    def private_pages(self) -> int:
        """Number of pages currently classified private."""
        return sum(1 for entry in self._entries.values() if entry.is_private)

    def shared_pages(self) -> int:
        """Number of pages currently classified shared."""
        return len(self._entries) - self.private_pages()
