"""Memory substrate: address arithmetic, page table, NUMA allocation, DDR timing."""

from .address import DEFAULT_LAYOUT, AddressLayout
from .allocation import (
    POLICY_NAMES,
    AddressMapper,
    AllocationPolicy,
    FirstTouchPolicy,
    InterleavePolicy,
    make_policy,
)
from .main_memory import MemoryAccessResult, MemoryChannel, MemoryController
from .page_table import PageClassification, PageTable, PageTableEntry

__all__ = [
    "AddressLayout",
    "DEFAULT_LAYOUT",
    "AllocationPolicy",
    "InterleavePolicy",
    "FirstTouchPolicy",
    "AddressMapper",
    "make_policy",
    "POLICY_NAMES",
    "MemoryController",
    "MemoryChannel",
    "MemoryAccessResult",
    "PageTable",
    "PageTableEntry",
    "PageClassification",
]
