"""`repro.api`: the stable public facade of the reproduction.

One import surface instead of six internal modules.  Scripts, notebooks
and the examples use *only* this module (CI greps ``examples/quickstart.py``
for it); the internal package layout can then keep evolving freely --
docs/architecture.md documents the compatibility contract.

Five verbs cover the workflows:

* :func:`simulate`       -- one simulation: config + workload -> result
* :func:`analyze`        -- characterise a trace directory into a profile
* :func:`import_trace`   -- convert an external trace into a trace dir
* :func:`run_campaign`   -- execute a campaign spec against a store
* :func:`open_store`     -- open a (sharded) results store

plus re-exports of the types those verbs consume and produce
(``SystemConfig``, ``make_workload``, ``ExperimentContext``, ...), resolved
lazily so ``import repro`` stays cheap.  Old import sites keep working for
one release through ``DeprecationWarning`` shims.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .experiments.campaign import CampaignSpec, CampaignSummary
    from .stats.store import ResultsStore
    from .system.simulator import SimulationResult
    from .workloads.importers import ImportSummary

__all__ = [
    "simulate",
    "analyze",
    "import_trace",
    "run_campaign",
    "open_store",
    # Re-exported supporting types (lazily resolved):
    "SystemConfig",
    "NumaSystem",
    "Simulator",
    "SimulationResult",
    "SimulationStats",
    "SamplingPlan",
    "amat_breakdown",
    "make_workload",
    "record_workload",
    "TraceDirWorkload",
    "CampaignSpec",
    "CampaignSummary",
    "campaign_status",
    "merged_point_stats",
    "FailurePolicy",
    "ResultsStore",
    "ExperimentContext",
    "ExperimentSettings",
    "DESIGNS",
    "speedup",
    "format_table",
    "fit_clone",
    "load_clone",
]

#: Lazy re-export table: public name -> (module, attribute).  Resolution
#: happens on first attribute access (PEP 562), so importing :mod:`repro`
#: never drags in the experiments/service machinery.
_EXPORTS = {
    "SystemConfig": (".system.config", "SystemConfig"),
    "NumaSystem": (".system.numa_system", "NumaSystem"),
    "Simulator": (".system.simulator", "Simulator"),
    "SimulationResult": (".system.simulator", "SimulationResult"),
    "SimulationStats": (".stats.counters", "SimulationStats"),
    "SamplingPlan": (".stats.sampling", "SamplingPlan"),
    "amat_breakdown": (".stats.amat", "amat_breakdown"),
    "make_workload": (".workloads", "make_workload"),
    "record_workload": (".workloads.trace_io", "record_workload"),
    "TraceDirWorkload": (".workloads.trace_io", "TraceDirWorkload"),
    "CampaignSpec": (".experiments.campaign", "CampaignSpec"),
    "CampaignSummary": (".experiments.campaign", "CampaignSummary"),
    "campaign_status": (".experiments.campaign", "campaign_status"),
    "merged_point_stats": (".experiments.campaign", "merged_point_stats"),
    "FailurePolicy": (".experiments.runner", "FailurePolicy"),
    "ResultsStore": (".stats.store", "ResultsStore"),
    "ExperimentContext": (".experiments.common", "ExperimentContext"),
    "ExperimentSettings": (".experiments.common", "ExperimentSettings"),
    "DESIGNS": (".experiments.common", "DESIGNS"),
    "speedup": (".experiments.common", "speedup"),
    "format_table": (".stats.report", "format_table"),
    "fit_clone": (".workloads.clone", "fit_clone"),
    "load_clone": (".workloads.clone", "load_clone"),
}


def __getattr__(name: str):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name, __package__), attribute)
    globals()[name] = value      # cache: subsequent accesses are direct
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


# ----------------------------------------------------------------------
# The five facade verbs
# ----------------------------------------------------------------------


def simulate(
    config=None,
    workload="streamcluster",
    *,
    engine: str = "compiled",
    scale: int = 512,
    accesses_per_thread: int = 2000,
    warmup_accesses_per_core: int = 0,
    prewarm: bool = True,
    sample_plan=None,
    check_invariants: bool = True,
) -> "SimulationResult":
    """Run one simulation and return its result (``result.stats`` is the
    :class:`~repro.stats.counters.SimulationStats`).

    ``config`` is a :class:`SystemConfig` (default: the paper's quad-socket
    C3D machine scaled by ``scale``); ``workload`` is a workload object
    (:func:`make_workload`, :class:`TraceDirWorkload`, a scenario) or a
    synthetic-workload name, which is then built at the same ``scale`` with
    ``accesses_per_thread`` accesses on every core of ``config``.
    ``engine`` names an execution engine from the :mod:`repro.engines`
    registry (``compiled``, ``object``, ``vector``, ``sampled``).  Machine
    invariants are checked after the run (``check_invariants=False`` skips).
    """
    from .system.config import SystemConfig
    from .system.numa_system import NumaSystem
    from .system.simulator import Simulator
    from .workloads import make_workload

    if config is None:
        config = SystemConfig.quad_socket(protocol="c3d").scaled(scale)
    if isinstance(workload, str):
        workload = make_workload(
            workload,
            scale=scale,
            accesses_per_thread=accesses_per_thread + warmup_accesses_per_core,
            num_threads=config.total_cores,
        )
    system = NumaSystem(config)
    result = Simulator(system, workload, engine=engine,
                       sample_plan=sample_plan).run(
        warmup_accesses_per_core=warmup_accesses_per_core, prewarm=prewarm
    )
    if check_invariants:
        violations = system.check_invariants()
        if violations:
            raise RuntimeError(
                f"machine invariants violated after simulation: {violations}"
            )
    return result


def analyze(trace_dir, **kwargs) -> Dict:
    """Characterise a trace directory into a ``workload-profile/v1`` dict.

    Footprint, read/write mix, sharing degree, reuse distances, locality --
    docs/ingestion.md documents every field.  Keyword arguments pass
    through to :func:`repro.workloads.analyzer.analyze_trace_dir`.
    """
    from .workloads.analyzer import analyze_trace_dir

    return analyze_trace_dir(Path(trace_dir), **kwargs)


def import_trace(fmt: str, src, dest, **kwargs) -> "ImportSummary":
    """Convert an external trace (``lackey``, ``pin-csv``, ``synchrotrace``)
    into a replayable trace directory (docs/ingestion.md)."""
    from .workloads.importers import import_trace as _import_trace

    return _import_trace(fmt, src, dest, **kwargs)


def run_campaign(
    spec,
    store=None,
    *,
    jobs: int = 1,
    failure_policy=None,
    stream=None,
) -> "CampaignSummary":
    """Execute a campaign against a results store, resumably.

    ``spec`` is a :class:`CampaignSpec`, a spec-shaped mapping, or a path
    to a spec JSON file; ``store`` is a :class:`ResultsStore`, a directory
    path, or ``None`` for the spec's own store directory.  Completed points
    are cache hits; failures retry/quarantine per ``failure_policy``
    (docs/campaigns.md, docs/robustness.md).
    """
    import sys

    from .experiments import campaign as campaign_module
    from .experiments.runner import FailurePolicy

    if isinstance(spec, (str, Path)):
        spec = campaign_module.CampaignSpec.from_file(spec)
    elif isinstance(spec, Mapping):
        spec = campaign_module.CampaignSpec.from_dict(spec)
    if store is None or isinstance(store, (str, Path)):
        store = open_store(spec.store_directory(store))
    return campaign_module.run_campaign(
        spec,
        store,
        jobs=jobs,
        failure_policy=failure_policy or FailurePolicy(),
        stream=stream if stream is not None else sys.stdout,
    )


def open_store(path: Union[str, Path]) -> "ResultsStore":
    """Open (or lazily create) the sharded results store at ``path``
    (docs/serving.md documents the layout and concurrency model)."""
    from .stats.store import ResultsStore

    return ResultsStore(path)
