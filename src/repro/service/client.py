"""`repro submit`: the thin HTTP client of a `repro serve` daemon.

Stdlib ``urllib`` only.  :class:`ServeClient` wraps the four endpoints;
the CLI submits a campaign spec file, optionally polls it to completion
and streams the NDJSON results to a file or stdout.  The client never
opens the store -- everything goes over the wire (docs/serving.md).
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Dict, Iterator, List, Mapping, Optional

__all__ = ["ServeClient", "ServiceError", "main"]


class ServiceError(RuntimeError):
    """An HTTP error response from the serving daemon."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"server returned {status}: {message}")


class ServeClient:
    """Minimal client of the `repro serve` HTTP API."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, body: Optional[bytes] = None):
        request = urllib.request.Request(
            self.base_url + path,
            data=body,
            headers={"Content-Type": "application/json"} if body else {},
            method="POST" if body is not None else "GET",
        )
        try:
            return urllib.request.urlopen(request, timeout=self.timeout)
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except (ValueError, OSError):
                detail = exc.reason
            raise ServiceError(exc.code, detail) from None

    def _json(self, path: str, body: Optional[bytes] = None) -> Dict:
        with self._request(path, body) as response:
            return json.loads(response.read().decode("utf-8"))

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict:
        return self._json("/healthz")

    def submit(self, spec_payload: Mapping) -> Dict:
        """POST a CampaignSpec payload; returns the job descriptor."""
        body = json.dumps(dict(spec_payload)).encode("utf-8")
        return self._json("/campaigns", body)

    def status(self, job_id: str) -> Dict:
        return self._json(f"/campaigns/{job_id}")

    def results(self, job_id: str) -> Iterator[Dict]:
        """Stream the completed records of a campaign, one per NDJSON line."""
        with self._request(f"/campaigns/{job_id}/results") as response:
            for raw in response:
                line = raw.decode("utf-8").strip()
                if line:
                    yield json.loads(line)

    def wait(self, job_id: str, *, timeout: float = 600.0,
             poll_s: float = 0.2) -> Dict:
        """Poll until the job leaves the queue and no points are pending."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() > deadline:
                raise ServiceError(
                    504, f"campaign {job_id} still {status['state']} "
                         f"({status['points_done']}/{status['points_total']} "
                         f"points) after {timeout:.0f}s"
                )
            time.sleep(poll_s)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from ..cli_common import store_options

    parser = argparse.ArgumentParser(
        prog="repro submit",
        description="Submit a campaign spec to a running `repro serve` "
                    "daemon over HTTP (docs/serving.md).",
        parents=[store_options(
            store_help="ignored: the server owns the store; accepted for "
                       "CLI symmetry",
        )],
    )
    parser.add_argument("spec", help="campaign spec JSON file")
    parser.add_argument("--server", required=True, metavar="URL",
                        help="base URL of the daemon, e.g. "
                             "http://127.0.0.1:8642")
    parser.add_argument("--wait", action="store_true",
                        help="poll status until the campaign finishes")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="--wait deadline in seconds (default: 600)")
    parser.add_argument("--results", metavar="PATH", default=None,
                        help="after --wait, stream the NDJSON results "
                             "to this file ('-' = stdout)")
    args = parser.parse_args(argv)
    if args.store:
        print("repro submit: note: --store is ignored (the server owns "
              "its store)", file=sys.stderr)

    try:
        payload = json.loads(open(args.spec, encoding="utf-8").read())
    except (OSError, ValueError) as exc:
        print(f"repro submit: cannot read spec {args.spec}: {exc}",
              file=sys.stderr)
        return 2

    client = ServeClient(args.server)
    try:
        job = client.submit(payload)
        if not args.wait:
            print(json.dumps(job, sort_keys=True) if args.json else
                  f"submitted campaign '{job['name']}' as {job['id']} "
                  f"({job['points_total']} points, state {job['state']})")
            return 0
        status = client.wait(job["id"], timeout=args.timeout)
        if args.results:
            out = (sys.stdout if args.results == "-"
                   else open(args.results, "w", encoding="utf-8"))
            try:
                for record in client.results(job["id"]):
                    out.write(json.dumps(record, sort_keys=True,
                                         separators=(",", ":")) + "\n")
            finally:
                if out is not sys.stdout:
                    out.close()
        if args.json:
            print(json.dumps(status, sort_keys=True))
        else:
            print(f"campaign '{status['name']}' {status['state']}: "
                  f"{status['points_done']}/{status['points_total']} points "
                  f"({status['executed']} executed, {status['cached']} "
                  f"cached, {status['points_quarantined']} quarantined)")
        return 0 if status["state"] == "done" else 1
    except (ServiceError, urllib.error.URLError) as exc:
        print(f"repro submit: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via `repro submit`
    sys.exit(main(sys.argv[1:]))
