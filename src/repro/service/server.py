"""`repro serve`: the campaign HTTP daemon (stdlib only).

A :class:`ThreadingHTTPServer` front end over one sharded results store
and a :class:`~repro.service.jobs.JobManager` worker pool.  Four
endpoints (docs/serving.md is the full reference):

* ``GET  /healthz``                 -- liveness + job-pool counts
* ``POST /campaigns``               -- submit a CampaignSpec JSON body
* ``GET  /campaigns/{id}``          -- done/pending/quarantined counts
* ``GET  /campaigns/{id}/results``  -- completed records, streamed NDJSON

Responses are JSON; errors are ``{"error": ...}`` with a 4xx status.
Results stream record by record (HTTP/1.0 close-delimited, no buffering
of the whole store), in the campaign's deterministic expansion order.

The server binds 127.0.0.1 by default: the daemon trusts its callers --
anything that can reach the socket can submit work -- so exposing it
beyond localhost is an explicit operator decision (``--host``).
"""

from __future__ import annotations

import json
import os
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional, Tuple

from ..engines.base import WORKER_ENV
from ..experiments.campaign import CampaignError
from ..experiments.runner import FailurePolicy, sweep_point_key
from ..stats.store import _canonical
from .jobs import JobManager

__all__ = ["CampaignHTTPServer", "serve", "main"]

#: One stored record per line; close-delimited (no Content-Length).
NDJSON = "application/x-ndjson"
JSON = "application/json"


class CampaignHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address, manager: JobManager, *, quiet: bool = True):
        self.manager = manager
        self.quiet = quiet
        super().__init__(address, _Handler)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    #: HTTP/1.0 keeps the NDJSON stream close-delimited -- the client
    #: reads until EOF, the server never needs the full byte count.
    protocol_version = "HTTP/1.0"

    # -- plumbing ------------------------------------------------------

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - operator logging
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", JSON)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _route(self) -> Tuple[str, List[str]]:
        path = self.path.split("?", 1)[0]
        return path, [part for part in path.split("/") if part]

    # -- endpoints -----------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path, parts = self._route()
        if path == "/healthz":
            self._send_json(200, {
                "status": "ok",
                "store": str(self.manager.store_path),
                "jobs": self.manager.counts(),
            })
            return
        if len(parts) >= 2 and parts[0] == "campaigns":
            job = self.manager.get(parts[1])
            if job is None:
                self._error(404, f"unknown campaign {parts[1]!r}")
                return
            if len(parts) == 2:
                self._send_json(200, self.manager.status(job))
                return
            if len(parts) == 3 and parts[2] == "results":
                self._stream_results(job)
                return
        self._error(404, f"no such endpoint: {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path, _parts = self._route()
        if path != "/campaigns":
            self._error(404, f"no such endpoint: {path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            job, created = self.manager.submit(payload)
        except CampaignError as exc:
            self._error(400, str(exc))
            return
        self._send_json(202 if created else 200, {
            "id": job.id,
            "name": job.spec.name,
            "state": job.state,
            "points_total": len(job.spec.expand()),
            "created": created,
        })

    def _stream_results(self, job) -> None:
        """Stream the job's completed records as NDJSON, expansion order.

        Pending/quarantined points are simply absent; the client can diff
        against the status endpoint's counts.  Records come from per-shard
        index lookups -- the store is never loaded whole.
        """
        store = self.manager.open_store()
        self.send_response(200)
        self.send_header("Content-Type", NDJSON)
        self.end_headers()
        for point in job.spec.expand():
            record = store.get(sweep_point_key(point, job.spec.engine))
            if record is None:
                continue
            line = _canonical(record.to_json_dict()) + "\n"
            self.wfile.write(line.encode("utf-8"))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def serve(
    store_path,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 2,
    point_jobs: int = 2,
    failure_policy: Optional[FailurePolicy] = None,
    quiet: bool = True,
) -> CampaignHTTPServer:
    """Bind the daemon (without entering its serve loop).

    ``port=0`` binds an ephemeral port -- read it back from
    ``server.server_address``.  The caller owns the loop: call
    ``serve_forever()`` (or poll ``handle_request()`` in tests) and
    ``shutdown_service()`` when done.

    The daemon's job pool owns the machine's parallelism, so the
    nested-parallelism marker is set process-wide here: any ``sampled-par``
    point a campaign job runs (in-process or in its forked point workers,
    which inherit the environment) clamps to one engine job.
    """
    os.environ[WORKER_ENV] = "1"
    manager = JobManager(
        store_path,
        workers=workers,
        point_jobs=point_jobs,
        failure_policy=failure_policy,
    )
    server = CampaignHTTPServer((host, port), manager, quiet=quiet)
    return server


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from ..cli_common import store_options

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve campaign submit/status/results over HTTP "
                    "against one sharded results store (docs/serving.md).",
        parents=[store_options(
            store_help="results-store directory every campaign runs against "
                       "(submitted specs' own 'store' fields are ignored)",
            json_help="reserved for symmetry with the other subcommands",
        )],
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: localhost only)")
    parser.add_argument("--port", type=int, default=8642,
                        help="TCP port (default: 8642; 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=2,
                        help="concurrent campaign jobs (default: 2)")
    parser.add_argument("--point-jobs", type=int, default=2,
                        help="worker processes per campaign sweep "
                             "(default: 2)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request to stderr")
    args = parser.parse_args(argv)
    if not args.store:
        parser.error("--store PATH is required")

    server = serve(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        point_jobs=args.point_jobs,
        quiet=not args.verbose,
    )
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"(store {args.store}, {args.workers} worker(s) x "
          f"{args.point_jobs} point job(s))", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.manager.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro serve`
    import sys

    sys.exit(main(sys.argv[1:]))
