"""The serving daemon's async worker pool.

A :class:`JobManager` owns one sharded results store and a fixed pool of
worker threads.  Each submitted :class:`CampaignJob` is a whole campaign;
a worker claims it and drives it through the existing
:func:`~repro.experiments.campaign.run_campaign` machinery (per-point
process isolation, retries, quarantine, fallback -- docs/robustness.md),
so a campaign submitted over HTTP behaves exactly like `repro campaign
run` against the same store.  Concurrency is safe at both levels: jobs
append through the store's per-shard writer locks, and completed points
are cache hits for every later job (including resubmissions of the same
campaign, which re-run 100% cached).

Campaign identity is *content-addressed*: a job id is the content hash of
the canonical spec payload, so submitting the same campaign twice names
the same job -- an in-flight duplicate returns the existing job, a
finished one is re-enqueued (and served from cache).
"""

from __future__ import annotations

import io
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..experiments.campaign import CampaignSpec, campaign_status, run_campaign
from ..experiments.runner import FailurePolicy
from ..stats.store import ResultsStore, content_key

__all__ = ["CampaignJob", "JobManager"]

#: Job lifecycle: queued -> running -> done | failed.
JOB_STATES = ("queued", "running", "done", "failed")


def campaign_id(payload: Mapping) -> str:
    """The content-addressed job id of a campaign spec payload."""
    return content_key(dict(payload))[:16]


@dataclass
class CampaignJob:
    """One submitted campaign and its execution state."""

    id: str
    spec: CampaignSpec
    payload: Dict
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    #: Per-run counters from the last completed execution.
    executed: int = 0
    cached: int = 0
    failed: int = 0
    #: Traceback summary when ``state == "failed"``.
    error: str = ""
    #: Captured run_campaign progress log (one line per point).
    log: str = ""


class JobManager:
    """Queue + worker pool executing submitted campaigns against one store."""

    def __init__(
        self,
        store_path,
        *,
        workers: int = 2,
        point_jobs: int = 2,
        failure_policy: Optional[FailurePolicy] = None,
    ) -> None:
        self.store_path = Path(store_path)
        self.point_jobs = max(1, int(point_jobs))
        self.failure_policy = failure_policy or FailurePolicy()
        self._jobs: Dict[str, CampaignJob] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._workers = [
            threading.Thread(target=self._worker, name=f"repro-serve-{i}",
                             daemon=True)
            for i in range(max(1, int(workers)))
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Submission + lookup
    # ------------------------------------------------------------------

    def submit(self, payload: Mapping):
        """Validate and enqueue a campaign; returns ``(job, created)``.

        Raises :class:`~repro.experiments.campaign.CampaignError` on an
        invalid spec (the server maps it to HTTP 400).  Submitting a
        campaign that is already queued or running returns the existing
        job; resubmitting a finished one re-enqueues it -- every completed
        point is then a cache hit, so an unchanged campaign re-runs 100%
        cached (the CI serve-smoke job asserts exactly that).
        """
        spec = CampaignSpec.from_dict(payload)
        job_id = campaign_id(payload)
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                if job.state in ("queued", "running"):
                    return job, False
                job.state = "queued"
                self._queue.put(job_id)
                return job, False
            job = CampaignJob(id=job_id, spec=spec, payload=dict(payload))
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._queue.put(job_id)
            return job, True

    def get(self, job_id: str) -> Optional[CampaignJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[CampaignJob]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per lifecycle state (the health endpoint's payload)."""
        totals = {state: 0 for state in JOB_STATES}
        for job in self.jobs():
            totals[job.state] += 1
        return totals

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------

    def open_store(self) -> ResultsStore:
        """A fresh store handle (per request/worker: indexes are not shared
        across threads, concurrency is mediated by the files + locks)."""
        return ResultsStore(self.store_path)

    def status(self, job: CampaignJob) -> Dict[str, object]:
        """The job's lifecycle state merged with live store-index counts."""
        store_state = campaign_status(job.spec, self.open_store())
        done = store_state["points_done"]
        total = store_state["points_total"]
        return {
            "id": job.id,
            "name": job.spec.name,
            "state": job.state,
            "points_total": total,
            "points_done": done,
            "points_pending": total - done,
            "points_quarantined": store_state["points_quarantined"],
            "executed": job.executed,
            "cached": job.cached,
            "failed": job.failed,
            "error": job.error,
        }

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job_id = self._queue.get()
            if job_id is None:          # shutdown sentinel
                return
            job = self.get(job_id)
            if job is None:             # pragma: no cover - cannot happen
                continue
            job.state = "running"
            job.started_at = time.time()
            stream = io.StringIO()
            try:
                summary = run_campaign(
                    job.spec,
                    self.open_store(),
                    jobs=self.point_jobs,
                    stream=stream,
                    failure_policy=self.failure_policy,
                )
            except Exception as exc:    # noqa: BLE001 - jobs must not kill workers
                job.error = f"{type(exc).__name__}: {exc}"
                job.state = "failed"
            else:
                job.executed = summary.executed_points
                job.cached = summary.cached_points
                job.failed = summary.failed_points
                job.state = "failed" if summary.failed_points else "done"
            finally:
                job.log = stream.getvalue()
                job.finished_at = time.time()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers after their current jobs (used by tests/serve)."""
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout)
