"""The campaign serving layer: `repro serve` daemon + HTTP client.

A stdlib-only HTTP front end over the sharded results store
(docs/serving.md).  ``repro serve`` exposes campaign submit / status /
results streaming over four endpoints; submissions run on an async worker
pool that schedules sweep points through the existing fault-tolerant
:func:`~repro.experiments.campaign.run_campaign` machinery, so retries,
quarantine and engine fallback behave exactly as in local runs.

* :mod:`repro.service.jobs`   -- the in-process worker pool (JobManager)
* :mod:`repro.service.server` -- ThreadingHTTPServer endpoints, `repro serve`
* :mod:`repro.service.client` -- urllib client, `repro submit`
"""

from .client import ServeClient, ServiceError
from .jobs import CampaignJob, JobManager
from .server import serve

__all__ = [
    "CampaignJob",
    "JobManager",
    "ServeClient",
    "ServiceError",
    "serve",
]
