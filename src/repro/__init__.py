"""repro -- a reproduction of "C3D: Mitigating the NUMA Bottleneck via
Coherent DRAM Caches" (Huang et al., MICRO 2016).

The package provides:

* ``repro.core`` -- the C3D protocol (clean DRAM caches + non-inclusive
  directory), the idealised C3D+full-directory variant, and the TLB-based
  broadcast filter;
* ``repro.coherence`` -- the coherence substrate and the baseline, snoopy and
  full-directory designs the paper compares against;
* ``repro.caches`` / ``repro.memory`` / ``repro.interconnect`` / ``repro.cpu``
  -- the simulated machine's building blocks (Table II);
* ``repro.system`` -- configuration, machine assembly and the trace-driven
  simulation driver;
* ``repro.workloads`` -- synthetic models of the PARSEC / CloudSuite / SPEC
  workloads the paper evaluates;
* ``repro.experiments`` -- one module per paper table/figure that regenerates
  its rows or series;
* ``repro.verification`` -- an explicit-state model checker for the C3D
  protocol (SWMR and per-location SC invariants).

Quickstart::

    from repro import SystemConfig, NumaSystem, Simulator, make_workload

    config = SystemConfig.quad_socket(protocol="c3d").scaled(512)
    system = NumaSystem(config)
    workload = make_workload("streamcluster", scale=512, accesses_per_thread=2000)
    result = Simulator(system, workload).run()
    print(result.stats.dram_cache_hit_rate(), result.total_time_ns)
"""

from .stats import SimulationStats, amat_breakdown
from .system import (
    PROTOCOL_NAMES,
    PROTOCOL_REGISTRY,
    NumaSystem,
    SimulationResult,
    Simulator,
    SystemConfig,
    build_system,
)
from .workloads import EVALUATED_WORKLOADS, make_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "SystemConfig",
    "NumaSystem",
    "build_system",
    "Simulator",
    "SimulationResult",
    "SimulationStats",
    "amat_breakdown",
    "PROTOCOL_NAMES",
    "PROTOCOL_REGISTRY",
    "make_workload",
    "workload_names",
    "EVALUATED_WORKLOADS",
]
