"""repro -- a reproduction of "C3D: Mitigating the NUMA Bottleneck via
Coherent DRAM Caches" (Huang et al., MICRO 2016).

The package provides:

* ``repro.core`` -- the C3D protocol (clean DRAM caches + non-inclusive
  directory), the idealised C3D+full-directory variant, and the TLB-based
  broadcast filter;
* ``repro.coherence`` -- the coherence substrate and the baseline, snoopy and
  full-directory designs the paper compares against;
* ``repro.caches`` / ``repro.memory`` / ``repro.interconnect`` / ``repro.cpu``
  -- the simulated machine's building blocks (Table II);
* ``repro.system`` -- configuration, machine assembly and the trace-driven
  simulation driver;
* ``repro.workloads`` -- synthetic models of the PARSEC / CloudSuite / SPEC
  workloads the paper evaluates;
* ``repro.experiments`` -- one module per paper table/figure that regenerates
  its rows or series;
* ``repro.verification`` -- an explicit-state model checker for the C3D
  protocol (SWMR and per-location SC invariants).

The **supported import surface for scripts is** :mod:`repro.api`
(docs/architecture.md "Serving layer"): five verbs -- ``simulate``,
``analyze``, ``import_trace``, ``run_campaign``, ``open_store`` -- plus
re-exports of the types they consume.  Internal module paths may move
between releases; ``repro.api`` (and this package's top-level re-exports)
will not.

Quickstart::

    from repro import api

    result = api.simulate(workload="streamcluster", scale=512)
    print(result.stats.dram_cache_hit_rate(), result.total_time_ns)
"""

from . import api
from .api import analyze, import_trace, open_store, run_campaign, simulate
from .stats import SimulationStats, amat_breakdown
from .system import (
    PROTOCOL_NAMES,
    PROTOCOL_REGISTRY,
    NumaSystem,
    SimulationResult,
    Simulator,
    SystemConfig,
    build_system,
)
from .workloads import EVALUATED_WORKLOADS, make_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "api",
    "simulate",
    "analyze",
    "import_trace",
    "run_campaign",
    "open_store",
    "SystemConfig",
    "NumaSystem",
    "build_system",
    "Simulator",
    "SimulationResult",
    "SimulationStats",
    "amat_breakdown",
    "PROTOCOL_NAMES",
    "PROTOCOL_REGISTRY",
    "make_workload",
    "workload_names",
    "EVALUATED_WORKLOADS",
]
