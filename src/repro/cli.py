"""Command-line interface: run one simulation and print a report.

Usage::

    python -m repro --workload streamcluster --protocol c3d
    python -m repro --workload facesim --protocol full-dir --sockets 2 \
        --cores-per-socket 16 --scale 1024 --accesses 2000
    python -m repro --workload facesim --record-trace traces/facesim
    python -m repro --trace-dir traces/facesim      # exact replay
    python -m repro --scenario het-quad             # multi-program mix
    python -m repro --sample-plan units=8,detail=150,warmup=100  # sampled run
    python -m repro import lackey trace.out traces/imported  # external trace
    python -m repro analyze traces/imported --clone-out clone.json
    python -m repro --clone clone.json              # run the fitted clone
    python -m repro bench                 # throughput microbenchmark
    python -m repro bench --accesses 100  # CI-sized smoke
    python -m repro campaign run spec.json          # resumable batch runs
    python -m repro campaign status spec.json
    python -m repro report --store results/demo     # tables, no simulation
    python -m repro store verify --store results/demo   # integrity scan
    python -m repro store compact --store results/demo  # per-shard compaction
    python -m repro store migrate --store results/old   # legacy -> sharded
    python -m repro serve --store results/shared    # campaign HTTP daemon
    python -m repro submit spec.json --server http://127.0.0.1:8642 --wait

The CLI is a thin wrapper over the public API (``SystemConfig`` /
``NumaSystem`` / ``Simulator``); it exists so that a single simulation can be
launched and inspected without writing a script.  Workloads come from any of
the three frontends (see ``docs/workloads.md``): the synthetic registry
(``--workload``), a recorded trace directory (``--trace-dir``), or a scenario
composition (``--scenario``, a built-in name or a JSON file);
``--record-trace DIR`` captures the selected workload to a trace directory
before simulating it.

Eight subcommands sit in front of the single-run flags: ``bench``
(:mod:`repro.bench`) runs the simulator-throughput microbenchmark and
appends to ``BENCH_throughput.json``; ``campaign``
(:mod:`repro.experiments.campaign`) runs/inspects/cleans resumable
experiment campaigns against a persistent results store; ``report``
(:mod:`repro.experiments.report`) renders a populated store into
Markdown/CSV tables without re-simulating; ``store``
(:mod:`repro.stats.store`) verifies, compacts and migrates a store
(docs/robustness.md, docs/serving.md); ``serve``
(:mod:`repro.service.server`) exposes campaign submit/status/results
over HTTP against a shared sharded store, and ``submit``
(:mod:`repro.service.client`) is its thin client; ``import``
(:mod:`repro.workloads.importers`) converts external memory traces into
replayable trace directories and ``analyze``
(:mod:`repro.workloads.analyzer`) characterises a trace directory into a
JSON profile -- optionally fitting a synthetic clone (docs/ingestion.md).
Every store-touching subcommand shares the same ``--store PATH`` and
``--json`` flags (:mod:`repro.cli_common`).  See ``docs/campaigns.md``.

Scripting against the simulator is served by the stable facade
:mod:`repro.api` -- the CLI itself is a thin wrapper over it.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from . import engines
from .cli_common import engine_jobs_options
from .stats.amat import amat_breakdown
from .stats.sampling import SamplingPlan
from .system.config import PROTOCOL_NAMES, SystemConfig
from .system.numa_system import NumaSystem
from .system.simulator import Simulator
from .workloads.registry import WORKLOAD_SPECS
from .workloads.scenario import build_workload
from .workloads.trace_io import TRACE_FORMATS, record_workload

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulate one workload on the C3D reproduction's NUMA machine.",
        parents=[engine_jobs_options()],
    )
    parser.add_argument("--workload", default="streamcluster", choices=sorted(WORKLOAD_SPECS),
                        help="benchmark to simulate")
    parser.add_argument("--protocol", default="c3d", choices=list(PROTOCOL_NAMES),
                        help="coherence design")
    parser.add_argument("--sockets", type=int, default=4, help="number of sockets")
    parser.add_argument("--cores-per-socket", type=int, default=8)
    parser.add_argument("--scale", type=int, default=512,
                        help="capacity/working-set scale factor (DESIGN.md §5)")
    parser.add_argument("--accesses", type=int, default=2000,
                        help="measured memory accesses per core")
    parser.add_argument("--warmup", type=int, default=500,
                        help="warm-up accesses per core (not measured)")
    parser.add_argument("--policy", default="first_touch",
                        choices=["interleave", "ft1", "ft2", "first_touch"],
                        help="NUMA page-placement policy")
    parser.add_argument("--no-prewarm", action="store_true",
                        help="do not pre-load the DRAM caches before measuring")
    parser.add_argument("--broadcast-filter", action="store_true",
                        help="enable the section IV-D TLB broadcast filter (C3D only)")
    parser.add_argument("--seed", type=int, default=None, help="workload RNG seed")
    parser.add_argument("--engine", default=None, metavar="NAME",
                        help="execution engine (registry: "
                             f"{', '.join(engines.names())}; default compiled "
                             "= array-backed fast path; sampled = statistical "
                             "sampling, docs/sampling.md)")
    parser.add_argument("--sample-plan", default=None, metavar="SPEC",
                        help="sampling plan ('units=8,detail=150,warmup=100' or "
                             "'auto'); implies --engine sampled")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="replay a recorded trace directory instead of "
                             "generating --workload (see docs/workloads.md)")
    parser.add_argument("--scenario", default=None, metavar="NAME_OR_JSON",
                        help="compose the workload from a scenario: a built-in "
                             "name (repro.workloads.scenario_names()) or a "
                             "scenario JSON file")
    parser.add_argument("--clone", default=None, metavar="JSON",
                        help="run a fitted synthetic clone from a clone-spec "
                             "JSON written by `repro analyze --clone-out` "
                             "(docs/ingestion.md)")
    parser.add_argument("--record-trace", default=None, metavar="DIR",
                        help="record the selected workload to a trace directory "
                             "before simulating (replay it with --trace-dir)")
    parser.add_argument("--trace-format", default="csv", choices=list(TRACE_FORMATS),
                        help="file format used by --record-trace")
    return parser


def _build_workload(args, config):
    """Construct the workload from whichever frontend the flags select.

    Frontend-selection problems (conflicting flags, unknown scenario names,
    unreadable trace directories) exit with a one-line message instead of a
    traceback.
    """
    selected = [
        flag
        for flag, value in (("--trace-dir", args.trace_dir),
                            ("--scenario", args.scenario),
                            ("--clone", args.clone))
        if value is not None
    ]
    if len(selected) > 1:
        raise SystemExit(f"{' and '.join(selected)} are mutually exclusive")
    if args.trace_dir is not None and args.record_trace is not None:
        raise SystemExit("--record-trace makes no sense with --trace-dir "
                         "(the trace is already on disk)")
    try:
        return build_workload(
            num_sockets=config.num_sockets,
            cores_per_socket=config.cores_per_socket,
            workload=args.workload,
            trace_dir=args.trace_dir,
            scenario=args.scenario,
            clone=args.clone,
            scale=args.scale,
            accesses_per_thread=args.accesses + args.warmup,
            seed=args.seed,
        )
    except (KeyError, ValueError) as exc:
        # KeyError.str() keeps its quotes; unwrap for a clean message.
        message = exc.args[0] if exc.args else str(exc)
        raise SystemExit(f"error: {message}") from None


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from .bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "campaign":
        from .experiments.campaign import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "report":
        from .experiments.report import main as report_main

        return report_main(argv[1:])
    if argv and argv[0] == "store":
        from .stats.store import main as store_main

        return store_main(argv[1:])
    if argv and argv[0] == "serve":
        from .service.server import main as serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "submit":
        from .service.client import main as submit_main

        return submit_main(argv[1:])
    if argv and argv[0] == "import":
        from .workloads.importers import main as import_main

        return import_main(argv[1:])
    if argv and argv[0] == "analyze":
        from .workloads.analyzer import main as analyze_main

        return analyze_main(argv[1:])
    args = build_parser().parse_args(argv)

    # Engine resolution happens before any expensive work (workload
    # generation, trace recording) so a typo fails fast, like the old
    # argparse choices did -- but with the registry's name listing.
    engine = args.engine
    if engine is not None:
        try:
            engines.validate(engine)
        except ValueError as exc:
            raise SystemExit(f"error: {exc}") from None
    sample_plan = None
    if args.sample_plan is not None:
        if engine is None:
            engine = "sampled"
        elif not engines.get(engine).supports_sampling:
            # Capability flag, not a name comparison: a registered
            # third-party sampling engine accepts --sample-plan too.
            raise SystemExit(
                f"error: --sample-plan requires an engine with sampling "
                f"support, but --engine {engine} does not sample"
            )
        if args.sample_plan != "auto":
            try:
                sample_plan = SamplingPlan.from_spec(args.sample_plan)
            except ValueError as exc:
                raise SystemExit(f"error: {exc}")

    base = SystemConfig.dual_socket if args.sockets == 2 else SystemConfig.quad_socket
    config = base(
        protocol=args.protocol,
        num_sockets=args.sockets,
        cores_per_socket=args.cores_per_socket,
        allocation_policy=args.policy,
        broadcast_filter=args.broadcast_filter,
    ).scaled(args.scale)

    system = NumaSystem(config)
    workload = _build_workload(args, config)
    if args.record_trace is not None:
        record_workload(workload, args.record_trace, trace_format=args.trace_format)
        print(f"recorded : {workload.num_threads} per-core traces "
              f"({args.trace_format}) -> {args.record_trace}")
    engine_options = (
        {"jobs": args.engine_jobs} if args.engine_jobs is not None else None
    )
    simulator = Simulator(
        system,
        workload,
        engine=engine or "compiled",
        sample_plan=sample_plan,
        engine_options=engine_options,
    )

    print(f"machine  : {config.describe()}")
    name = getattr(workload, "name", args.workload)
    print(f"workload : {name} ({workload.num_threads} threads)")
    if args.scenario is not None:
        print(workload.describe())
    started = time.time()
    result = simulator.run(
        warmup_accesses_per_core=args.warmup,
        prewarm=not args.no_prewarm,
    )
    elapsed = time.time() - started

    stats = result.stats
    print(f"\nsimulated {result.accesses_executed} accesses in {elapsed:.1f} s wall clock")
    print(f"execution time (simulated) : {result.total_time_ns / 1000:.1f} us")
    print(f"AMAT                       : {stats.amat_ns():.1f} ns")
    print(f"L1 / LLC / DRAM$ hit rates : {stats.l1_hit_rate():.3f} / "
          f"{stats.llc_hit_rate():.3f} / {stats.dram_cache_hit_rate():.3f}")
    print(f"remote memory fraction     : {stats.remote_memory_fraction():.3f}")
    print(f"inter-socket bytes         : {result.inter_socket_bytes}")
    print(f"broadcasts / elided        : {stats.broadcasts} / {stats.broadcasts_elided}")
    sampling = getattr(stats, "sampling", None)
    if sampling is not None:
        print()
        print(sampling.format())
    print()
    print(amat_breakdown(stats).format())

    violations = system.check_invariants()
    if violations:
        print("\nCOHERENCE INVARIANT VIOLATIONS:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("\ncoherence invariants: OK")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
