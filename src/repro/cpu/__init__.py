"""CPU substrate: timing cores, store buffers, TLBs."""

from .processor import Core
from .store_buffer import StoreBuffer, StorePushResult
from .tlb import TLB

__all__ = ["Core", "StoreBuffer", "StorePushResult", "TLB"]
