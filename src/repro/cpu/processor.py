"""Simple timing core (Table II: 32-core, 1 IPC, 3 GHz, TSO, 32-entry store queue).

The paper's processor model is deliberately simple: one instruction per cycle
when not blocked on memory, loads block for the full memory latency, stores
retire into the store buffer and drain off the critical path.  Each
:class:`Core` owns its clock (``time``, in nanoseconds); the simulation driver
advances the core with the earliest clock so the cores' memory transactions
interleave in (approximate) global time order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..caches.block import CacheBlockState
from ..stats.counters import SimulationStats
from .store_buffer import StoreBuffer
from .tlb import TLB

if TYPE_CHECKING:  # pragma: no cover
    from ..system.socket import Socket
    from ..workloads.trace import MemoryAccess

__all__ = ["Core"]


class Core:
    """One in-order, single-issue core."""

    def __init__(
        self,
        core_id: int,
        socket: "Socket",
        *,
        clock_ghz: float = 3.0,
        store_buffer_entries: int = 32,
        tlb_entries: int = 64,
        thread_id: Optional[int] = None,
    ) -> None:
        self.core_id = core_id
        self.socket = socket
        self.thread_id = thread_id if thread_id is not None else core_id
        self.cycle_ns = 1.0 / clock_ghz
        self.time = 0.0
        self.store_buffer = StoreBuffer(store_buffer_entries)
        self.tlb = TLB(tlb_entries)
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        #: Socket-local L1 index, fixed at construction (hot-loop fast path).
        self.local_index = socket.local_index_of(core_id)
        #: This core's L1, plus whether its recency can be maintained
        #: intrusively (LRU) -- the condition for the inlined hit path.
        self.l1 = socket.l1s[self.local_index]
        self._l1_fast = getattr(self.l1, "_touch_moves", False)

    # -- helpers --------------------------------------------------------------

    @property
    def stats(self) -> SimulationStats:
        return self.socket.stats

    @property
    def local_core_index(self) -> int:
        """Index of this core within its socket."""
        return self.local_index

    def advance_instructions(self, count: int) -> None:
        """Model ``count`` non-memory instructions at 1 IPC."""
        if count > 0:
            self.time += count * self.cycle_ns
            self.instructions += count

    # -- the per-access execution loop ------------------------------------------

    def execute(self, access: "MemoryAccess") -> float:
        """Execute one trace record; returns the core's new local time."""
        self.advance_instructions(access.gap)
        layout = self.socket.layout
        block = layout.block_of(access.addr)
        self.tlb.access(layout.page_of(access.addr))
        self.instructions += 1
        self.stats.instructions += 1

        if access.is_write:
            self._execute_store(block)
        else:
            self._execute_load(block)
        return self.time

    def execute_fast(self, block: int, page: int, is_write: bool, gap: int) -> float:
        """Hot-loop variant of :meth:`execute` for compiled traces.

        Takes precomputed block/page numbers, hoists the attribute and
        property lookups of the legacy path into locals and inlines the TLB,
        the store-buffer empty checks and the L1 hit path (the L1 is LRU in
        every evaluated configuration, so its recency update is the same
        intrusive move the cache itself would perform).  The sequence of
        architectural and statistics updates is identical to ``execute`` (the
        engine equivalence golden test asserts this), only the Python-level
        indirection differs.
        """
        time = self.time
        if gap > 0:
            time += gap * self.cycle_ns
            self.instructions += gap
        # Inlined TLB access (the charged latency is zero by default and the
        # legacy path discards it; only the hit/miss accounting matters here).
        tlb = self.tlb
        tlb_pages = tlb._pages
        if page in tlb_pages:
            tlb_pages.move_to_end(page)
            tlb.hits += 1
        else:
            tlb.misses += 1
            if len(tlb_pages) >= tlb.entries:
                tlb_pages.popitem(last=False)
            tlb_pages[page] = None
        self.instructions += 1
        socket = self.socket
        stats = socket.system.stats
        stats.instructions += 1
        store_buffer = self.store_buffer

        if is_write:
            self.stores += 1
            stats.writes += 1
            entries = store_buffer._entries
            while entries and entries[0][0] <= time:
                entries.popleft()
            # Inlined L1 lookup + store hit path (see _access_fast).
            l1 = self.l1
            if self._l1_fast:
                cache_set = l1._sets.get(block % l1.num_sets)
                line = cache_set.get(block) if cache_set is not None else None
                if line is not None:
                    l1.hits += 1
                    del cache_set[block]
                    cache_set[block] = line
                else:
                    l1.misses += 1
            else:
                line = l1.lookup(block)
            if line is not None and line.state is CacheBlockState.MODIFIED:
                stats.l1_hits += 1
                line.dirty = True
                llc_line = socket.llc.peek(block)
                if llc_line is not None:
                    llc_line.dirty = True
                latency = socket.l1_latency_ns
            else:
                stats.l1_misses += 1
                latency, _source = socket.access_l1_missed(
                    time, self.local_index, block, True, self.thread_id
                )
            result = store_buffer.push(time, block, time + latency)
            if result.stall_ns > 0:
                stats.store_buffer_stalls += 1
                stats.store_buffer_stall_ns += result.stall_ns
                time += result.stall_ns
            time += self.cycle_ns
            acc = stats.write_latency
        else:
            self.loads += 1
            stats.reads += 1
            if store_buffer._entries and store_buffer.forwards(block, time):
                latency = socket.l1_latency_ns
                stats.store_forward_hits += 1
            else:
                # Inlined L1 lookup + load hit path (see _access_fast).
                l1 = self.l1
                if self._l1_fast:
                    cache_set = l1._sets.get(block % l1.num_sets)
                    line = cache_set.get(block) if cache_set is not None else None
                    if line is not None:
                        l1.hits += 1
                        del cache_set[block]
                        cache_set[block] = line
                        stats.l1_hits += 1
                        latency = socket.l1_latency_ns
                    else:
                        l1.misses += 1
                        stats.l1_misses += 1
                        latency, _source = socket.access_l1_missed(
                            time, self.local_index, block, False, self.thread_id
                        )
                else:
                    latency = self._access_fast(time, block, False, stats)
            time += latency
            acc = stats.read_latency
        acc.total += latency
        acc.count += 1
        if latency > acc.maximum:
            acc.maximum = latency
        self.time = time
        return time

    def _access_fast(self, now: float, block: int, is_write: bool, stats) -> float:
        """Inlined L1 lookup + hit path of :meth:`Socket.access`."""
        socket = self.socket
        l1 = self.l1
        if self._l1_fast:
            cache_set = l1._sets.get(block % l1.num_sets)
            line = cache_set.get(block) if cache_set is not None else None
            if line is not None:
                l1.hits += 1
                # Intrusive LRU move-to-end, as l1.lookup would do.
                del cache_set[block]
                cache_set[block] = line
            else:
                l1.misses += 1
        else:
            line = l1.lookup(block)
        if line is not None and (not is_write or line.state is CacheBlockState.MODIFIED):
            stats.l1_hits += 1
            if is_write:
                line.dirty = True
                llc_line = socket.llc.peek(block)
                if llc_line is not None:
                    llc_line.dirty = True
            return socket.l1_latency_ns
        stats.l1_misses += 1
        latency, _source = socket.access_l1_missed(
            now, self.local_index, block, is_write, self.thread_id
        )
        return latency

    def _execute_load(self, block: int) -> None:
        self.loads += 1
        self.stats.reads += 1
        if self.store_buffer.forwards(block, self.time):
            # TSO store-to-load forwarding: the youngest matching store's data
            # is bypassed to the load within the pipeline.
            latency = self.socket.l1_latency_ns
            self.stats.store_forward_hits += 1
        else:
            latency, _source = self.socket.access(
                self.time, self.local_core_index, block,
                is_write=False, thread_id=self.thread_id,
            )
        self.time += latency
        self.stats.read_latency.add(latency)

    def _execute_store(self, block: int) -> None:
        self.stores += 1
        self.stats.writes += 1
        self.store_buffer.drain(self.time)
        latency, _source = self.socket.access(
            self.time, self.local_core_index, block,
            is_write=True, thread_id=self.thread_id,
        )
        # The store retires into the buffer; completion is serialised behind
        # older stores (TSO in-order drain), which throttles store bursts by
        # filling the buffer and stalling the core.
        result = self.store_buffer.push(self.time, block, self.time + latency)
        if result.stall_ns > 0:
            self.stats.store_buffer_stalls += 1
            self.stats.store_buffer_stall_ns += result.stall_ns
            self.time += result.stall_ns
        # The store itself occupies the pipeline for one cycle; its memory
        # latency is hidden by the store buffer.
        self.time += self.cycle_ns
        self.stats.write_latency.add(latency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Core(id={self.core_id}, t={self.time:.1f}ns)"
