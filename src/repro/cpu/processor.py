"""Simple timing core (Table II: 32-core, 1 IPC, 3 GHz, TSO, 32-entry store queue).

The paper's processor model is deliberately simple: one instruction per cycle
when not blocked on memory, loads block for the full memory latency, stores
retire into the store buffer and drain off the critical path.  Each
:class:`Core` owns its clock (``time``, in nanoseconds); the simulation driver
advances the core with the earliest clock so the cores' memory transactions
interleave in (approximate) global time order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..coherence.messages import ServiceSource
from ..stats.counters import SimulationStats
from .store_buffer import StoreBuffer
from .tlb import TLB

if TYPE_CHECKING:  # pragma: no cover
    from ..system.socket import Socket
    from ..workloads.trace import MemoryAccess

__all__ = ["Core"]


class Core:
    """One in-order, single-issue core."""

    def __init__(
        self,
        core_id: int,
        socket: "Socket",
        *,
        clock_ghz: float = 3.0,
        store_buffer_entries: int = 32,
        tlb_entries: int = 64,
        thread_id: Optional[int] = None,
    ) -> None:
        self.core_id = core_id
        self.socket = socket
        self.thread_id = thread_id if thread_id is not None else core_id
        self.cycle_ns = 1.0 / clock_ghz
        self.time = 0.0
        self.store_buffer = StoreBuffer(store_buffer_entries)
        self.tlb = TLB(tlb_entries)
        self.instructions = 0
        self.loads = 0
        self.stores = 0

    # -- helpers --------------------------------------------------------------

    @property
    def stats(self) -> SimulationStats:
        return self.socket.stats

    @property
    def local_core_index(self) -> int:
        """Index of this core within its socket."""
        return self.socket.local_index_of(self.core_id)

    def advance_instructions(self, count: int) -> None:
        """Model ``count`` non-memory instructions at 1 IPC."""
        if count > 0:
            self.time += count * self.cycle_ns
            self.instructions += count

    # -- the per-access execution loop ------------------------------------------

    def execute(self, access: "MemoryAccess") -> float:
        """Execute one trace record; returns the core's new local time."""
        self.advance_instructions(access.gap)
        layout = self.socket.layout
        block = layout.block_of(access.addr)
        self.tlb.access(layout.page_of(access.addr))
        self.instructions += 1
        self.stats.instructions += 1

        if access.is_write:
            self._execute_store(block)
        else:
            self._execute_load(block)
        return self.time

    def _execute_load(self, block: int) -> None:
        self.loads += 1
        self.stats.reads += 1
        if self.store_buffer.forwards(block, self.time):
            # TSO store-to-load forwarding: the youngest matching store's data
            # is bypassed to the load within the pipeline.
            latency = self.socket.l1_latency_ns
            self.stats.store_forward_hits += 1
        else:
            latency, _source = self.socket.access(
                self.time, self.local_core_index, block,
                is_write=False, thread_id=self.thread_id,
            )
        self.time += latency
        self.stats.read_latency.add(latency)

    def _execute_store(self, block: int) -> None:
        self.stores += 1
        self.stats.writes += 1
        self.store_buffer.drain(self.time)
        latency, _source = self.socket.access(
            self.time, self.local_core_index, block,
            is_write=True, thread_id=self.thread_id,
        )
        # The store retires into the buffer; completion is serialised behind
        # older stores (TSO in-order drain), which throttles store bursts by
        # filling the buffer and stalling the core.
        result = self.store_buffer.push(self.time, block, self.time + latency)
        if result.stall_ns > 0:
            self.stats.store_buffer_stalls += 1
            self.stats.store_buffer_stall_ns += result.stall_ns
            self.time += result.stall_ns
        # The store itself occupies the pipeline for one cycle; its memory
        # latency is hidden by the store buffer.
        self.time += self.cycle_ns
        self.stats.write_latency.add(latency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Core(id={self.core_id}, t={self.time:.1f}ns)"
