"""Store buffer model (Table II: 32-entry store queue, TSO).

Stores retire into the buffer and drain to the memory system in the
background, so write latency is normally off the critical path.  The buffer
affects performance in two ways the paper relies on:

* when it fills up, the core stalls until the oldest store completes (this is
  how expensive write transactions -- e.g. C3D broadcasts -- could hurt, and
  the evaluation shows they rarely do);
* loads check the buffer first (TSO store-to-load forwarding), so a load to a
  recently written block completes immediately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Tuple

__all__ = ["StoreBuffer", "StorePushResult"]


@dataclass
class StorePushResult:
    """Outcome of pushing a store into the buffer."""

    stall_ns: float
    issue_time: float


class StoreBuffer:
    """Fixed-capacity FIFO of in-flight stores."""

    def __init__(self, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("store buffer capacity must be >= 1")
        self.capacity = capacity
        # entries: (completion_time, block)
        self._entries: Deque[Tuple[float, int]] = deque()
        self.pushes = 0
        self.stalls = 0
        self.total_stall_ns = 0.0
        self.forward_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    def drain(self, now: float) -> None:
        """Retire every store whose memory transaction has completed by ``now``."""
        while self._entries and self._entries[0][0] <= now:
            self._entries.popleft()

    def next_drain_time(self, now: float) -> float:
        """Earliest time a newly issued store can start its memory transaction.

        Stores drain in order with one outstanding transaction, so a new
        store starts no earlier than the completion of the store currently at
        the tail of the buffer.
        """
        self.drain(now)
        if not self._entries:
            return now
        return max(now, self._entries[-1][0])

    def forwards(self, block: int, now: float) -> bool:
        """True when a load to ``block`` can be forwarded from the buffer."""
        entries = self._entries
        while entries and entries[0][0] <= now:
            entries.popleft()
        for _completion, pending_block in entries:
            if pending_block == block:
                self.forward_hits += 1
                return True
        return False

    def push(self, now: float, block: int, completion_time: float) -> StorePushResult:
        """Insert a store that will complete no earlier than ``completion_time``.

        Stores drain in order and one at a time, so the effective completion
        time of the new store is at least the completion time of the store in
        front of it -- this is what throttles bursts of stores to the memory
        system.  If the buffer is full, the core stalls until the oldest
        entry retires; the returned ``issue_time`` is when the store actually
        entered the buffer and ``stall_ns`` the stall charged to the core.
        """
        entries = self._entries
        while entries and entries[0][0] <= now:
            entries.popleft()
        stall_ns = 0.0
        issue_time = now
        if len(entries) >= self.capacity:
            oldest_completion = entries[0][0]
            stall_ns = max(0.0, oldest_completion - now)
            issue_time = now + stall_ns
            self.stalls += 1
            self.total_stall_ns += stall_ns
            while entries and entries[0][0] <= issue_time:
                entries.popleft()
        completion = max(completion_time, issue_time)
        if entries:
            # In-order, one-at-a-time drain (TSO): a store cannot complete
            # before the store ahead of it.
            completion = max(completion, entries[-1][0])
        entries.append((completion, block))
        self.pushes += 1
        return StorePushResult(stall_ns=stall_ns, issue_time=issue_time)

    def occupancy(self) -> int:
        """Number of in-flight stores currently buffered."""
        return len(self._entries)
