"""A small per-core TLB.

The paper's section IV-D mechanism hooks into TLB misses to classify pages as
private or shared.  For timing purposes the TLB is essentially free in the
paper's simple processor model; we model it to (a) provide the miss events
that drive the classifier and (b) report TLB statistics in the experiments.
A configurable miss penalty is supported for sensitivity studies but defaults
to zero so it does not perturb the reproduced numbers.
"""

from __future__ import annotations

from collections import OrderedDict

__all__ = ["TLB"]


class TLB:
    """Fully associative, LRU translation lookaside buffer."""

    def __init__(self, entries: int = 64, *, miss_penalty_ns: float = 0.0) -> None:
        if entries < 1:
            raise ValueError("TLB must have at least one entry")
        self.entries = entries
        self.miss_penalty_ns = miss_penalty_ns
        self._pages: "OrderedDict[int, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, page: int) -> float:
        """Translate ``page``; returns the latency charged (0 on a hit)."""
        if page in self._pages:
            self._pages.move_to_end(page)
            self.hits += 1
            return 0.0
        self.misses += 1
        if len(self._pages) >= self.entries:
            self._pages.popitem(last=False)
        self._pages[page] = None
        return self.miss_penalty_ns

    def flush(self) -> None:
        """Drop all translations (page shoot-down / context switch)."""
        self._pages.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __contains__(self, page: int) -> bool:
        return page in self._pages

    def __len__(self) -> int:
        return len(self._pages)
