"""Persistent, append-only store of simulation results (the campaign cache).

Every completed simulation -- a :class:`~repro.experiments.runner.SweepPoint`
of a campaign grid or an :class:`~repro.experiments.common.ExperimentContext`
run behind a figure module -- can be written to a :class:`ResultsStore`: one
JSON record per line in ``<store-dir>/results.jsonl``, keyed by a content
hash of everything that determines the simulation's outcome (workload,
machine configuration, engine, settings, schema version).  Because records
are appended as soon as each point completes:

* re-running a campaign **skips** every point already in the store,
* a campaign interrupted mid-run **resumes** from the completed points
  (at worst the in-flight point is lost -- a torn trailing line is ignored),
* and independent invocations/processes **share** results through the file.

Statistics round-trip bit-identically (``SimulationStats.to_json_dict``),
so results loaded from the store compare equal to freshly simulated ones.
``docs/campaigns.md`` documents the record format and the hash-key
semantics (exactly what invalidates a cached point).  Engine *names* (from
the :mod:`repro.engines` registry) are part of every key payload, which
makes them part of the persistence contract: the built-in names are stable
and ``tests/engines/test_store_keys.py`` pins representative keys
byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Union

from .counters import SimulationStats
from .sampling import SampledSimulationStats

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MissingRunError",
    "StoredRun",
    "ResultsStore",
    "content_key",
]

PathLike = Union[str, Path]

#: Bumped whenever the simulator's semantics change in a way that makes old
#: stored results incomparable with fresh ones (every key embeds it, so a
#: bump invalidates the whole store without touching any file).
STORE_SCHEMA_VERSION = 1

#: File name of the append-only record log inside a store directory.
RESULTS_FILE = "results.jsonl"


class MissingRunError(KeyError):
    """An offline (store-only) lookup found no record for the requested run."""

    def __init__(self, key: str, payload: Optional[Mapping] = None) -> None:
        self.key = key
        self.payload = dict(payload) if payload is not None else None
        described = ""
        if self.payload:
            interesting = {
                name: self.payload[name]
                for name in ("kind", "workload", "protocol", "scenario", "trace_dir")
                if self.payload.get(name) is not None
            }
            described = f" ({interesting})"
        super().__init__(
            f"no stored result for key {key[:12]}...{described}; "
            "run the campaign first (repro campaign run) or drop offline mode"
        )


def content_key(payload: Mapping) -> str:
    """Hash a JSON-serialisable payload into a stable hex content key.

    The payload is canonicalised (sorted keys, no whitespace) before hashing
    so logically identical payloads -- regardless of insertion order -- map
    to the same key.  Floats use ``repr`` (exact shortest form), so keys are
    stable across processes and Python invocations.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoredRun:
    """One completed simulation as persisted in the results store."""

    key: str                       #: content hash of ``params``
    params: Dict                   #: the hashed, outcome-determining payload
    stats: SimulationStats         #: full counters (bit-identical round-trip)
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0

    def to_json_dict(self) -> Dict:
        return {
            "key": self.key,
            "params": self.params,
            "stats": self.stats.to_json_dict(),
            "total_time_ns": self.total_time_ns,
            "inter_socket_bytes": self.inter_socket_bytes,
            "accesses_executed": self.accesses_executed,
            "wall_clock_s": self.wall_clock_s,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "StoredRun":
        stats_payload = payload["stats"]
        # Sampled runs carry their per-metric confidence intervals in a
        # "sampling" section; rebuild them as SampledSimulationStats so the
        # estimates survive the store round trip.
        stats_cls = (
            SampledSimulationStats if "sampling" in stats_payload else SimulationStats
        )
        return cls(
            key=payload["key"],
            params=dict(payload["params"]),
            stats=stats_cls.from_json_dict(stats_payload),
            total_time_ns=payload["total_time_ns"],
            inter_socket_bytes=payload["inter_socket_bytes"],
            accesses_executed=payload["accesses_executed"],
            wall_clock_s=payload.get("wall_clock_s", 0.0),
        )


class ResultsStore:
    """Append-only JSONL store of :class:`StoredRun` records.

    ``ResultsStore(path)`` opens (or lazily creates) the store directory;
    records live in ``path/results.jsonl``.  Lookups are served from an
    in-memory index built on first access; :meth:`put` appends one line and
    flushes immediately, so a concurrent reader (or a crashed writer's next
    invocation) sees every completed record.  Duplicate keys are tolerated
    -- the last record wins, and because keys hash the complete simulation
    input, duplicates are bit-identical by construction.

    Appends open the file in ``O_APPEND`` mode per record, so several worker
    processes can write one store concurrently (single-line appends are
    atomic on POSIX for these record sizes); a torn trailing line from a
    killed writer is skipped on load.
    """

    def __init__(self, path: PathLike) -> None:
        self.directory = Path(path)
        self._index: Optional[Dict[str, StoredRun]] = None
        #: Lookup accounting for cache-hit reporting (`repro campaign`/CI).
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @property
    def results_path(self) -> Path:
        """The JSONL record log backing this store."""
        return self.directory / RESULTS_FILE

    def _load(self) -> Dict[str, StoredRun]:
        if self._index is None:
            self._index = {}
            if self.results_path.exists():
                with self.results_path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = StoredRun.from_json_dict(json.loads(line))
                        except (ValueError, KeyError, TypeError):
                            # A torn line from an interrupted writer (or hand
                            # editing); the point simply reruns.
                            continue
                        self._index[record.key] = record
        return self._index

    def reload(self) -> None:
        """Drop the in-memory index; the next lookup re-reads the file."""
        self._index = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredRun]:
        """Return the stored record for ``key``, counting hits and misses."""
        record = self._load().get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def keys(self) -> List[str]:
        return list(self._load())

    def records(self) -> Iterator[StoredRun]:
        """Iterate over the stored records (last-wins deduplicated)."""
        return iter(self._load().values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def put(self, record: StoredRun) -> StoredRun:
        """Append ``record`` to the log and index it (durable immediately)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_json_dict(), separators=(",", ":"))
        if self._ends_mid_line():
            # A previous writer died mid-append; start a fresh line so the
            # torn fragment stays isolated (the loader skips it).
            line = "\n" + line
        with self.results_path.open("a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._load()[record.key] = record
        return record

    def _ends_mid_line(self) -> bool:
        """True when the log exists, is non-empty and lacks a final newline."""
        try:
            with self.results_path.open("rb") as handle:
                handle.seek(-1, os.SEEK_END)
                return handle.read(1) != b"\n"
        except (OSError, ValueError):
            return False

    def clean(self) -> int:
        """Delete every stored record; returns how many were removed."""
        removed = len(self._load())
        if self.results_path.exists():
            self.results_path.unlink()
        self._index = {}
        self.hits = 0
        self.misses = 0
        return removed
