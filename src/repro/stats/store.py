"""Persistent, append-only store of simulation results (the campaign cache).

Every completed simulation -- a :class:`~repro.experiments.runner.SweepPoint`
of a campaign grid or an :class:`~repro.experiments.common.ExperimentContext`
run behind a figure module -- can be written to a :class:`ResultsStore`: one
JSON record per line in ``<store-dir>/results.jsonl``, keyed by a content
hash of everything that determines the simulation's outcome (workload,
machine configuration, engine, settings, schema version).  Because records
are appended as soon as each point completes:

* re-running a campaign **skips** every point already in the store,
* a campaign interrupted mid-run **resumes** from the completed points
  (at worst the in-flight point is lost -- a torn trailing line is ignored),
* and independent invocations/processes **share** results through the file.

Statistics round-trip bit-identically (``SimulationStats.to_json_dict``),
so results loaded from the store compare equal to freshly simulated ones.
``docs/campaigns.md`` documents the record format and the hash-key
semantics (exactly what invalidates a cached point).  Engine *names* (from
the :mod:`repro.engines` registry) are part of every key payload, which
makes them part of the persistence contract: the built-in names are stable
and ``tests/engines/test_store_keys.py`` pins representative keys
byte-for-byte.

The store is also *verifiable and repairable* (docs/robustness.md): every
appended line carries a checksum over its canonical JSON body, loading
counts (and warns about) corrupt/torn lines instead of silently dropping
them (:attr:`ResultsStore.corrupt_records`), :meth:`ResultsStore.verify`
locates corrupt, torn and duplicate records without touching the file, and
:meth:`ResultsStore.repair` compacts everything salvageable into a clean,
fully-checksummed file (atomic replace, fsync'd, last-wins preserved).
Quarantined sweep points live next to the results in a ``failures.jsonl``
sidecar (:class:`FailureLog`), one JSON record per failed point with its
key, payload, attempt count and captured traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Tuple, Union

from ..testing import faults
from .counters import SimulationStats
from .sampling import SampledSimulationStats

__all__ = [
    "STORE_SCHEMA_VERSION",
    "MissingRunError",
    "StoreCorruptionWarning",
    "StoredRun",
    "ResultsStore",
    "FailureRecord",
    "FailureLog",
    "StoreIssue",
    "StoreVerifyReport",
    "StoreRepairReport",
    "content_key",
    "main",
]

PathLike = Union[str, Path]

#: Bumped whenever the simulator's semantics change in a way that makes old
#: stored results incomparable with fresh ones (every key embeds it, so a
#: bump invalidates the whole store without touching any file).
STORE_SCHEMA_VERSION = 1

#: File name of the append-only record log inside a store directory.
RESULTS_FILE = "results.jsonl"

#: File name of the poison-point quarantine sidecar (docs/robustness.md).
FAILURES_FILE = "failures.jsonl"


class StoreCorruptionWarning(UserWarning):
    """Corrupt or torn record lines were skipped while loading a store."""


def _canonical(payload: Mapping) -> str:
    """The canonical JSON form (sorted keys, no whitespace) of a payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(body: str) -> str:
    """Per-record integrity checksum: 16 hex chars of SHA-256 of the body."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class _ChecksumMismatch(ValueError):
    """A record line parsed as JSON but its bytes were altered."""


def _decode_record_payload(line: str) -> Dict:
    """Parse one record line into its payload dict, validating the checksum.

    Raises ``ValueError`` (including :class:`_ChecksumMismatch`) on any
    corruption.  Records written before the checksum existed (no ``check``
    field) are accepted as-is.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("record line is not a JSON object")
    check = payload.pop("check", None)
    if check is not None and _checksum(_canonical(payload)) != check:
        raise _ChecksumMismatch("checksum mismatch (record bytes were altered)")
    return payload


def _ends_mid_line(path: Path) -> bool:
    """True when ``path`` exists, is non-empty and lacks a final newline."""
    try:
        with path.open("rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"
    except (OSError, ValueError):
        return False


def _append_line(path: Path, line: str, *, data_override: Optional[str] = None) -> None:
    """Durably append one line: O_APPEND, newline-guarded, fsync'd.

    ``data_override`` replaces the written bytes (fault injection uses it to
    model torn/corrupted appends); the newline guard still applies, so a
    previous writer's torn fragment stays isolated on its own line.
    """
    data = data_override if data_override is not None else line + "\n"
    if _ends_mid_line(path):
        data = "\n" + data
    with path.open("a", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


class MissingRunError(KeyError):
    """An offline (store-only) lookup found no record for the requested run."""

    def __init__(self, key: str, payload: Optional[Mapping] = None) -> None:
        self.key = key
        self.payload = dict(payload) if payload is not None else None
        described = ""
        if self.payload:
            interesting = {
                name: self.payload[name]
                for name in ("kind", "workload", "protocol", "scenario", "trace_dir")
                if self.payload.get(name) is not None
            }
            described = f" ({interesting})"
        super().__init__(
            f"no stored result for key {key[:12]}...{described}; "
            "run the campaign first (repro campaign run) or drop offline mode"
        )


def content_key(payload: Mapping) -> str:
    """Hash a JSON-serialisable payload into a stable hex content key.

    The payload is canonicalised (sorted keys, no whitespace) before hashing
    so logically identical payloads -- regardless of insertion order -- map
    to the same key.  Floats use ``repr`` (exact shortest form), so keys are
    stable across processes and Python invocations.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoredRun:
    """One completed simulation as persisted in the results store."""

    key: str                       #: content hash of ``params``
    params: Dict                   #: the hashed, outcome-determining payload
    stats: SimulationStats         #: full counters (bit-identical round-trip)
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0
    #: How many execution attempts produced this result (1 = first try).
    attempts: int = 1
    #: Engine that actually produced the result; ``None`` means the keyed
    #: engine (``params["engine"]``).  Differs only after an
    #: ``on_engine_error="fallback"`` degradation (docs/robustness.md).
    engine_used: Optional[str] = None

    def to_json_dict(self) -> Dict:
        payload = {
            "key": self.key,
            "params": self.params,
            "stats": self.stats.to_json_dict(),
            "total_time_ns": self.total_time_ns,
            "inter_socket_bytes": self.inter_socket_bytes,
            "accesses_executed": self.accesses_executed,
            "wall_clock_s": self.wall_clock_s,
        }
        # Reliability stamps are serialised only when informative, keeping
        # first-try records byte-identical across runs (duplicate appends of
        # the same key stay bit-identical by construction).
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        if self.engine_used is not None and self.engine_used != self.params.get("engine"):
            payload["engine_used"] = self.engine_used
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "StoredRun":
        stats_payload = payload["stats"]
        # Sampled runs carry their per-metric confidence intervals in a
        # "sampling" section; rebuild them as SampledSimulationStats so the
        # estimates survive the store round trip.
        stats_cls = (
            SampledSimulationStats if "sampling" in stats_payload else SimulationStats
        )
        return cls(
            key=payload["key"],
            params=dict(payload["params"]),
            stats=stats_cls.from_json_dict(stats_payload),
            total_time_ns=payload["total_time_ns"],
            inter_socket_bytes=payload["inter_socket_bytes"],
            accesses_executed=payload["accesses_executed"],
            wall_clock_s=payload.get("wall_clock_s", 0.0),
            attempts=payload.get("attempts", 1),
            engine_used=payload.get("engine_used"),
        )


class ResultsStore:
    """Append-only JSONL store of :class:`StoredRun` records.

    ``ResultsStore(path)`` opens (or lazily creates) the store directory;
    records live in ``path/results.jsonl``.  Lookups are served from an
    in-memory index built on first access; :meth:`put` appends one line and
    flushes immediately, so a concurrent reader (or a crashed writer's next
    invocation) sees every completed record.  Duplicate keys are tolerated
    -- the last record wins, and because keys hash the complete simulation
    input, duplicates are bit-identical by construction.

    Appends open the file in ``O_APPEND`` mode per record, so several worker
    processes can write one store concurrently (single-line appends are
    atomic on POSIX for these record sizes); a torn trailing line from a
    killed writer is skipped on load.
    """

    def __init__(self, path: PathLike) -> None:
        self.directory = Path(path)
        self._index: Optional[Dict[str, StoredRun]] = None
        #: Lookup accounting for cache-hit reporting (`repro campaign`/CI).
        self.hits = 0
        self.misses = 0
        #: Corrupt/torn record lines skipped by the last load (never silent:
        #: a non-zero count emits one :class:`StoreCorruptionWarning`).
        self.corrupt_records = 0
        #: ``(line_number, reason)`` for each skipped line of the last load.
        self.corrupt_locations: List[Tuple[int, str]] = []
        self._failure_log: Optional[FailureLog] = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    @property
    def results_path(self) -> Path:
        """The JSONL record log backing this store."""
        return self.directory / RESULTS_FILE

    def _load(self) -> Dict[str, StoredRun]:
        if self._index is None:
            self._index = {}
            self.corrupt_records = 0
            self.corrupt_locations = []
            if self.results_path.exists():
                # errors="replace": invalid UTF-8 bytes (bit rot, partial
                # multi-byte writes) must surface as corrupt *lines* below,
                # not abort the whole load with a UnicodeDecodeError.
                with self.results_path.open(
                    "r", encoding="utf-8", errors="replace"
                ) as handle:
                    for lineno, raw in enumerate(handle, start=1):
                        line = raw.strip()
                        if not line:
                            continue
                        try:
                            record = StoredRun.from_json_dict(
                                _decode_record_payload(line)
                            )
                        except (ValueError, KeyError, TypeError) as exc:
                            # A torn line from an interrupted writer, hand
                            # editing, or bit rot caught by the checksum; the
                            # point simply reruns -- but never silently.
                            self.corrupt_records += 1
                            self.corrupt_locations.append(
                                (lineno, f"{type(exc).__name__}: {exc}")
                            )
                            continue
                        self._index[record.key] = record
            if self.corrupt_records:
                first_line, reason = self.corrupt_locations[0]
                warnings.warn(
                    f"{self.results_path}:{first_line}: skipped "
                    f"{self.corrupt_records} corrupt/torn record line(s) "
                    f"(first: {reason}); the affected points will re-run -- "
                    f"inspect with `repro store verify {self.directory}`, "
                    f"compact with `repro store repair {self.directory}`",
                    StoreCorruptionWarning,
                    stacklevel=3,
                )
        return self._index

    def reload(self) -> None:
        """Drop the in-memory index; the next lookup re-reads the file."""
        self._index = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredRun]:
        """Return the stored record for ``key``, counting hits and misses."""
        record = self._load().get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def __contains__(self, key: str) -> bool:
        return key in self._load()

    def __len__(self) -> int:
        return len(self._load())

    def keys(self) -> List[str]:
        return list(self._load())

    def records(self) -> Iterator[StoredRun]:
        """Iterate over the stored records (last-wins deduplicated)."""
        return iter(self._load().values())

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @staticmethod
    def encode_record(record: StoredRun) -> str:
        """Serialise one record to its canonical, checksummed line (no newline).

        The ``check`` field is the checksum of the canonical JSON body
        *without* it, so any altered byte in the stored line -- even one
        that still parses as valid JSON -- is detected on load and by
        :meth:`verify`.
        """
        payload = record.to_json_dict()
        payload["check"] = _checksum(_canonical(payload))
        return _canonical(payload)

    def put(self, record: StoredRun) -> StoredRun:
        """Append ``record`` to the log and index it (durable immediately)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        line = self.encode_record(record)
        plan = faults.active()
        data_override = None
        if plan is not None:
            # Chaos hooks (docs/robustness.md): an injected OSError models a
            # full disk / revoked handle; a mangled line models a torn or
            # bit-rotted append that verify/repair must catch.
            plan.inject_store_append_fault(record.key)
            mangled = plan.mangle_append(record.key, line + "\n")
            if mangled != line + "\n":
                data_override = mangled
        _append_line(self.results_path, line, data_override=data_override)
        self._load()[record.key] = record
        return record

    def clean(self) -> int:
        """Delete every stored record (and the quarantine sidecar).

        Returns how many stored results were removed.
        """
        removed = len(self._load())
        if self.results_path.exists():
            self.results_path.unlink()
        self.failure_log.clear()
        self._index = {}
        self.hits = 0
        self.misses = 0
        self.corrupt_records = 0
        self.corrupt_locations = []
        return removed

    # ------------------------------------------------------------------
    # Quarantine sidecar
    # ------------------------------------------------------------------

    @property
    def failures_path(self) -> Path:
        """The quarantine sidecar next to the record log."""
        return self.directory / FAILURES_FILE

    @property
    def failure_log(self) -> "FailureLog":
        """The poison-point quarantine (``failures.jsonl``) of this store."""
        if self._failure_log is None:
            self._failure_log = FailureLog(self.failures_path)
        return self._failure_log

    # ------------------------------------------------------------------
    # Integrity: verify and repair
    # ------------------------------------------------------------------

    def _scan(self) -> Tuple["StoreVerifyReport", Dict[str, StoredRun]]:
        """One pass over the raw log: integrity report + salvageable records."""
        report = StoreVerifyReport(path=self.results_path)
        records: Dict[str, StoredRun] = {}
        if not self.results_path.exists():
            return report, records
        text = self.results_path.read_text(encoding="utf-8", errors="replace")
        ends_with_newline = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        key_counts: Dict[str, int] = {}
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            report.total_lines += 1
            try:
                payload = _decode_record_payload(line)
                if '"check":' not in line:
                    report.unchecksummed += 1
                record = StoredRun.from_json_dict(payload)
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines) and not ends_with_newline:
                    kind = "torn"       # an interrupted writer's final line
                elif isinstance(exc, _ChecksumMismatch):
                    kind = "checksum"   # parses, but the bytes were altered
                else:
                    kind = "unparsable"
                report.issues.append(
                    StoreIssue(lineno, kind, f"{type(exc).__name__}: {exc}")
                )
                continue
            report.valid_records += 1
            key_counts[record.key] = key_counts.get(record.key, 0) + 1
            records[record.key] = record    # later lines win, as in _load
        report.unique_keys = len(key_counts)
        report.duplicate_keys = {
            key: count for key, count in key_counts.items() if count > 1
        }
        return report, records

    def verify(self) -> "StoreVerifyReport":
        """Scan the log and report corrupt, torn and duplicate records.

        Pure read: the file, the in-memory index and the lookup counters are
        all left untouched.  ``repro store verify`` prints the report and
        exits non-zero unless :attr:`StoreVerifyReport.clean`.
        """
        report, _records = self._scan()
        return report

    def repair(self) -> "StoreRepairReport":
        """Compact the log to a clean, fully-checksummed file.

        Every salvageable record is rewritten in file order with duplicates
        collapsed to their last occurrence (exactly the last-wins view reads
        already had), corrupt/torn lines are dropped, and legacy records
        gain checksums.  The new file is written to a temp path, fsync'd and
        atomically renamed over the log, so a crash mid-repair leaves either
        the old file or the new one -- never a mix.
        """
        report, records = self._scan()
        if not self.results_path.exists():
            return StoreRepairReport(path=self.results_path)
        tmp_path = self.results_path.with_name(RESULTS_FILE + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in records.values():
                handle.write(self.encode_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.results_path)
        try:
            directory_fd = os.open(self.directory, os.O_RDONLY)
            os.fsync(directory_fd)
            os.close(directory_fd)
        except OSError:  # pragma: no cover - directory fsync is best-effort
            pass
        self._index = None      # the next lookup re-reads the clean file
        return StoreRepairReport(
            path=self.results_path,
            kept=len(records),
            dropped_corrupt=len(report.issues),
            collapsed_duplicates=sum(
                count - 1 for count in report.duplicate_keys.values()
            ),
        )


# ----------------------------------------------------------------------
# Integrity reports
# ----------------------------------------------------------------------


@dataclass
class StoreIssue:
    """One bad line found by :meth:`ResultsStore.verify`."""

    lineno: int
    #: ``torn`` (interrupted final write), ``checksum`` (altered bytes that
    #: still parse) or ``unparsable`` (anything else).
    kind: str
    detail: str


@dataclass
class StoreVerifyReport:
    """What :meth:`ResultsStore.verify` found in one scan of the log."""

    path: Path
    total_lines: int = 0
    valid_records: int = 0
    unique_keys: int = 0
    #: Legacy records written before per-record checksums existed.
    unchecksummed: int = 0
    issues: List[StoreIssue] = field(default_factory=list)
    #: ``key -> occurrence count`` for keys appearing more than once.
    duplicate_keys: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no corrupt/torn lines were found (duplicates are
        normal operation: concurrent writers, last record wins)."""
        return not self.issues

    def format(self) -> str:
        lines = [
            f"store {self.path}: {self.total_lines} record line(s), "
            f"{self.valid_records} valid, {self.unique_keys} unique key(s)"
        ]
        if self.duplicate_keys:
            duplicates = ", ".join(
                f"{key[:12]}... x{count}"
                for key, count in sorted(self.duplicate_keys.items())
            )
            lines.append(
                f"  {len(self.duplicate_keys)} duplicated key(s) "
                f"(last record wins): {duplicates}"
            )
        if self.unchecksummed:
            lines.append(
                f"  {self.unchecksummed} legacy record(s) without a checksum "
                f"(repair adds them)"
            )
        for issue in self.issues:
            lines.append(f"  line {issue.lineno}: {issue.kind}: {issue.detail}")
        lines.append(
            "verdict: clean" if self.clean
            else f"verdict: CORRUPT ({len(self.issues)} bad line(s); "
                 f"run `repro store repair`)"
        )
        return "\n".join(lines)


@dataclass
class StoreRepairReport:
    """What :meth:`ResultsStore.repair` rewrote."""

    path: Path
    kept: int = 0
    dropped_corrupt: int = 0
    collapsed_duplicates: int = 0

    def format(self) -> str:
        return (
            f"repaired {self.path}: kept {self.kept} record(s), dropped "
            f"{self.dropped_corrupt} corrupt/torn line(s), collapsed "
            f"{self.collapsed_duplicates} duplicate(s)"
        )


# ----------------------------------------------------------------------
# Quarantine sidecar (failures.jsonl)
# ----------------------------------------------------------------------


@dataclass
class FailureRecord:
    """One quarantined sweep point (docs/robustness.md documents the schema)."""

    key: str                #: store content key of the failed point
    params: Dict            #: the point's outcome-determining payload
    attempts: int           #: how many attempts were made before giving up
    error: str              #: one-line description of the final failure
    traceback: str = ""     #: captured worker traceback of the final attempt
    engine: str = ""        #: engine of the final attempt
    timestamp: float = 0.0  #: quarantine wall-clock time (time.time())

    def to_json_dict(self) -> Dict:
        return {
            "key": self.key,
            "params": self.params,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
            "engine": self.engine,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "FailureRecord":
        return cls(
            key=payload["key"],
            params=dict(payload.get("params") or {}),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            engine=payload.get("engine", ""),
            timestamp=payload.get("timestamp", 0.0),
        )


class FailureLog:
    """Append-only JSONL sidecar of quarantined points.

    Same durability discipline as the results log (O_APPEND, newline guard,
    fsync per record), but *advisory* semantics: a quarantined point is a
    report, not a skip-list entry -- the next campaign invocation retries
    it, because the faults the quarantine exists for are transient.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def append(self, record: FailureRecord) -> FailureRecord:
        if not record.timestamp:
            record.timestamp = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _append_line(self.path, _canonical(record.to_json_dict()))
        return record

    def records(self) -> List[FailureRecord]:
        """Every parseable quarantine record, in append order."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(FailureRecord.from_json_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue        # torn final line from a killed writer
        return records

    def __len__(self) -> int:
        return len(self.records())

    def clear(self) -> int:
        """Delete the sidecar; returns how many records it held."""
        removed = len(self.records())
        if self.path.exists():
            self.path.unlink()
        return removed


# ----------------------------------------------------------------------
# CLI (`repro store verify|repair`)
# ----------------------------------------------------------------------


def build_parser():
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Verify or repair a results store (docs/robustness.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    verify_parser = sub.add_parser(
        "verify", help="scan for corrupt/torn/duplicate records (read-only)"
    )
    verify_parser.add_argument("store", help="results-store directory")
    repair_parser = sub.add_parser(
        "repair", help="compact to a clean, checksummed file (atomic replace)"
    )
    repair_parser.add_argument("store", help="results-store directory")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    store = ResultsStore(args.store)
    if args.command == "verify":
        report = store.verify()
        print(report.format())
        return 0 if report.clean else 1
    if args.command == "repair":
        repair_report = store.repair()
        print(repair_report.format())
        after = store.verify()
        print(after.format())
        return 0 if after.clean else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via `repro store`
    import sys

    sys.exit(main(sys.argv[1:]))
