"""Persistent, sharded, append-only store of simulation results.

Every completed simulation -- a :class:`~repro.experiments.runner.SweepPoint`
of a campaign grid or an :class:`~repro.experiments.common.ExperimentContext`
run behind a figure module -- can be written to a :class:`ResultsStore`,
keyed by a content hash of everything that determines the simulation's
outcome (workload, machine configuration, engine, settings, schema
version).  Because records are appended as soon as each point completes:

* re-running a campaign **skips** every point already in the store,
* a campaign interrupted mid-run **resumes** from the completed points
  (at worst the in-flight point is lost -- a torn trailing line is ignored),
* and independent invocations/processes **share** results through the files.

Layout (docs/serving.md documents it field by field).  A store directory
holds a ``store.json`` meta file and a ``shards/`` directory with one JSONL
file per key prefix -- 16 shards on ``key[:1]`` for the hex content keys,
plus an ``x`` overflow shard for non-hex keys::

    <store-dir>/store.json          {"layout": "sharded/v1", ...}
    <store-dir>/shards/0.jsonl ... f.jsonl   (one record per line)
    <store-dir>/shards/<name>.lock  (per-shard advisory writer locks)
    <store-dir>/failures.jsonl      (quarantine sidecar, docs/robustness.md)

Appends take a per-shard advisory ``flock``, so several writer *processes*
-- campaign workers, ``repro serve`` jobs, concurrent invocations -- can
append to one store safely; readers never block.  Lookups load one shard's
in-memory index at a time (built once per open), so a ``get`` touches 1/16
of the store and :meth:`ResultsStore.known_keys` answers *is this point
done?* from a raw key scan without parsing any record body.

Stores written before the sharded layout -- a bare ``results.jsonl`` in the
directory -- open **read-only** through a compatibility path: every lookup
works, but :meth:`ResultsStore.put` raises :class:`LegacyStoreError` until
``repro store migrate`` converts the store in place (atomically, preserving
every record line byte for byte -- keys and bodies are unchanged, only the
file they live in moves).

Statistics round-trip bit-identically (``SimulationStats.to_json_dict``),
so results loaded from the store compare equal to freshly simulated ones.
``docs/campaigns.md`` documents the record format and the hash-key
semantics (exactly what invalidates a cached point).  Engine *names* (from
the :mod:`repro.engines` registry) are part of every key payload, which
makes them part of the persistence contract: the built-in names are stable
and ``tests/engines/test_store_keys.py`` pins representative keys
byte-for-byte.

The store is also *verifiable and repairable* (docs/robustness.md): every
appended line carries a checksum over its canonical JSON body, loading
counts (and warns about) corrupt/torn lines instead of silently dropping
them (:attr:`ResultsStore.corrupt_records`), :meth:`ResultsStore.verify`
locates corrupt, torn and duplicate records without touching the files, and
:meth:`ResultsStore.compact` rewrites each shard to a clean, fully
checksummed file (atomic replace, fsync'd, last-wins preserved) --
:meth:`ResultsStore.repair` is the same operation and also covers legacy
single-file stores.  Quarantined sweep points live next to the results in a
``failures.jsonl`` sidecar (:class:`FailureLog`), one JSON record per
failed point with its key, payload, attempt count and captured traceback.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple, Union

from ..testing import faults
from .counters import SimulationStats
from .sampling import SampledSimulationStats

__all__ = [
    "STORE_SCHEMA_VERSION",
    "STORE_LAYOUT",
    "NUM_SHARDS",
    "LegacyStoreError",
    "MissingRunError",
    "StoreCorruptionWarning",
    "StoredRun",
    "ResultsStore",
    "FailureRecord",
    "FailureLog",
    "StoreIssue",
    "StoreVerifyReport",
    "StoreRepairReport",
    "StoreMigrateReport",
    "shard_of",
    "content_key",
    "main",
]

PathLike = Union[str, Path]

#: Bumped whenever the simulator's semantics change in a way that makes old
#: stored results incomparable with fresh ones (every key embeds it, so a
#: bump invalidates the whole store without touching any file).
STORE_SCHEMA_VERSION = 1

#: File name of the legacy (pre-shard) single-file record log.
RESULTS_FILE = "results.jsonl"

#: File name of the poison-point quarantine sidecar (docs/robustness.md).
FAILURES_FILE = "failures.jsonl"

#: Meta file marking a sharded store directory (its presence is the commit
#: point of ``repro store migrate``).
META_FILE = "store.json"

#: Directory of per-prefix shard files inside a sharded store.
SHARDS_DIR = "shards"

#: Layout tag written to the meta file.
STORE_LAYOUT = "sharded/v1"

#: Hex content keys spread over 16 shards on their first character;
#: anything else (tests, hand-made keys) lands in the ``x`` overflow shard.
NUM_SHARDS = 16
_HEX_SHARDS = frozenset("0123456789abcdef")
OVERFLOW_SHARD = "x"

#: Raw-line key extraction for the no-parse index path: matches the ``key``
#: field of a (canonical or hand-written) record line without decoding the
#: record body, so an index scan survives bodies that are torn or corrupt.
_KEY_RE = re.compile(r'"key"\s*:\s*"([^"]*)"')


def shard_of(key: str) -> str:
    """The shard name a key lives in: ``key[:1]`` for hex keys, else ``x``."""
    prefix = key[:1].lower()
    return prefix if prefix in _HEX_SHARDS else OVERFLOW_SHARD


class StoreCorruptionWarning(UserWarning):
    """Corrupt or torn record lines were skipped while loading a store."""


class LegacyStoreError(RuntimeError):
    """A write was attempted on a read-only legacy single-file store."""

    def __init__(self, directory: Path) -> None:
        super().__init__(
            f"store {directory} uses the legacy single-file layout "
            f"({RESULTS_FILE}) and opens read-only; convert it with "
            f"`repro store migrate --store {directory}` (atomic, in place, "
            f"record bytes unchanged -- docs/serving.md)"
        )


def _canonical(payload: Mapping) -> str:
    """The canonical JSON form (sorted keys, no whitespace) of a payload."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _checksum(body: str) -> str:
    """Per-record integrity checksum: 16 hex chars of SHA-256 of the body."""
    return hashlib.sha256(body.encode("utf-8")).hexdigest()[:16]


class _ChecksumMismatch(ValueError):
    """A record line parsed as JSON but its bytes were altered."""


def _decode_record_payload(line: str) -> Dict:
    """Parse one record line into its payload dict, validating the checksum.

    Raises ``ValueError`` (including :class:`_ChecksumMismatch`) on any
    corruption.  Records written before the checksum existed (no ``check``
    field) are accepted as-is.
    """
    payload = json.loads(line)
    if not isinstance(payload, dict):
        raise ValueError("record line is not a JSON object")
    check = payload.pop("check", None)
    if check is not None and _checksum(_canonical(payload)) != check:
        raise _ChecksumMismatch("checksum mismatch (record bytes were altered)")
    return payload


def _ends_mid_line(path: Path) -> bool:
    """True when ``path`` exists, is non-empty and lacks a final newline."""
    try:
        with path.open("rb") as handle:
            handle.seek(-1, os.SEEK_END)
            return handle.read(1) != b"\n"
    except (OSError, ValueError):
        return False


def _append_line(path: Path, line: str, *, data_override: Optional[str] = None) -> None:
    """Durably append one line: O_APPEND, newline-guarded, fsync'd.

    ``data_override`` replaces the written bytes (fault injection uses it to
    model torn/corrupted appends); the newline guard still applies, so a
    previous writer's torn fragment stays isolated on its own line.
    """
    data = data_override if data_override is not None else line + "\n"
    if _ends_mid_line(path):
        data = "\n" + data
    with path.open("a", encoding="utf-8") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())


@contextmanager
def _file_lock(path: Path):
    """Advisory exclusive lock on ``path`` (created on demand).

    Serialises concurrent *writers* of one shard across processes; readers
    never take it.  On platforms without ``fcntl`` the lock degrades to a
    no-op -- appends are still O_APPEND-atomic for these record sizes, only
    the newline guard loses its cross-process exclusivity.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX fallback
        yield
        return
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class MissingRunError(KeyError):
    """An offline (store-only) lookup found no record for the requested run."""

    def __init__(self, key: str, payload: Optional[Mapping] = None) -> None:
        self.key = key
        self.payload = dict(payload) if payload is not None else None
        described = ""
        if self.payload:
            interesting = {
                name: self.payload[name]
                for name in ("kind", "workload", "protocol", "scenario", "trace_dir")
                if self.payload.get(name) is not None
            }
            described = f" ({interesting})"
        super().__init__(
            f"no stored result for key {key[:12]}...{described}; "
            "run the campaign first (repro campaign run) or drop offline mode"
        )


def content_key(payload: Mapping) -> str:
    """Hash a JSON-serialisable payload into a stable hex content key.

    The payload is canonicalised (sorted keys, no whitespace) before hashing
    so logically identical payloads -- regardless of insertion order -- map
    to the same key.  Floats use ``repr`` (exact shortest form), so keys are
    stable across processes and Python invocations.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoredRun:
    """One completed simulation as persisted in the results store."""

    key: str                       #: content hash of ``params``
    params: Dict                   #: the hashed, outcome-determining payload
    stats: SimulationStats         #: full counters (bit-identical round-trip)
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0
    #: How many execution attempts produced this result (1 = first try).
    attempts: int = 1
    #: Engine that actually produced the result; ``None`` means the keyed
    #: engine (``params["engine"]``).  Differs only after an
    #: ``on_engine_error="fallback"`` degradation (docs/robustness.md).
    engine_used: Optional[str] = None

    def to_json_dict(self) -> Dict:
        payload = {
            "key": self.key,
            "params": self.params,
            "stats": self.stats.to_json_dict(),
            "total_time_ns": self.total_time_ns,
            "inter_socket_bytes": self.inter_socket_bytes,
            "accesses_executed": self.accesses_executed,
            "wall_clock_s": self.wall_clock_s,
        }
        # Reliability stamps are serialised only when informative, keeping
        # first-try records byte-identical across runs (duplicate appends of
        # the same key stay bit-identical by construction).
        if self.attempts != 1:
            payload["attempts"] = self.attempts
        if self.engine_used is not None and self.engine_used != self.params.get("engine"):
            payload["engine_used"] = self.engine_used
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "StoredRun":
        stats_payload = payload["stats"]
        # Sampled runs carry their per-metric confidence intervals in a
        # "sampling" section; rebuild them as SampledSimulationStats so the
        # estimates survive the store round trip.
        stats_cls = (
            SampledSimulationStats if "sampling" in stats_payload else SimulationStats
        )
        return cls(
            key=payload["key"],
            params=dict(payload["params"]),
            stats=stats_cls.from_json_dict(stats_payload),
            total_time_ns=payload["total_time_ns"],
            inter_socket_bytes=payload["inter_socket_bytes"],
            accesses_executed=payload["accesses_executed"],
            wall_clock_s=payload.get("wall_clock_s", 0.0),
            attempts=payload.get("attempts", 1),
            engine_used=payload.get("engine_used"),
        )


class ResultsStore:
    """Sharded, append-only JSONL store of :class:`StoredRun` records.

    ``ResultsStore(path)`` opens (or lazily creates) the store directory.
    New stores use the sharded layout (module docstring); a directory
    holding a bare legacy ``results.jsonl`` opens read-only through the
    compatibility path until :meth:`migrate` converts it.

    Lookups are served from per-shard in-memory indexes built on first
    access to each shard; :meth:`put` appends one line under the shard's
    advisory writer lock and flushes immediately, so a concurrent reader
    (or a crashed writer's next invocation) sees every completed record.
    Duplicate keys are tolerated -- the last record wins, and because keys
    hash the complete simulation input, duplicates are bit-identical by
    construction.
    """

    def __init__(self, path: PathLike) -> None:
        self.directory = Path(path)
        #: Lazily resolved layout: ``"sharded"`` or ``"legacy"``.
        self._layout: Optional[str] = None
        #: Per-shard parsed indexes (legacy stores use the single key "").
        self._shard_index: Dict[str, Dict[str, StoredRun]] = {}
        #: Lookup accounting for cache-hit reporting (`repro campaign`/CI).
        self.hits = 0
        self.misses = 0
        #: Corrupt/torn record lines skipped by loads since open (never
        #: silent: each affected file emits one :class:`StoreCorruptionWarning`).
        self.corrupt_records = 0
        #: ``(line_number, reason)`` per skipped line, per loaded file.
        self.corrupt_locations: List[Tuple[int, str]] = []
        self._failure_log: Optional[FailureLog] = None

    # ------------------------------------------------------------------
    # Layout and paths
    # ------------------------------------------------------------------

    @property
    def results_path(self) -> Path:
        """The *legacy* single-file record log (compatibility reads only)."""
        return self.directory / RESULTS_FILE

    @property
    def meta_path(self) -> Path:
        return self.directory / META_FILE

    @property
    def shards_path(self) -> Path:
        return self.directory / SHARDS_DIR

    @property
    def layout(self) -> str:
        """``"sharded"`` (the native layout) or ``"legacy"`` (read-only).

        A directory containing ``store.json`` is sharded; one containing
        only a bare ``results.jsonl`` is legacy.  A fresh/empty directory
        becomes sharded on first write.  The meta file wins when both exist
        (a migration that crashed after its commit point).
        """
        if self._layout is None:
            if self.meta_path.exists():
                self._layout = "sharded"
            elif self.results_path.exists():
                self._layout = "legacy"
            else:
                self._layout = "sharded"
        return self._layout

    def shard_path(self, key: str) -> Path:
        """The shard file holding ``key`` (sharded layout)."""
        return self.shards_path / f"{shard_of(key)}.jsonl"

    def _shard_file(self, name: str) -> Path:
        return self.shards_path / f"{name}.jsonl"

    def _shard_lock(self, name: str) -> Path:
        return self.shards_path / f"{name}.lock"

    def shard_paths(self) -> List[Path]:
        """Existing shard files, in deterministic (shard-name) order."""
        if not self.shards_path.is_dir():
            return []
        return sorted(self.shards_path.glob("*.jsonl"))

    def _data_files(self) -> List[Path]:
        """Every record file of the store, in deterministic order."""
        if self.layout == "legacy":
            return [self.results_path] if self.results_path.exists() else []
        return self.shard_paths()

    def _ensure_sharded(self) -> None:
        """Create the directory skeleton + meta file of a writable store."""
        if self.layout == "legacy":
            raise LegacyStoreError(self.directory)
        self.shards_path.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            self._write_meta()

    def _write_meta(self) -> None:
        """Atomically (re)write the layout meta file."""
        meta = {
            "layout": STORE_LAYOUT,
            "shards": NUM_SHARDS,
            "shard_by": "key[:1]",
            "schema": STORE_SCHEMA_VERSION,
        }
        # Per-process tmp name: concurrent writers may all create the meta
        # file on first put; each renames its own tmp (identical content),
        # so whichever replace lands last is still correct.
        tmp = self.meta_path.with_name(f"{META_FILE}.{os.getpid()}.tmp")
        tmp.write_text(_canonical(meta) + "\n", encoding="utf-8")
        os.replace(tmp, self.meta_path)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _load_file(self, path: Path) -> Dict[str, StoredRun]:
        """Parse one record file into a last-wins index, counting corruption."""
        index: Dict[str, StoredRun] = {}
        corrupt = 0
        first_issue: Optional[Tuple[int, str]] = None
        if path.exists():
            # errors="replace": invalid UTF-8 bytes (bit rot, partial
            # multi-byte writes) must surface as corrupt *lines* below,
            # not abort the whole load with a UnicodeDecodeError.
            with path.open("r", encoding="utf-8", errors="replace") as handle:
                for lineno, raw in enumerate(handle, start=1):
                    line = raw.strip()
                    if not line:
                        continue
                    try:
                        record = StoredRun.from_json_dict(
                            _decode_record_payload(line)
                        )
                    except (ValueError, KeyError, TypeError) as exc:
                        # A torn line from an interrupted writer, hand
                        # editing, or bit rot caught by the checksum; the
                        # point simply reruns -- but never silently.
                        corrupt += 1
                        reason = f"{type(exc).__name__}: {exc}"
                        self.corrupt_locations.append((lineno, reason))
                        if first_issue is None:
                            first_issue = (lineno, reason)
                        continue
                    index[record.key] = record
        if corrupt:
            self.corrupt_records += corrupt
            first_line, reason = first_issue
            warnings.warn(
                f"{path}:{first_line}: skipped {corrupt} corrupt/torn "
                f"record line(s) (first: {reason}); the affected points "
                f"will re-run -- inspect with `repro store verify "
                f"--store {self.directory}`, compact with `repro store "
                f"compact --store {self.directory}`",
                StoreCorruptionWarning,
                stacklevel=4,
            )
        return index

    def _shard_of_key(self, key: str) -> str:
        return "" if self.layout == "legacy" else shard_of(key)

    def _index_for(self, shard: str) -> Dict[str, StoredRun]:
        """The parsed index of one shard (``""`` = the legacy file)."""
        index = self._shard_index.get(shard)
        if index is None:
            path = self.results_path if shard == "" else self._shard_file(shard)
            index = self._load_file(path)
            self._shard_index[shard] = index
        return index

    def _load_all(self) -> Dict[str, StoredRun]:
        """Every shard's index folded into one mapping (loads all shards)."""
        merged: Dict[str, StoredRun] = {}
        if self.layout == "legacy":
            return dict(self._index_for(""))
        for path in self.shard_paths():
            merged.update(self._index_for(path.stem))
        return merged

    def reload(self) -> None:
        """Drop the in-memory indexes; the next lookup re-reads the files."""
        self._shard_index = {}
        self._layout = None
        self.corrupt_records = 0
        self.corrupt_locations = []

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[StoredRun]:
        """Return the stored record for ``key``, counting hits and misses.

        Only the shard holding ``key`` is read and indexed, so a lookup
        touches ~1/16 of a sharded store.
        """
        record = self._index_for(self._shard_of_key(key)).get(key)
        if record is None:
            self.misses += 1
        else:
            self.hits += 1
        return record

    def __contains__(self, key: str) -> bool:
        return key in self._index_for(self._shard_of_key(key))

    def __len__(self) -> int:
        return len(self._load_all())

    def keys(self) -> List[str]:
        return list(self._load_all())

    def records(self) -> Iterator[StoredRun]:
        """Iterate over the stored records (last-wins deduplicated).

        Shards are indexed (and cached) one at a time, in shard order.
        """
        if self.layout == "legacy":
            yield from self._index_for("").values()
            return
        for path in self.shard_paths():
            yield from self._index_for(path.stem).values()

    def iter_records(self) -> Iterator[StoredRun]:
        """Stream the stored records without caching any shard index.

        Peak memory is one shard's records (plus the record being yielded),
        so thin clients (``repro report``, the serving daemon's NDJSON
        endpoint) can walk stores far larger than RAM-per-shard would
        otherwise allow.  Last-wins semantics match :meth:`records`.
        """
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StoreCorruptionWarning)
            scratch = ResultsStore(self.directory)
            for path in scratch._data_files():
                shard = "" if scratch.layout == "legacy" else path.stem
                yield from scratch._index_for(shard).values()
                scratch._shard_index.pop(shard, None)

    def known_keys(self) -> Set[str]:
        """Every key present in the store, from a raw scan -- no body parse.

        This is the shard *index* view: a record whose body is torn or
        corrupt but whose ``"key"`` field survives still counts (the point
        shows as done in ``repro campaign status``; an actual :meth:`get`
        of it would miss and the point would re-run).  Built by a regex
        scan over the raw lines, so it never constructs a
        :class:`StoredRun` -- ``tests/experiments/test_status_index.py``
        pins that.
        """
        keys: Set[str] = set()
        for path in self._data_files():
            try:
                with path.open("r", encoding="utf-8", errors="replace") as handle:
                    for line in handle:
                        match = _KEY_RE.search(line)
                        if match is not None:
                            keys.add(match.group(1))
            except OSError:
                continue
        return keys

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    @staticmethod
    def encode_record(record: StoredRun) -> str:
        """Serialise one record to its canonical, checksummed line (no newline).

        The ``check`` field is the checksum of the canonical JSON body
        *without* it, so any altered byte in the stored line -- even one
        that still parses as valid JSON -- is detected on load and by
        :meth:`verify`.
        """
        payload = record.to_json_dict()
        payload["check"] = _checksum(_canonical(payload))
        return _canonical(payload)

    def put(self, record: StoredRun) -> StoredRun:
        """Append ``record`` to its shard and index it (durable immediately).

        The append holds the shard's advisory writer lock, so concurrent
        writer processes interleave whole lines, never bytes.  Raises
        :class:`LegacyStoreError` on a read-only legacy store.
        """
        self._ensure_sharded()
        shard = shard_of(record.key)
        line = self.encode_record(record)
        plan = faults.active()
        data_override = None
        if plan is not None:
            # Chaos hooks (docs/robustness.md): an injected OSError models a
            # full disk / revoked handle; a mangled line models a torn or
            # bit-rotted append that verify/repair must catch.
            plan.inject_store_append_fault(record.key)
            mangled = plan.mangle_append(record.key, line + "\n")
            if mangled != line + "\n":
                data_override = mangled
        with _file_lock(self._shard_lock(shard)):
            _append_line(self._shard_file(shard), line, data_override=data_override)
        cached = self._shard_index.get(shard)
        if cached is not None:
            cached[record.key] = record
        return record

    def clean(self) -> int:
        """Delete every stored record (and the quarantine sidecar).

        Returns how many stored results were removed.
        """
        removed = len(self._load_all())
        if self.layout == "legacy":
            if self.results_path.exists():
                self.results_path.unlink()
        else:
            for path in self.shard_paths():
                path.unlink()
        self.failure_log.clear()
        self._shard_index = {}
        self.hits = 0
        self.misses = 0
        self.corrupt_records = 0
        self.corrupt_locations = []
        return removed

    # ------------------------------------------------------------------
    # Quarantine sidecar
    # ------------------------------------------------------------------

    @property
    def failures_path(self) -> Path:
        """The quarantine sidecar next to the record files."""
        return self.directory / FAILURES_FILE

    @property
    def failure_log(self) -> "FailureLog":
        """The poison-point quarantine (``failures.jsonl``) of this store."""
        if self._failure_log is None:
            self._failure_log = FailureLog(self.failures_path)
        return self._failure_log

    # ------------------------------------------------------------------
    # Integrity: verify, compact (repair), migrate
    # ------------------------------------------------------------------

    def _scan_file(
        self, path: Path, report: "StoreVerifyReport",
        key_counts: Dict[str, int],
    ) -> Dict[str, StoredRun]:
        """One pass over one raw log file: fold into ``report``, return records."""
        records: Dict[str, StoredRun] = {}
        if not path.exists():
            return records
        text = path.read_text(encoding="utf-8", errors="replace")
        ends_with_newline = text.endswith("\n")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            report.total_lines += 1
            try:
                payload = _decode_record_payload(line)
                if '"check":' not in line:
                    report.unchecksummed += 1
                record = StoredRun.from_json_dict(payload)
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines) and not ends_with_newline:
                    kind = "torn"       # an interrupted writer's final line
                elif isinstance(exc, _ChecksumMismatch):
                    kind = "checksum"   # parses, but the bytes were altered
                else:
                    kind = "unparsable"
                report.issues.append(
                    StoreIssue(lineno, kind, f"{type(exc).__name__}: {exc}",
                               path=path)
                )
                continue
            report.valid_records += 1
            key_counts[record.key] = key_counts.get(record.key, 0) + 1
            records[record.key] = record    # later lines win, as in loads
        return records

    def _scan(self) -> Tuple["StoreVerifyReport", Dict[Path, Dict[str, StoredRun]]]:
        """Scan every record file: integrity report + per-file salvage."""
        report = StoreVerifyReport(path=self.directory)
        key_counts: Dict[str, int] = {}
        per_file: Dict[Path, Dict[str, StoredRun]] = {}
        for path in self._data_files():
            per_file[path] = self._scan_file(path, report, key_counts)
        report.files = len(per_file)
        report.unique_keys = len(key_counts)
        report.duplicate_keys = {
            key: count for key, count in key_counts.items() if count > 1
        }
        return report, per_file

    def verify(self) -> "StoreVerifyReport":
        """Scan the record files and report corrupt, torn and duplicates.

        Pure read: the files, the in-memory indexes and the lookup counters
        are all left untouched.  ``repro store verify`` prints the report
        and exits non-zero unless :attr:`StoreVerifyReport.clean`.
        """
        report, _per_file = self._scan()
        return report

    def _rewrite_file(self, path: Path, records: Dict[str, StoredRun]) -> None:
        """Atomically replace ``path`` with the clean encoding of ``records``."""
        tmp_path = path.with_name(path.name + ".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            for record in records.values():
                handle.write(self.encode_record(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        try:
            directory_fd = os.open(path.parent, os.O_RDONLY)
            os.fsync(directory_fd)
            os.close(directory_fd)
        except OSError:  # pragma: no cover - directory fsync is best-effort
            pass

    def compact(self) -> "StoreRepairReport":
        """Compact every record file to a clean, fully-checksummed state.

        Per file (shard by shard, each under its writer lock), every
        salvageable record is rewritten in file order with duplicates
        collapsed to their last occurrence (exactly the last-wins view
        reads already had), corrupt/torn lines are dropped, and legacy
        records gain checksums.  Each file is written to a temp path,
        fsync'd and atomically renamed, so a crash mid-compaction leaves
        every shard either old or new -- never a mix.

        Works on both layouts; on a legacy store it compacts the single
        file in place (the pre-shard ``repair`` behaviour) without
        converting the layout -- use :meth:`migrate` for that.
        """
        report, per_file = self._scan()
        out = StoreRepairReport(
            path=self.directory,
            dropped_corrupt=len(report.issues),
            collapsed_duplicates=sum(
                count - 1 for count in report.duplicate_keys.values()
            ),
        )
        for path, records in per_file.items():
            out.kept += len(records)
            if self.layout == "legacy":
                self._rewrite_file(path, records)
            else:
                with _file_lock(self._shard_lock(path.stem)):
                    self._rewrite_file(path, records)
        self._shard_index = {}      # the next lookup re-reads the clean files
        self.corrupt_records = 0
        self.corrupt_locations = []
        return out

    def repair(self) -> "StoreRepairReport":
        """Alias of :meth:`compact` (the historical name; docs/robustness.md)."""
        return self.compact()

    def migrate(self) -> "StoreMigrateReport":
        """Convert a legacy single-file store to the sharded layout, in place.

        Every *valid* record line of ``results.jsonl`` is copied to its
        shard file **byte for byte** (keys, bodies and duplicate order all
        preserved -- a migrated store serves bit-identical records);
        corrupt/torn lines are dropped and counted.  The shard tree is
        built under a temp name, fsync'd, renamed into place, and the
        ``store.json`` meta file is the atomic commit point: a crash
        leaves either a fully legacy or a fully sharded store.  Idempotent
        on an already-sharded store (it only clears a leftover legacy
        file).
        """
        report = StoreMigrateReport(path=self.directory)
        if self.layout == "sharded":
            # Already converted (or a migration crashed after its commit
            # point): just clear any stale legacy remnant.
            if self.results_path.exists():
                self.results_path.unlink()
                report.removed_legacy = True
            return report

        buckets: Dict[str, List[str]] = {}
        text = self.results_path.read_text(encoding="utf-8", errors="replace")
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for line in lines:
            if not line.strip():
                continue
            try:
                payload = _decode_record_payload(line)
                key = payload["key"]
            except (ValueError, KeyError, TypeError):
                report.dropped_corrupt += 1
                continue
            buckets.setdefault(shard_of(str(key)), []).append(line)
            report.migrated += 1

        tmp_dir = self.directory / (SHARDS_DIR + ".tmp")
        if tmp_dir.exists():        # leftovers of an interrupted migration
            for stale in tmp_dir.iterdir():
                stale.unlink()
            tmp_dir.rmdir()
        tmp_dir.mkdir(parents=True)
        for shard, shard_lines in sorted(buckets.items()):
            shard_file = tmp_dir / f"{shard}.jsonl"
            with shard_file.open("w", encoding="utf-8") as handle:
                handle.write("\n".join(shard_lines) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        if self.shards_path.exists():   # stale tree from a pre-commit crash
            for stale in self.shards_path.iterdir():
                stale.unlink()
            self.shards_path.rmdir()
        os.rename(tmp_dir, self.shards_path)
        self._write_meta()              # commit point: layout flips here
        self.results_path.unlink()
        report.removed_legacy = True
        report.shards = len(buckets)
        self.reload()
        return report


# ----------------------------------------------------------------------
# Integrity reports
# ----------------------------------------------------------------------


@dataclass
class StoreIssue:
    """One bad line found by :meth:`ResultsStore.verify`."""

    lineno: int
    #: ``torn`` (interrupted final write), ``checksum`` (altered bytes that
    #: still parse) or ``unparsable`` (anything else).
    kind: str
    detail: str
    #: The record file the line lives in (a shard file, or the legacy log).
    path: Optional[Path] = None


@dataclass
class StoreVerifyReport:
    """What :meth:`ResultsStore.verify` found in one scan of the store."""

    path: Path
    #: Record files scanned (shard files, or 1 for a legacy store).
    files: int = 0
    total_lines: int = 0
    valid_records: int = 0
    unique_keys: int = 0
    #: Legacy records written before per-record checksums existed.
    unchecksummed: int = 0
    issues: List[StoreIssue] = field(default_factory=list)
    #: ``key -> occurrence count`` for keys appearing more than once.
    duplicate_keys: Dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when no corrupt/torn lines were found (duplicates are
        normal operation: concurrent writers, last record wins)."""
        return not self.issues

    def to_json_dict(self) -> Dict:
        """Machine-readable form (``repro store verify --json``)."""
        return {
            "path": str(self.path),
            "files": self.files,
            "total_lines": self.total_lines,
            "valid_records": self.valid_records,
            "unique_keys": self.unique_keys,
            "unchecksummed": self.unchecksummed,
            "duplicate_keys": dict(self.duplicate_keys),
            "issues": [
                {"file": str(issue.path) if issue.path else None,
                 "line": issue.lineno, "kind": issue.kind,
                 "detail": issue.detail}
                for issue in self.issues
            ],
            "clean": self.clean,
        }

    def format(self) -> str:
        lines = [
            f"store {self.path}: {self.files} file(s), "
            f"{self.total_lines} record line(s), "
            f"{self.valid_records} valid, {self.unique_keys} unique key(s)"
        ]
        if self.duplicate_keys:
            duplicates = ", ".join(
                f"{key[:12]}... x{count}"
                for key, count in sorted(self.duplicate_keys.items())
            )
            lines.append(
                f"  {len(self.duplicate_keys)} duplicated key(s) "
                f"(last record wins): {duplicates}"
            )
        if self.unchecksummed:
            lines.append(
                f"  {self.unchecksummed} legacy record(s) without a checksum "
                f"(compact adds them)"
            )
        for issue in self.issues:
            where = f"{issue.path.name}:" if issue.path is not None else "line "
            lines.append(f"  {where}{issue.lineno}: {issue.kind}: {issue.detail}")
        lines.append(
            "verdict: clean" if self.clean
            else f"verdict: CORRUPT ({len(self.issues)} bad line(s); "
                 f"run `repro store compact`)"
        )
        return "\n".join(lines)


@dataclass
class StoreRepairReport:
    """What :meth:`ResultsStore.compact` rewrote."""

    path: Path
    kept: int = 0
    dropped_corrupt: int = 0
    collapsed_duplicates: int = 0

    def to_json_dict(self) -> Dict:
        return {
            "path": str(self.path),
            "kept": self.kept,
            "dropped_corrupt": self.dropped_corrupt,
            "collapsed_duplicates": self.collapsed_duplicates,
        }

    def format(self) -> str:
        return (
            f"repaired {self.path}: kept {self.kept} record(s), dropped "
            f"{self.dropped_corrupt} corrupt/torn line(s), collapsed "
            f"{self.collapsed_duplicates} duplicate(s)"
        )


@dataclass
class StoreMigrateReport:
    """What :meth:`ResultsStore.migrate` converted."""

    path: Path
    #: Record lines copied byte-identically into shard files.
    migrated: int = 0
    dropped_corrupt: int = 0
    shards: int = 0
    removed_legacy: bool = False

    def to_json_dict(self) -> Dict:
        return {
            "path": str(self.path),
            "migrated": self.migrated,
            "dropped_corrupt": self.dropped_corrupt,
            "shards": self.shards,
            "removed_legacy": self.removed_legacy,
        }

    def format(self) -> str:
        if self.migrated == 0 and not self.dropped_corrupt and not self.shards:
            state = "already sharded"
            if self.removed_legacy:
                state += " (removed stale legacy file)"
            return f"store {self.path}: {state}"
        return (
            f"migrated {self.path}: {self.migrated} record line(s) "
            f"byte-identical into {self.shards} shard(s), dropped "
            f"{self.dropped_corrupt} corrupt/torn line(s)"
        )


# ----------------------------------------------------------------------
# Quarantine sidecar (failures.jsonl)
# ----------------------------------------------------------------------


@dataclass
class FailureRecord:
    """One quarantined sweep point (docs/robustness.md documents the schema)."""

    key: str                #: store content key of the failed point
    params: Dict            #: the point's outcome-determining payload
    attempts: int           #: how many attempts were made before giving up
    error: str              #: one-line description of the final failure
    traceback: str = ""     #: captured worker traceback of the final attempt
    engine: str = ""        #: engine of the final attempt
    timestamp: float = 0.0  #: quarantine wall-clock time (time.time())

    def to_json_dict(self) -> Dict:
        return {
            "key": self.key,
            "params": self.params,
            "attempts": self.attempts,
            "error": self.error,
            "traceback": self.traceback,
            "engine": self.engine,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "FailureRecord":
        return cls(
            key=payload["key"],
            params=dict(payload.get("params") or {}),
            attempts=int(payload.get("attempts", 1)),
            error=payload.get("error", ""),
            traceback=payload.get("traceback", ""),
            engine=payload.get("engine", ""),
            timestamp=payload.get("timestamp", 0.0),
        )


class FailureLog:
    """Append-only JSONL sidecar of quarantined points.

    Same durability discipline as the record files (O_APPEND, newline
    guard, fsync per record), but *advisory* semantics: a quarantined point
    is a report, not a skip-list entry -- the next campaign invocation
    retries it, because the faults the quarantine exists for are transient.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)

    def append(self, record: FailureRecord) -> FailureRecord:
        if not record.timestamp:
            record.timestamp = time.time()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _append_line(self.path, _canonical(record.to_json_dict()))
        return record

    def records(self) -> List[FailureRecord]:
        """Every parseable quarantine record, in append order."""
        if not self.path.exists():
            return []
        records = []
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(FailureRecord.from_json_dict(json.loads(line)))
                except (ValueError, KeyError, TypeError):
                    continue        # torn final line from a killed writer
        return records

    def keys(self) -> Set[str]:
        """The quarantined point keys, from a raw scan (no body parse)."""
        keys: Set[str] = set()
        if not self.path.exists():
            return keys
        with self.path.open("r", encoding="utf-8", errors="replace") as handle:
            for line in handle:
                match = _KEY_RE.search(line)
                if match is not None:
                    keys.add(match.group(1))
        return keys

    def __len__(self) -> int:
        return len(self.records())

    def clear(self) -> int:
        """Delete the sidecar; returns how many records it held."""
        removed = len(self.records())
        if self.path.exists():
            self.path.unlink()
        return removed


# ----------------------------------------------------------------------
# CLI (`repro store verify|compact|repair|migrate`)
# ----------------------------------------------------------------------


def build_parser():
    import argparse

    from ..cli_common import resolve_store_path, store_options  # noqa: F401

    parser = argparse.ArgumentParser(
        prog="repro store",
        description="Verify, compact or migrate a results store "
                    "(docs/robustness.md, docs/serving.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, text in (
        ("verify", "scan for corrupt/torn/duplicate records (read-only)"),
        ("compact", "rewrite every shard to a clean, checksummed file "
                    "(atomic per shard)"),
        ("repair", "alias of compact (the historical name)"),
        ("migrate", "convert a legacy single-file store to the sharded "
                    "layout, in place, record bytes unchanged"),
    ):
        command = sub.add_parser(name, help=text, parents=[store_options()])
        # Old spelling (`repro store verify DIR`) kept as a hidden alias
        # for one release; --store PATH is the unified form.
        command.add_argument("store_positional", nargs="?", default=None,
                             help=argparse.SUPPRESS)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    from ..cli_common import resolve_store_path

    args = build_parser().parse_args(argv)
    directory = resolve_store_path(args.store, args.store_positional,
                                   command="repro store")
    store = ResultsStore(directory)

    def emit(report) -> None:
        if args.json:
            print(json.dumps(report.to_json_dict(), indent=2, sort_keys=True))
        else:
            print(report.format())

    if args.command == "verify":
        report = store.verify()
        emit(report)
        return 0 if report.clean else 1
    if args.command in ("compact", "repair"):
        emit(store.compact())
        after = store.verify()
        emit(after)
        return 0 if after.clean else 1
    if args.command == "migrate":
        emit(store.migrate())
        after = store.verify()
        emit(after)
        return 0 if after.clean else 1
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via `repro store`
    import sys

    sys.exit(main(sys.argv[1:]))
