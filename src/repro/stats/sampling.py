"""Statistical sampling: plans, per-metric confidence intervals, sampled stats.

SMARTS-style systematic sampling (Wunderlich et al., ISCA'03) trades bounded
statistical error for a large wall-clock win: instead of simulating every
access in detail, the measured region is divided into ``num_units`` equal
periods and each period is simulated as

* a **fast-forward** segment -- functional-only state updates (cache,
  directory and DRAM-cache contents advance; no timing, no statistics),
* a **warmup** segment -- full detailed simulation whose statistics are
  discarded (it re-establishes timing state: store buffers, TLBs, channel
  occupancy) after the un-timed fast-forward, and
* a **detail** segment -- full detailed simulation that is measured.

Each detail window yields one observation per metric; the per-metric mean
and a t-based confidence interval over the windows are reported alongside
the (detail-window-only) counters.  ``docs/sampling.md`` documents the plan
schema, the error-bound semantics and when *not* to sample.

This module is pure statistics: the driver loop that alternates the phases
lives in :class:`repro.engines.SampledEngine`, and the functional access
path in :meth:`repro.system.socket.Socket.access_functional`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .counters import SimulationStats

__all__ = [
    "SamplingPlan",
    "SamplingUnit",
    "MetricEstimate",
    "SamplingSummary",
    "SampledSimulationStats",
    "WindowSample",
    "snapshot_counters",
    "delta_counters",
    "mean_and_half_width",
    "ratio_estimate",
    "t_critical",
    "SAMPLED_METRICS",
    "estimate_metrics",
    "WindowOutcome",
    "partition_units",
    "merge_window_outcomes",
]

#: Confidence levels with exact two-sided Student-t critical values below.
SUPPORTED_CONFIDENCES = (0.90, 0.95, 0.99)

#: Two-sided t critical values, ``{confidence: [df=1, df=2, ..., df=30]}``;
#: degrees of freedom beyond 30 fall back to the normal quantile.
_T_TABLE: Dict[float, Tuple[float, ...]] = {
    0.90: (
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ),
    0.95: (
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ),
    0.99: (
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
        3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
        2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ),
}

_Z_VALUES = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def t_critical(confidence: float, df: int) -> float:
    """Two-sided Student-t critical value for ``df`` degrees of freedom.

    ``confidence`` must be one of :data:`SUPPORTED_CONFIDENCES` (the values
    are tabulated exactly rather than approximated); ``df > 30`` uses the
    normal quantile, which the t distribution has converged to by then.
    """
    if confidence not in _T_TABLE:
        raise ValueError(
            f"unsupported confidence {confidence!r}; "
            f"expected one of {list(SUPPORTED_CONFIDENCES)}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE[confidence]
    if df <= len(table):
        return table[df - 1]
    return _Z_VALUES[confidence]


# ----------------------------------------------------------------------
# The plan
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SamplingUnit:
    """One period of a sampling schedule, in accesses per core."""

    fastforward: int
    warmup: int
    detail: int

    @property
    def length(self) -> int:
        return self.fastforward + self.warmup + self.detail


@dataclass(frozen=True)
class SamplingPlan:
    """How to sample the measured region of a simulation.

    ``num_units`` periods are laid out back to back over the measured region;
    each period ends with ``warmup`` unmeasured detailed accesses followed by
    ``detail`` measured accesses per core, and fast-forwards functionally
    through the rest.  With a ``seed`` the position of the warmup+detail
    window is jittered uniformly inside each period (systematic sampling with
    random offsets); without one the window sits at the end of its period.

    ``confidence`` selects the t-interval level.  ``bias_floor`` widens every
    reported interval to at least this *relative* half-width: the t interval
    only captures sampling variance, while functional warming leaves a small
    systematic bias (imperfect timing state at window starts) that variance
    cannot see -- the floor is the honest accounting for it.  Set it to 0 to
    report the raw t interval.
    """

    num_units: int = 8
    detail: int = 150
    warmup: int = 100
    confidence: float = 0.95
    bias_floor: float = 0.02
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_units < 2:
            raise ValueError("a sampling plan needs at least 2 units for an interval")
        if self.detail < 1:
            raise ValueError("detail window length must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup length must be >= 0")
        if self.bias_floor < 0:
            raise ValueError("bias_floor must be >= 0")
        t_critical(self.confidence, 1)  # validates the confidence level

    @property
    def window(self) -> int:
        """Detailed accesses per core per unit (warmup + detail)."""
        return self.warmup + self.detail

    def min_region(self) -> int:
        """Smallest measured region (accesses per core) the plan fits in."""
        return self.num_units * self.window

    def units(self, region_length: int) -> List[SamplingUnit]:
        """Lay the plan out over a measured region of ``region_length`` accesses.

        Returns one :class:`SamplingUnit` per period; the periods sum exactly
        to ``region_length`` (the first ``region_length % num_units`` periods
        are one access longer).  Raises ``ValueError`` when the region is too
        short for the plan -- sampling a region the plan would cover entirely
        in detail has no benefit and should be run exactly instead.
        """
        if region_length < self.min_region():
            raise ValueError(
                f"measured region of {region_length} accesses/core is too short "
                f"for {self.num_units} x (warmup {self.warmup} + detail "
                f"{self.detail}) sampling units; run this point exactly"
            )
        base, extra = divmod(region_length, self.num_units)
        rng = None
        if self.seed is not None:
            import random

            rng = random.Random(self.seed)
        units: List[SamplingUnit] = []
        for index in range(self.num_units):
            period = base + (1 if index < extra else 0)
            slack = period - self.window
            if rng is not None and slack > 0:
                lead = rng.randrange(slack + 1)
            else:
                lead = slack
            units.append(
                SamplingUnit(fastforward=lead, warmup=self.warmup, detail=self.detail)
            )
            # Slack after a jittered window becomes a pure fast-forward unit
            # (warmup=detail=0) so the periods stay contiguous.
            trail = slack - lead
            if trail:
                units.append(SamplingUnit(fastforward=trail, warmup=0, detail=0))
        return units

    @classmethod
    def for_region(
        cls,
        region_length: int,
        *,
        num_units: int = 8,
        confidence: float = 0.95,
        bias_floor: float = 0.02,
        seed: Optional[int] = None,
    ) -> "SamplingPlan":
        """Derive a plan that fits a measured region of ``region_length``.

        Sizes ~``num_units`` windows covering ~40% of the region (2/3 detail,
        1/3 warmup), shrinking the unit count for very short regions.  This
        is the default plan used when a caller asks for sampling without
        specifying one; explicit plans give better speedups on long regions.
        """
        if region_length < 4:
            raise ValueError(
                f"measured region of {region_length} accesses/core is too "
                "short to sample; run it exactly"
            )
        units = max(2, min(num_units, region_length // 2))
        period = region_length // units
        window = max(2, (period * 2) // 5)
        detail = max(1, (window * 2) // 3)
        warmup = window - detail
        return cls(
            num_units=units,
            detail=detail,
            warmup=warmup,
            confidence=confidence,
            bias_floor=bias_floor,
            seed=seed,
        )

    # ------------------------------------------------------------------
    # Serialisation (store keys, CLI spec strings)
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """Canonical JSON form (hashed into sampled store keys)."""
        return {
            "num_units": self.num_units,
            "detail": self.detail,
            "warmup": self.warmup,
            "confidence": self.confidence,
            "bias_floor": self.bias_floor,
            "seed": self.seed,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "SamplingPlan":
        return cls(
            num_units=payload["num_units"],
            detail=payload["detail"],
            warmup=payload["warmup"],
            confidence=payload.get("confidence", 0.95),
            bias_floor=payload.get("bias_floor", 0.02),
            seed=payload.get("seed"),
        )

    def to_spec(self) -> str:
        """Compact ``key=value`` spec string (the CLI/campaign format)."""
        parts = [
            f"units={self.num_units}",
            f"detail={self.detail}",
            f"warmup={self.warmup}",
        ]
        if self.confidence != 0.95:
            parts.append(f"confidence={self.confidence}")
        if self.bias_floor != 0.02:
            parts.append(f"bias_floor={self.bias_floor}")
        if self.seed is not None:
            parts.append(f"seed={self.seed}")
        return ",".join(parts)

    @classmethod
    def from_spec(cls, spec: str) -> "SamplingPlan":
        """Parse a ``units=8,detail=150,warmup=100`` spec string.

        Unknown keys, malformed values and out-of-range parameters raise
        ``ValueError`` with a message naming the offending part.
        """
        fields_map: Dict[str, object] = {}
        converters: Dict[str, Callable[[str], object]] = {
            "units": int,
            "detail": int,
            "warmup": int,
            "confidence": float,
            "bias_floor": float,
            "seed": int,
        }
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad sample-plan component {part!r}; expected key=value"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key not in converters:
                raise ValueError(
                    f"unknown sample-plan key {key!r}; "
                    f"expected one of {sorted(converters)}"
                )
            try:
                fields_map[key] = converters[key](raw.strip())
            except ValueError:
                raise ValueError(
                    f"bad sample-plan value for {key!r}: {raw.strip()!r}"
                ) from None
        kwargs = {
            "num_units": fields_map.get("units", cls.num_units),
            "detail": fields_map.get("detail", cls.detail),
            "warmup": fields_map.get("warmup", cls.warmup),
            "confidence": fields_map.get("confidence", cls.confidence),
            "bias_floor": fields_map.get("bias_floor", cls.bias_floor),
            "seed": fields_map.get("seed", cls.seed),
        }
        return cls(**kwargs)


# ----------------------------------------------------------------------
# Window snapshots
# ----------------------------------------------------------------------

#: A flattened view of every counter a detail window can change.
WindowSample = Dict[str, float]

#: Latency accumulators flattened as ``<name>_total`` / ``<name>_count``.
_LATENCY_FIELDS = SimulationStats._LATENCY_FIELDS


def snapshot_counters(stats: SimulationStats) -> WindowSample:
    """Flatten the scalar counters and latency sums of ``stats``."""
    sample: WindowSample = {
        name: getattr(stats, name) for name in SimulationStats._MERGE_SUM_FIELDS
    }
    for name in _LATENCY_FIELDS:
        acc = getattr(stats, name)
        sample[f"{name}_total"] = acc.total
        sample[f"{name}_count"] = acc.count
    return sample


def delta_counters(before: WindowSample, after: WindowSample) -> WindowSample:
    """Per-window counter deltas between two snapshots."""
    return {name: after[name] - before[name] for name in after}


# ----------------------------------------------------------------------
# Window outcomes: one measured window's counters, position-independent
# ----------------------------------------------------------------------


@dataclass
class WindowOutcome:
    """Everything one measured warmup+detail window produced.

    Windows are measured on an isolated copy of the architectural state at
    the window's start (the sampled engine forks a measurement child per
    window), so an outcome is a pure function of the functional chain up to
    ``unit_index`` -- independent of which worker measured it or in what
    order.  ``stats`` starts zeroed in the child, so its counters *are* the
    window's deltas; ``detail_elapsed`` is each core's simulated detail time
    and ``inter_socket_bytes`` the interconnect traffic of the detail phase.
    Picklable, so workers ship outcomes back over pipes.
    """

    unit_index: int
    detail_executed: int
    stats: SimulationStats
    inter_socket_bytes: int
    detail_elapsed: Dict[int, float]


def partition_units(
    units: Sequence["SamplingUnit"],
    jobs: int,
    *,
    window_weight: float = 8.0,
) -> List[Tuple[int, int]]:
    """Split plan units into at most ``jobs`` contiguous ``[lo, hi)`` ranges.

    Each range goes to one worker that fast-forwards from the region start,
    so a range's cost is every access up to its *end* (functional, weight 1)
    plus its own measured windows again (detailed, ``window_weight`` per
    access -- the approximate detailed/functional cost ratio).  A dynamic
    program minimises the most expensive range; ties resolve toward earlier
    boundaries, so the partition is deterministic.  Ranges cover every unit
    exactly once, in order.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    count = len(units)
    if count == 0:
        return []
    jobs = min(jobs, count)
    # Prefix sums: functional accesses through unit i, and windowed accesses
    # inside a unit range.
    functional = [0.0]
    windowed = [0.0]
    for unit in units:
        functional.append(functional[-1] + unit.length)
        windowed.append(windowed[-1] + (unit.warmup + unit.detail) * window_weight)

    def cost(lo: int, hi: int) -> float:
        return functional[hi] + (windowed[hi] - windowed[lo])

    # best[j][i]: minimal makespan splitting units[:i] into j ranges.
    inf = math.inf
    best = [[inf] * (count + 1) for _ in range(jobs + 1)]
    cut = [[0] * (count + 1) for _ in range(jobs + 1)]
    best[0][0] = 0.0
    for j in range(1, jobs + 1):
        for i in range(1, count + 1):
            for k in range(j - 1, i):
                if best[j - 1][k] is inf:
                    continue
                candidate = max(best[j - 1][k], cost(k, i))
                if candidate < best[j][i]:
                    best[j][i] = candidate
                    cut[j][i] = k
    ranges: List[Tuple[int, int]] = []
    i = count
    j = jobs
    while j > 0:
        k = cut[j][i]
        ranges.append((k, i))
        i, j = k, j - 1
    ranges.reverse()
    # Degenerate splits (empty leading ranges) collapse away.
    ranges = [(lo, hi) for lo, hi in ranges if hi > lo]
    # A range with no measured window would be a worker that only
    # fast-forwards -- pure overhead.  Fold such ranges into the next
    # windowed range (whose prefix replay covers them anyway); a windowless
    # tail extends the last range instead.
    merged: List[Tuple[int, int]] = []
    carry: Optional[int] = None
    for lo, hi in ranges:
        start = lo if carry is None else carry
        if any(units[index].detail for index in range(lo, hi)):
            merged.append((start, hi))
            carry = None
        else:
            carry = start
    if carry is not None:
        if merged:
            merged[-1] = (merged[-1][0], count)
        else:
            merged.append((carry, count))
    return merged


def merge_window_outcomes(
    stats: SimulationStats,
    outcomes: Sequence[WindowOutcome],
    core_ids: Sequence[int],
) -> Tuple[List[WindowSample], int, int, Dict[int, float]]:
    """Fold window outcomes into ``stats`` in deterministic window order.

    Counters and latency accumulators merge window by window (ascending
    ``unit_index``) regardless of the order workers delivered them, so the
    float addition order -- and therefore every derived statistic -- is
    bit-identical between serial and parallel execution.  Returns the
    per-window samples for the estimators, the total detail accesses, the
    summed inter-socket bytes, and each core's accumulated detail time
    (written into ``stats.core_finish_ns`` by the caller's contract here).
    """
    samples: List[WindowSample] = []
    detail_total = 0
    inter_socket_bytes = 0
    detail_elapsed = {core_id: 0.0 for core_id in core_ids}
    for outcome in sorted(outcomes, key=lambda o: o.unit_index):
        # Window stats start zeroed in the measurement child and carry no
        # core_finish_ns entries, so a plain merge sums the scalar counters
        # and latency accumulators (maxima included) without touching the
        # completion times handled below.
        stats.merge(outcome.stats)
        samples.append(snapshot_counters(outcome.stats))
        detail_total += outcome.detail_executed
        inter_socket_bytes += outcome.inter_socket_bytes
        for core_id, elapsed in outcome.detail_elapsed.items():
            detail_elapsed[core_id] += elapsed
    for core_id, elapsed in detail_elapsed.items():
        stats.core_finish_ns[core_id] = elapsed
    return samples, detail_total, inter_socket_bytes, detail_elapsed


# ----------------------------------------------------------------------
# Estimators
# ----------------------------------------------------------------------


def mean_and_half_width(
    values: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Sample mean and t-interval half-width of ``values``.

    Requires at least two observations (one observation has no variance
    estimate).  The half-width is ``t * s / sqrt(n)`` with ``s`` the sample
    standard deviation.
    """
    n = len(values)
    if n < 2:
        raise ValueError("need at least 2 observations for a confidence interval")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    half = t_critical(confidence, n - 1) * math.sqrt(variance / n)
    return mean, half


def ratio_estimate(
    numerators: Sequence[float],
    denominators: Sequence[float],
    confidence: float = 0.95,
) -> Tuple[float, float]:
    """Ratio-of-sums estimate with a linearised confidence interval.

    Estimates ``R = sum(num) / sum(den)`` -- the same definition an exact
    run uses over its whole measured region -- and derives the interval from
    the per-unit residuals ``e_i = num_i - R * den_i`` (the classical ratio
    estimator: Cochran, *Sampling Techniques*, ch. 6)::

        Var(R) ~= (1 / n) * s_e^2 / dbar^2

    Units are expected to have comparable denominators (equal-length detail
    windows), which keeps the linearisation accurate.
    """
    if len(numerators) != len(denominators):
        raise ValueError("numerators and denominators must have equal length")
    n = len(numerators)
    if n < 2:
        raise ValueError("need at least 2 observations for a confidence interval")
    den_sum = float(sum(denominators))
    if den_sum == 0:
        raise ValueError("denominator sum is zero; the metric is undefined")
    ratio = float(sum(numerators)) / den_sum
    dbar = den_sum / n
    residuals = [num - ratio * den for num, den in zip(numerators, denominators)]
    s2 = sum(e * e for e in residuals) / (n - 1)
    half = t_critical(confidence, n - 1) * math.sqrt(s2 / n) / dbar
    return ratio, half


@dataclass(frozen=True)
class MetricEstimate:
    """Mean and confidence half-width of one sampled metric."""

    mean: float
    half_width: float
    units: int
    confidence: float

    @property
    def lower(self) -> float:
        return self.mean - self.half_width

    @property
    def upper(self) -> float:
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        return self.lower <= value <= self.upper

    def format(self) -> str:
        return f"{self.mean:.4g} +/- {self.half_width:.2g}"

    def to_json_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "half_width": self.half_width,
            "units": self.units,
            "confidence": self.confidence,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "MetricEstimate":
        return cls(
            mean=payload["mean"],
            half_width=payload["half_width"],
            units=payload["units"],
            confidence=payload["confidence"],
        )


#: The sampled metrics: ``name -> (numerator key(s), denominator key(s))``.
#: Every metric is a ratio of counter sums over a window, matching the exact
#: run's definition of the same quantity (see ``SimulationStats``).
SAMPLED_METRICS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "amat_ns": (("read_latency_total",), ("read_latency_count",)),
    "write_latency_ns": (("write_latency_total",), ("write_latency_count",)),
    "llc_miss_latency_ns": (("llc_miss_latency_total",), ("llc_miss_latency_count",)),
    "l1_hit_rate": (("l1_hits",), ("l1_hits", "l1_misses")),
    "llc_hit_rate": (("llc_hits",), ("llc_hits", "llc_misses")),
    "dram_cache_hit_rate": (
        ("dram_cache_hits",),
        ("dram_cache_hits", "dram_cache_misses"),
    ),
    "remote_memory_fraction": (
        ("memory_reads_remote", "memory_writes_remote"),
        (
            "memory_reads_local",
            "memory_reads_remote",
            "memory_writes_local",
            "memory_writes_remote",
        ),
    ),
}


def _metric_terms(sample: WindowSample, keys: Tuple[str, ...]) -> float:
    return sum(sample[key] for key in keys)


def estimate_metrics(
    samples: Sequence[WindowSample],
    *,
    confidence: float = 0.95,
    bias_floor: float = 0.0,
) -> Dict[str, MetricEstimate]:
    """Per-metric ratio estimates over the detail-window ``samples``.

    Metrics whose denominator is zero in every window (e.g. the DRAM-cache
    hit rate on the baseline design) are omitted.  ``bias_floor`` widens each
    half-width to at least ``bias_floor * |mean|`` (see
    :class:`SamplingPlan`).
    """
    estimates: Dict[str, MetricEstimate] = {}
    for name, (num_keys, den_keys) in SAMPLED_METRICS.items():
        numerators = [_metric_terms(sample, num_keys) for sample in samples]
        denominators = [_metric_terms(sample, den_keys) for sample in samples]
        if sum(denominators) == 0:
            continue
        mean, half = ratio_estimate(numerators, denominators, confidence)
        half = max(half, bias_floor * abs(mean))
        estimates[name] = MetricEstimate(
            mean=mean, half_width=half, units=len(samples), confidence=confidence
        )
    return estimates


# ----------------------------------------------------------------------
# The sampled statistics object
# ----------------------------------------------------------------------


@dataclass
class SamplingSummary:
    """What a sampled run measured, and with what confidence.

    ``metrics`` maps metric names to :class:`MetricEstimate`;
    ``detail_accesses`` / ``covered_accesses`` describe coverage (per run,
    summed over cores), and ``scale`` is the extrapolation factor from
    detail-window totals to whole-region totals
    (``covered_accesses / detail_accesses``).
    """

    plan: SamplingPlan
    metrics: Dict[str, MetricEstimate] = field(default_factory=dict)
    detail_accesses: int = 0
    covered_accesses: int = 0

    @property
    def scale(self) -> float:
        """Extrapolation factor from detail-window totals to region totals."""
        if not self.detail_accesses:
            return 1.0
        return self.covered_accesses / self.detail_accesses

    def format(self) -> str:
        """Multi-line human-readable summary (the CLI prints this)."""
        lines = [
            f"sampling: {self.plan.num_units} units x (warmup {self.plan.warmup}"
            f" + detail {self.plan.detail}) per core, "
            f"{self.detail_accesses}/{self.covered_accesses} accesses measured "
            f"({100.0 / self.scale:.1f}%), "
            f"{self.plan.confidence:.0%} confidence",
        ]
        for name, estimate in self.metrics.items():
            lines.append(f"  {name:<24s} {estimate.format()}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "plan": self.plan.to_json_dict(),
            "metrics": {
                name: estimate.to_json_dict()
                for name, estimate in self.metrics.items()
            },
            "detail_accesses": self.detail_accesses,
            "covered_accesses": self.covered_accesses,
        }

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "SamplingSummary":
        return cls(
            plan=SamplingPlan.from_json_dict(payload["plan"]),
            metrics={
                name: MetricEstimate.from_json_dict(entry)
                for name, entry in payload["metrics"].items()
            },
            detail_accesses=payload["detail_accesses"],
            covered_accesses=payload["covered_accesses"],
        )


class SampledSimulationStats(SimulationStats):
    """:class:`SimulationStats` plus per-metric sampling estimates.

    The inherited counters cover the **detail windows only** (multiply by
    ``sampling.scale`` to extrapolate totals to the whole measured region);
    ``sampling`` carries the per-metric mean/CI estimates.  Serialisation is
    a superset of the base format, so the results store round-trips sampled
    and exact records through the same machinery.
    """

    def __init__(self, sampling: Optional[SamplingSummary] = None) -> None:
        super().__init__()
        self.sampling = sampling

    def to_json_dict(self) -> Dict[str, object]:
        payload = super().to_json_dict()
        if self.sampling is not None:
            payload["sampling"] = self.sampling.to_json_dict()
        return payload

    @classmethod
    def from_json_dict(cls, payload: Mapping) -> "SampledSimulationStats":
        base = SimulationStats.from_json_dict(payload)
        stats = cls()
        for name in (
            SimulationStats._MERGE_SUM_FIELDS + SimulationStats._LATENCY_FIELDS
        ):
            setattr(stats, name, getattr(base, name))
        stats.core_finish_ns = base.core_finish_ns
        stats.extra = base.extra
        if payload.get("sampling") is not None:
            stats.sampling = SamplingSummary.from_json_dict(payload["sampling"])
        return stats
