"""Event counters collected during a simulation.

A single :class:`SimulationStats` object is shared by the CPU model, the
sockets and the coherence protocol.  It is deliberately a plain bag of
counters (no behaviour besides derived ratios) so that every experiment can
read exactly the quantities the paper reports:

* memory reads / writes split into local vs. remote (Table I, Fig. 8),
* inter-socket bytes by message class (Fig. 9, section VI-C),
* DRAM-cache hits/misses and where LLC misses were served from (Fig. 3),
* cycle counts per core for speedups (Figs. 2, 6, 7, 10, 11).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["SimulationStats", "LatencyAccumulator"]


@dataclass
class LatencyAccumulator:
    """Accumulates a latency distribution (sum + count + max)."""

    total: float = 0.0
    count: int = 0
    maximum: float = 0.0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1
        if value > self.maximum:
            self.maximum = value

    def add_constant(self, value: float, count: int) -> None:
        """Fold ``count`` consecutive :meth:`add` calls of the same ``value``.

        Bit-identical to the sequential loop: float addition of a constant is
        still folded left-to-right (``count * value`` would round
        differently), so batch engines can defer a run of equal-latency hits
        and apply them in one call without perturbing ``total``.
        """
        if count <= 0:
            return
        if count > 512:
            # np.cumsum folds left-to-right in float64, matching the loop
            # bit-for-bit (verified by tests/stats/test_counters.py).
            import numpy as np

            seq = np.empty(count + 1, dtype=np.float64)
            seq[0] = self.total
            seq[1:] = value
            self.total = float(np.cumsum(seq)[-1])
        else:
            total = self.total
            for _ in range(count):
                total += value
            self.total = total
        self.count += count
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "LatencyAccumulator") -> None:
        """Fold another accumulator's distribution into this one."""
        self.total += other.total
        self.count += other.count
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Mean of the accumulated values (0.0 when nothing was added)."""
        return self.total / self.count if self.count else 0.0

    def to_json_dict(self) -> Dict[str, float]:
        """Serialise to a JSON-safe dictionary (exact float round-trip)."""
        return {"total": self.total, "count": self.count, "maximum": self.maximum}

    @classmethod
    def from_json_dict(cls, payload: Dict[str, float]) -> "LatencyAccumulator":
        """Rebuild an accumulator written by :meth:`to_json_dict`."""
        return cls(
            total=payload["total"], count=payload["count"], maximum=payload["maximum"]
        )


@dataclass
class SimulationStats:
    """Counters shared across the simulated machine."""

    # ---- processor-side -------------------------------------------------
    instructions: int = 0
    reads: int = 0
    writes: int = 0
    store_buffer_stalls: int = 0
    store_buffer_stall_ns: float = 0.0
    store_forward_hits: int = 0

    # ---- cache-level hit accounting -------------------------------------
    l1_hits: int = 0
    l1_misses: int = 0
    llc_hits: int = 0
    llc_misses: int = 0
    llc_peer_hits: int = 0           # served by another core's L1 within the socket
    dram_cache_hits: int = 0
    dram_cache_misses: int = 0

    # ---- where LLC misses were ultimately served ------------------------
    served_local_memory: int = 0
    served_remote_memory: int = 0
    served_remote_llc: int = 0
    served_remote_dram_cache: int = 0
    served_local_dram_cache: int = 0

    # ---- main-memory traffic --------------------------------------------
    memory_reads_local: int = 0
    memory_reads_remote: int = 0
    memory_writes_local: int = 0
    memory_writes_remote: int = 0

    # ---- coherence actions ------------------------------------------------
    directory_lookups: int = 0
    directory_recalls: int = 0
    invalidations_sent: int = 0
    broadcasts: int = 0
    broadcasts_elided: int = 0
    downgrades: int = 0
    writebacks: int = 0
    write_throughs: int = 0
    upgrades: int = 0

    # ---- latency decomposition ---------------------------------------------
    read_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    write_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)
    llc_miss_latency: LatencyAccumulator = field(default_factory=LatencyAccumulator)

    # ---- per-core completion times (ns) ----------------------------------
    core_finish_ns: Dict[int, float] = field(default_factory=dict)

    # ---- free-form extras (ablations, debug) ------------------------------
    extra: Dict[str, float] = field(default_factory=lambda: defaultdict(float))

    # -- derived quantities -------------------------------------------------

    @property
    def memory_accesses(self) -> int:
        """All main-memory accesses (reads + writes, local + remote)."""
        return (
            self.memory_reads_local
            + self.memory_reads_remote
            + self.memory_writes_local
            + self.memory_writes_remote
        )

    @property
    def memory_reads(self) -> int:
        return self.memory_reads_local + self.memory_reads_remote

    @property
    def memory_writes(self) -> int:
        return self.memory_writes_local + self.memory_writes_remote

    def remote_memory_fraction(self) -> float:
        """Fraction of main-memory accesses served by a remote socket (Table I)."""
        total = self.memory_accesses
        if not total:
            return 0.0
        return (self.memory_reads_remote + self.memory_writes_remote) / total

    def remote_read_fraction(self) -> float:
        """Fraction of main-memory reads served by a remote socket."""
        reads = self.memory_reads
        if not reads:
            return 0.0
        return self.memory_reads_remote / reads

    def l1_hit_rate(self) -> float:
        accesses = self.l1_hits + self.l1_misses
        return self.l1_hits / accesses if accesses else 0.0

    def llc_hit_rate(self) -> float:
        accesses = self.llc_hits + self.llc_misses
        return self.llc_hits / accesses if accesses else 0.0

    def dram_cache_hit_rate(self) -> float:
        accesses = self.dram_cache_hits + self.dram_cache_misses
        return self.dram_cache_hits / accesses if accesses else 0.0

    def amat_ns(self) -> float:
        """Average latency of a demand read (ns)."""
        return self.read_latency.mean

    def total_time_ns(self) -> float:
        """Completion time of the slowest core (the run's makespan)."""
        if not self.core_finish_ns:
            return 0.0
        return max(self.core_finish_ns.values())

    def off_socket_serves(self) -> int:
        """LLC misses that had to leave the socket."""
        return self.served_remote_memory + self.served_remote_llc + self.served_remote_dram_cache

    #: Scalar integer/float counters folded by :meth:`merge` (kept explicit so
    #: new counters must make a conscious choice about merge semantics).
    _MERGE_SUM_FIELDS = (
        "instructions", "reads", "writes", "store_buffer_stalls",
        "store_buffer_stall_ns", "store_forward_hits",
        "l1_hits", "l1_misses", "llc_hits", "llc_misses", "llc_peer_hits",
        "dram_cache_hits", "dram_cache_misses",
        "served_local_memory", "served_remote_memory", "served_remote_llc",
        "served_remote_dram_cache", "served_local_dram_cache",
        "memory_reads_local", "memory_reads_remote",
        "memory_writes_local", "memory_writes_remote",
        "directory_lookups", "directory_recalls", "invalidations_sent",
        "broadcasts", "broadcasts_elided", "downgrades", "writebacks",
        "write_throughs", "upgrades",
    )

    def merge(self, other: "SimulationStats") -> "SimulationStats":
        """Fold another run's counters into this object (in place).

        Used by the parallel experiment runner to combine the statistics of
        simulations executed in different worker processes.  Scalar counters
        add, latency distributions merge, and per-core completion times are
        unioned (identical core ids keep the slower completion, so merging
        shards of one logical sweep stays meaningful).
        """
        for name in self._MERGE_SUM_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.read_latency.merge(other.read_latency)
        self.write_latency.merge(other.write_latency)
        self.llc_miss_latency.merge(other.llc_miss_latency)
        for core_id, finish in other.core_finish_ns.items():
            mine = self.core_finish_ns.get(core_id)
            if mine is None or finish > mine:
                self.core_finish_ns[core_id] = finish
        for key, value in other.extra.items():
            self.extra[key] += value
        return self

    #: The latency-distribution fields (each a :class:`LatencyAccumulator`).
    _LATENCY_FIELDS = ("read_latency", "write_latency", "llc_miss_latency")

    def to_json_dict(self) -> Dict[str, object]:
        """Serialise every counter to a JSON-safe dictionary.

        Unlike :meth:`as_dict` (a *lossy* flat view for reports), this is a
        complete round-trip format: :meth:`from_json_dict` rebuilds an object
        whose counters -- including the latency distributions, the per-core
        completion times and the free-form ``extra`` bag -- are bit-identical
        to the original.  JSON floats round-trip exactly (``repr`` is the
        shortest exact representation), so statistics loaded from the
        results store compare equal to freshly simulated ones.
        """
        payload: Dict[str, object] = {
            name: getattr(self, name) for name in self._MERGE_SUM_FIELDS
        }
        for name in self._LATENCY_FIELDS:
            payload[name] = getattr(self, name).to_json_dict()
        # JSON object keys must be strings; core ids are restored as ints.
        payload["core_finish_ns"] = {
            str(core_id): finish for core_id, finish in self.core_finish_ns.items()
        }
        payload["extra"] = dict(self.extra)
        return payload

    @classmethod
    def from_json_dict(cls, payload: Dict[str, object]) -> "SimulationStats":
        """Rebuild a :class:`SimulationStats` written by :meth:`to_json_dict`."""
        stats = cls()
        for name in cls._MERGE_SUM_FIELDS:
            setattr(stats, name, payload[name])
        for name in cls._LATENCY_FIELDS:
            setattr(stats, name, LatencyAccumulator.from_json_dict(payload[name]))
        stats.core_finish_ns = {
            int(core_id): finish
            for core_id, finish in payload["core_finish_ns"].items()
        }
        stats.extra.update(payload["extra"])
        return stats

    def as_dict(self) -> Dict[str, float]:
        """Flatten the scalar counters into a dictionary (for reports/CSV)."""
        scalars = {
            name: getattr(self, name)
            for name in (
                "instructions", "reads", "writes", "store_buffer_stalls",
                "store_forward_hits", "l1_hits", "l1_misses", "llc_hits", "llc_misses",
                "llc_peer_hits", "dram_cache_hits", "dram_cache_misses",
                "served_local_memory", "served_remote_memory", "served_remote_llc",
                "served_remote_dram_cache", "served_local_dram_cache",
                "memory_reads_local", "memory_reads_remote",
                "memory_writes_local", "memory_writes_remote",
                "directory_lookups", "directory_recalls", "invalidations_sent",
                "broadcasts", "broadcasts_elided", "downgrades", "writebacks",
                "write_throughs", "upgrades",
            )
        }
        scalars["amat_ns"] = self.amat_ns()
        scalars["total_time_ns"] = self.total_time_ns()
        scalars["remote_memory_fraction"] = self.remote_memory_fraction()
        scalars.update({f"extra.{key}": value for key, value in self.extra.items()})
        return scalars
