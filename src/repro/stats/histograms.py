"""Log-scaled histogram helpers shared by the workload analyzer and reports.

The workload analyzer (:mod:`repro.workloads.analyzer`) characterises traces
whose interesting quantities -- reuse distances, page strides, sharing
degrees -- span many orders of magnitude, so linear bins are useless.
:class:`Log2Histogram` buckets non-negative integers by power of two
(``0`` gets its own bucket; ``v >= 1`` lands in bucket
``floor(log2(v))``, i.e. the range ``[2**k, 2**(k+1))``) and round-trips
losslessly through JSON, which makes it safe to embed in analyzer profiles
that are drift-guarded byte-for-byte (``tests/golden``).

Kept deliberately free of simulator imports: this is a pure counting
utility, usable from :mod:`repro.stats` reports and from the workloads
layer without cycles.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Log2Histogram", "bucket_of", "bucket_bounds"]


def bucket_of(value: int) -> int:
    """The bucket index of a non-negative integer value.

    ``0 -> -1`` (the dedicated zero bucket); ``v >= 1 -> floor(log2(v))``.
    """
    if value < 0:
        raise ValueError(f"Log2Histogram values must be non-negative, got {value}")
    return value.bit_length() - 1 if value else -1


def bucket_bounds(index: int) -> Tuple[int, int]:
    """Inclusive ``(lo, hi)`` value range of bucket ``index``."""
    if index == -1:
        return (0, 0)
    if index < -1:
        raise ValueError(f"invalid bucket index {index}")
    return (1 << index, (1 << (index + 1)) - 1)


class Log2Histogram:
    """A power-of-two-bucketed histogram of non-negative integers.

    The JSON form is a plain ``{bucket_index_as_str: count}`` mapping with
    keys sorted numerically, so two histograms with the same counts always
    serialise byte-identically (analyzer profiles are golden-tested).
    """

    __slots__ = ("counts",)

    def __init__(self, counts: Optional[Mapping[int, int]] = None) -> None:
        self.counts: Dict[int, int] = dict(counts) if counts else {}

    def add(self, value: int, weight: int = 1) -> None:
        """Count one observation of ``value`` (optionally ``weight`` of them)."""
        bucket = bucket_of(value)
        self.counts[bucket] = self.counts.get(bucket, 0) + weight

    def add_all(self, values: Iterable[int]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "Log2Histogram") -> None:
        """Fold ``other``'s counts into this histogram."""
        for bucket, count in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + count

    @property
    def total(self) -> int:
        """Total number of observations."""
        return sum(self.counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Log2Histogram):
            return NotImplemented
        return self.counts == other.counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Log2Histogram({self.counts!r})"

    # -- statistics ---------------------------------------------------------

    def quantile(self, q: float) -> int:
        """Approximate ``q``-quantile (the lower bound of the covering bucket).

        Exact for the zero bucket; other buckets report their lower bound,
        which under-estimates by at most 2x -- adequate for the analyzer's
        "working-set knee" style summaries.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        total = self.total
        if total == 0:
            raise ValueError("quantile of an empty histogram")
        target = q * total
        running = 0
        for bucket in sorted(self.counts):
            running += self.counts[bucket]
            if running >= target:
                return bucket_bounds(bucket)[0]
        return bucket_bounds(max(self.counts))[0]

    def mean_lower_bound(self) -> float:
        """Mean computed from bucket lower bounds (a deterministic summary)."""
        total = self.total
        if total == 0:
            return 0.0
        return sum(bucket_bounds(b)[0] * c for b, c in self.counts.items()) / total

    # -- serialisation ------------------------------------------------------

    def to_json_dict(self) -> Dict[str, int]:
        """JSON form: ``{str(bucket): count}`` with numerically sorted keys."""
        return {str(bucket): self.counts[bucket] for bucket in sorted(self.counts)}

    @classmethod
    def from_json_dict(cls, payload: Mapping[str, int]) -> "Log2Histogram":
        return cls({int(bucket): int(count) for bucket, count in payload.items()})

    # -- rendering ----------------------------------------------------------

    def format_markdown(self, *, value_label: str = "value") -> str:
        """Render as a Markdown table of bucket ranges, counts and shares."""
        lines: List[str] = [
            f"| {value_label} | count | share |",
            "|---|---:|---:|",
        ]
        total = self.total
        for bucket in sorted(self.counts):
            lo, hi = bucket_bounds(bucket)
            label = "0" if bucket == -1 else (str(lo) if lo == hi else f"{lo}-{hi}")
            count = self.counts[bucket]
            share = count / total if total else 0.0
            lines.append(f"| {label} | {count} | {share:.1%} |")
        return "\n".join(lines)
