"""Average-memory-access-time (AMAT) decomposition helpers.

The paper's argument is fundamentally an AMAT argument: private DRAM caches
win because a local DRAM-cache hit (~40 ns) is much cheaper than a remote
memory access (~90-130 ns), and C3D wins over the naive coherent designs
because it never puts a *remote* DRAM-cache access (~100+ ns) on the read
critical path.  :func:`amat_breakdown` reconstructs the decomposition from a
run's statistics so experiments and examples can print it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .counters import SimulationStats

__all__ = ["AMATBreakdown", "amat_breakdown", "estimate_amat"]


@dataclass
class AMATBreakdown:
    """Where demand reads were served and the resulting mean latency."""

    amat_ns: float
    total_reads: int
    fractions: Dict[str, float]

    def format(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [f"AMAT: {self.amat_ns:.1f} ns over {self.total_reads} demand reads"]
        for level, fraction in sorted(self.fractions.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {level:<22s} {fraction * 100:5.1f} %")
        return "\n".join(lines)


def amat_breakdown(stats: SimulationStats) -> AMATBreakdown:
    """Build an :class:`AMATBreakdown` from run statistics."""
    reads = max(1, stats.reads)
    serve_counts = {
        "l1": stats.l1_hits,
        "llc": stats.llc_hits,
        "local_dram_cache": stats.served_local_dram_cache,
        "local_memory": stats.served_local_memory,
        "remote_llc": stats.served_remote_llc,
        "remote_dram_cache": stats.served_remote_dram_cache,
        "remote_memory": stats.served_remote_memory,
        "store_forward": stats.store_forward_hits,
    }
    total = sum(serve_counts.values())
    denominator = max(1, total)
    fractions = {level: count / denominator for level, count in serve_counts.items()}
    return AMATBreakdown(
        amat_ns=stats.amat_ns(), total_reads=reads, fractions=fractions
    )


def estimate_amat(
    hit_fractions: Dict[str, float], latencies_ns: Dict[str, float]
) -> float:
    """Analytic AMAT from per-level hit fractions and latencies.

    Used by the motivation example and by tests to sanity-check the
    simulator's measured AMAT against a closed-form expectation.
    """
    missing = set(hit_fractions) - set(latencies_ns)
    if missing:
        raise ValueError(f"missing latencies for levels: {sorted(missing)}")
    return sum(fraction * latencies_ns[level] for level, fraction in hit_fractions.items())
