"""Statistics: counters, AMAT decomposition, report formatting."""

from .amat import AMATBreakdown, amat_breakdown, estimate_amat
from .counters import LatencyAccumulator, SimulationStats
from .export import export_json, export_series_csv, flatten_series, load_json
from .report import format_series, format_table, geometric_mean, normalise

__all__ = [
    "SimulationStats",
    "LatencyAccumulator",
    "AMATBreakdown",
    "amat_breakdown",
    "estimate_amat",
    "format_table",
    "format_series",
    "geometric_mean",
    "normalise",
    "export_json",
    "load_json",
    "export_series_csv",
    "flatten_series",
]
