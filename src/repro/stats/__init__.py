"""Statistics: counters, AMAT decomposition, report formatting, persistence.

``counters`` collects every event the simulated machine reports;
``amat`` decomposes them into the paper's average-memory-access-time
argument; ``report`` renders rows/series as text or Markdown tables;
``export`` writes them as JSON/CSV; ``store`` is the persistent
append-only results store behind resumable campaigns (docs/campaigns.md);
``sampling`` is the SMARTS-style systematic-sampling machinery -- plans,
per-metric confidence intervals and the sampled statistics extension
(docs/sampling.md); ``histograms`` is the log2-bucketed counting
histogram shared with the workload analyzer (docs/ingestion.md).
"""

from .amat import AMATBreakdown, amat_breakdown, estimate_amat
from .counters import LatencyAccumulator, SimulationStats
from .histograms import Log2Histogram, bucket_bounds, bucket_of
from .export import (
    export_json,
    export_series_csv,
    export_table_csv,
    flatten_series,
    load_json,
)
from .report import (
    format_markdown_table,
    format_series,
    format_table,
    geometric_mean,
    normalise,
    series_to_markdown,
)
from .sampling import (
    MetricEstimate,
    SampledSimulationStats,
    SamplingPlan,
    SamplingSummary,
)
from .store import (
    STORE_SCHEMA_VERSION,
    MissingRunError,
    ResultsStore,
    StoredRun,
    content_key,
)

__all__ = [
    "SimulationStats",
    "LatencyAccumulator",
    "Log2Histogram",
    "bucket_of",
    "bucket_bounds",
    "AMATBreakdown",
    "amat_breakdown",
    "estimate_amat",
    "format_table",
    "format_series",
    "format_markdown_table",
    "series_to_markdown",
    "geometric_mean",
    "normalise",
    "export_json",
    "load_json",
    "export_series_csv",
    "export_table_csv",
    "flatten_series",
    "ResultsStore",
    "StoredRun",
    "MissingRunError",
    "content_key",
    "STORE_SCHEMA_VERSION",
    "SamplingPlan",
    "SamplingSummary",
    "MetricEstimate",
    "SampledSimulationStats",
]


def __getattr__(name):
    # Deprecated alias of the repro.api facade, kept one release.
    if name == "open_store":
        import warnings

        warnings.warn(
            "importing 'open_store' from repro.stats is deprecated; "
            "use repro.api.open_store (docs/architecture.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..api import open_store

        return open_store
    raise AttributeError(f"module 'repro.stats' has no attribute {name!r}")
