"""Report formatting used by the experiments, ``repro report`` and examples.

The experiment harness prints the same rows/series the paper reports; these
helpers keep that formatting in one place (simple fixed-width text tables
plus GitHub-flavoured Markdown equivalents, no external dependencies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_series",
    "format_markdown_table",
    "series_to_markdown",
    "geometric_mean",
    "normalise",
]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render a fixed-width text table."""
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(str(h)) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_line([str(h) for h in headers]))
    lines.append(render_line(["-" * w for w in widths]))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def format_series(series: Mapping[str, Mapping[str, float]], *, title: Optional[str] = None,
                  float_format: str = "{:.3f}") -> str:
    """Render a {row -> {column -> value}} mapping as a table."""
    columns: List[str] = []
    for values in series.values():
        for column in values:
            if column not in columns:
                columns.append(column)
    headers = ["workload"] + columns
    rows = []
    for row_name, values in series.items():
        rows.append([row_name] + [values.get(column, float("nan")) for column in columns])
    return format_table(headers, rows, title=title, float_format=float_format)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_format: str = "{:.3f}",
) -> str:
    """Render a GitHub-flavoured Markdown table (used by ``repro report``)."""
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell).replace("|", "\\|")

    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(render(cell) for cell in row) + " |")
    return "\n".join(lines)


def series_to_markdown(
    series: Mapping[str, Mapping[str, float]],
    *,
    row_header: str = "workload",
    float_format: str = "{:.3f}",
) -> str:
    """Render a {row -> {column -> value}} mapping as a Markdown table."""
    columns: List[str] = []
    for values in series.values():
        for column in values:
            if column not in columns:
                columns.append(column)
    rows = [
        [row_name] + [values.get(column, float("nan")) for column in columns]
        for row_name, values in series.items()
    ]
    return format_markdown_table(
        [row_header] + columns, rows, float_format=float_format
    )


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive values, returns 0.0 if none valid)."""
    import math

    usable = [value for value in values if value > 0]
    if not usable:
        return 0.0
    return math.exp(sum(math.log(value) for value in usable) / len(usable))


def normalise(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry (baseline maps to 1.0)."""
    baseline = values[baseline_key]
    if baseline == 0:
        raise ZeroDivisionError(f"baseline entry {baseline_key!r} is zero")
    return {key: value / baseline for key, value in values.items()}
