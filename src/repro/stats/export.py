"""Export helpers: persist experiment results as JSON or CSV.

The experiment modules return plain nested dictionaries
(``{row: {column: value}}`` series or ``{name: value}`` tables).  These
helpers write them to disk in formats that plotting scripts and spreadsheets
can consume, and load them back for comparison across runs.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Mapping, Union

__all__ = [
    "export_json",
    "load_json",
    "export_series_csv",
    "export_table_csv",
    "flatten_series",
]

PathLike = Union[str, Path]


def export_json(results: Mapping, path: PathLike, *, indent: int = 2) -> Path:
    """Write ``results`` (any JSON-serialisable nested mapping) to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=indent, sort_keys=True)
        handle.write("\n")
    return path


def load_json(path: PathLike) -> Dict:
    """Load a results file written by :func:`export_json`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def flatten_series(series: Mapping[str, Mapping[str, float]]) -> list:
    """Flatten a ``{row: {column: value}}`` series into a list of dict rows."""
    flattened = []
    for row_name, columns in series.items():
        record = {"row": row_name}
        record.update(columns)
        flattened.append(record)
    return flattened


def export_table_csv(
    table: Mapping[str, float], path: PathLike, *, value_header: str = "value"
) -> Path:
    """Write a flat ``{name: value}`` table to a two-column CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(["name", value_header])
        for name, value in table.items():
            writer.writerow([name, value])
    return path


def export_series_csv(series: Mapping[str, Mapping[str, float]], path: PathLike) -> Path:
    """Write a ``{row: {column: value}}`` series to a CSV file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = flatten_series(series)
    fieldnames = ["row"]
    for record in rows:
        for key in record:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path
