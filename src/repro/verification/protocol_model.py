"""Abstract protocol model used by the explicit-state model checker.

The paper verifies the C3D coherence protocol with the Murphi model checker,
"proving absence of deadlock and race conditions ... and that the
Single-Writer-Multiple-Reader (SWMR) invariant and SC per memory location are
not violated".  Murphi models are abstract restatements of the protocol, not
the simulator itself; this module plays the same role for the reproduction.

The model describes a single cache block in an ``n``-socket machine at the
same atomic-transaction granularity the simulator uses: each action (read,
write, LLC eviction, DRAM-cache eviction) runs to completion before the next
begins.  Data values are abstracted to FRESH/STALE -- after every write the
writer's copy is the unique FRESH copy; data movements propagate freshness --
so the reachable state space is finite and can be explored exhaustively by
:class:`~repro.verification.model_checker.ModelChecker`.

Two protocol variants are modelled:

* ``clean`` (C3D): dirty LLC victims are written through to memory and
  retained clean in the local DRAM cache; the directory does not track
  DRAM-cache-only copies, so writes to untracked blocks broadcast
  invalidations.
* ``dirty`` (full-dir-like): dirty LLC victims are absorbed by the DRAM
  cache without a memory write-back and the directory tracks everything.

A third, intentionally *incorrect* variant (``broken-no-broadcast``) keeps
the clean cache but omits the broadcast on writes to untracked blocks; the
test suite uses it to demonstrate that the checker actually catches
coherence violations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

__all__ = ["Freshness", "ProtocolVariant", "BlockState", "AbstractMachineState",
           "C3DAbstractModel", "InvariantViolation"]


class Freshness(enum.Enum):
    """Abstract data value: FRESH is the most recently written value."""

    FRESH = "fresh"
    STALE = "stale"


class ProtocolVariant(enum.Enum):
    """Which protocol the abstract model follows."""

    CLEAN = "clean"                      # C3D
    CLEAN_FULL_DIR = "clean-full-dir"    # C3D + idealised full directory
    DIRTY_FULL_DIR = "dirty-full-dir"    # the naive inclusive-directory design
    BROKEN_NO_BROADCAST = "broken-no-broadcast"  # deliberately incoherent


class BlockState(enum.Enum):
    """MSI state of the block in a socket's LLC."""

    I = "I"  # noqa: E741 - single-letter states mirror the paper
    S = "S"
    M = "M"


@dataclass(frozen=True)
class SocketState:
    """Per-socket portion of the abstract machine state."""

    llc: BlockState = BlockState.I
    llc_fresh: bool = False
    dram_valid: bool = False
    dram_fresh: bool = False
    dram_dirty: bool = False


@dataclass(frozen=True)
class DirectoryAbstractState:
    """Global directory entry for the single modelled block."""

    state: BlockState = BlockState.I
    owner: Optional[int] = None
    sharers: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class AbstractMachineState:
    """Complete abstract machine state (hashable, used as a graph node)."""

    sockets: Tuple[SocketState, ...]
    directory: DirectoryAbstractState
    memory_fresh: bool = True

    @classmethod
    def initial(cls, num_sockets: int) -> "AbstractMachineState":
        return cls(
            sockets=tuple(SocketState() for _ in range(num_sockets)),
            directory=DirectoryAbstractState(),
            memory_fresh=True,
        )

    def replace_socket(self, index: int, socket: SocketState) -> "AbstractMachineState":
        sockets = list(self.sockets)
        sockets[index] = socket
        return AbstractMachineState(tuple(sockets), self.directory, self.memory_fresh)


@dataclass(frozen=True)
class InvariantViolation:
    """A violated invariant plus the action that exposed it."""

    invariant: str
    action: str
    detail: str


class C3DAbstractModel:
    """Enabled-action semantics of the abstract protocol.

    The model checker drives this object; it is purely functional (methods
    take a state and return successor states) so states can be shared and
    hashed freely.
    """

    def __init__(self, num_sockets: int = 2,
                 variant: ProtocolVariant = ProtocolVariant.CLEAN) -> None:
        if num_sockets < 1:
            raise ValueError("num_sockets must be >= 1")
        self.num_sockets = num_sockets
        self.variant = variant

    # ------------------------------------------------------------------
    # Action enumeration
    # ------------------------------------------------------------------

    def initial_state(self) -> AbstractMachineState:
        return AbstractMachineState.initial(self.num_sockets)

    def actions(self, state: AbstractMachineState) -> Iterator[Tuple[str, AbstractMachineState]]:
        """Yield ``(action_name, successor_state)`` for every enabled action."""
        for socket_id in range(self.num_sockets):
            yield f"read[{socket_id}]", self.read(state, socket_id)
            yield f"write[{socket_id}]", self.write(state, socket_id)
            if state.sockets[socket_id].llc is not BlockState.I:
                yield f"llc_evict[{socket_id}]", self.llc_evict(state, socket_id)
            if state.sockets[socket_id].dram_valid:
                yield f"dram_evict[{socket_id}]", self.dram_evict(state, socket_id)

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------

    def check_invariants(self, state: AbstractMachineState, action: str) -> List[InvariantViolation]:
        """Structural invariants that must hold in every reachable state."""
        violations: List[InvariantViolation] = []

        modified = [i for i, s in enumerate(state.sockets) if s.llc is BlockState.M]
        valid_onchip = [i for i, s in enumerate(state.sockets) if s.llc is not BlockState.I]
        if len(modified) > 1:
            violations.append(InvariantViolation("SWMR", action, f"multiple M holders {modified}"))
        if modified and len(valid_onchip) > 1:
            violations.append(
                InvariantViolation(
                    "SWMR", action,
                    f"M holder {modified} coexists with on-chip copies {valid_onchip}",
                )
            )

        clean_variants = (
            ProtocolVariant.CLEAN,
            ProtocolVariant.CLEAN_FULL_DIR,
            ProtocolVariant.BROKEN_NO_BROADCAST,
        )
        if self.variant in clean_variants:
            for i, s in enumerate(state.sockets):
                if s.dram_dirty:
                    violations.append(
                        InvariantViolation("clean-dram-cache", action, f"socket {i} holds dirty DRAM line")
                    )

        if not modified and not any(s.dram_dirty for s in state.sockets):
            if not state.memory_fresh:
                violations.append(
                    InvariantViolation(
                        "memory-currency", action,
                        "memory is stale although no modified/dirty copy exists",
                    )
                )

        if state.directory.state is BlockState.M:
            owner = state.directory.owner
            ok = owner is not None and (
                state.sockets[owner].llc is BlockState.M
                or (self.variant is ProtocolVariant.DIRTY_FULL_DIR and state.sockets[owner].dram_dirty)
            )
            if not ok:
                violations.append(
                    InvariantViolation(
                        "directory-owner", action,
                        f"directory M entry points at socket {owner} without a modified copy",
                    )
                )
        return violations

    def check_read_value(self, state: AbstractMachineState, socket_id: int,
                         source_fresh: bool, action: str) -> List[InvariantViolation]:
        """Per-location SC (data-value invariant): every read returns FRESH data."""
        if source_fresh:
            return []
        return [
            InvariantViolation(
                "data-value", action,
                f"read at socket {socket_id} observed STALE data",
            )
        ]

    # ------------------------------------------------------------------
    # Action semantics
    # ------------------------------------------------------------------

    def _invalidate_socket(self, socket: SocketState) -> SocketState:
        return SocketState()

    def read(self, state: AbstractMachineState, requester: int) -> AbstractMachineState:
        sock = state.sockets[requester]
        directory = state.directory

        # On-chip hit.
        if sock.llc is not BlockState.I:
            self._last_read_fresh = sock.llc_fresh
            return state
        # Local DRAM-cache hit.
        if sock.dram_valid:
            self._last_read_fresh = sock.dram_fresh
            new_sock = SocketState(
                llc=BlockState.S, llc_fresh=sock.dram_fresh,
                dram_valid=True, dram_fresh=sock.dram_fresh, dram_dirty=sock.dram_dirty,
            )
            state = state.replace_socket(requester, new_sock)
            if self.variant in (ProtocolVariant.CLEAN_FULL_DIR, ProtocolVariant.DIRTY_FULL_DIR):
                directory = self._dir_add_sharer(state.directory, requester)
                state = AbstractMachineState(state.sockets, directory, state.memory_fresh)
            return state

        # Global GetS.
        sockets = list(state.sockets)
        memory_fresh = state.memory_fresh
        if directory.state is BlockState.M and directory.owner is not None \
                and directory.owner != requester:
            owner = directory.owner
            owner_state = sockets[owner]
            if owner_state.llc is BlockState.M:
                data_fresh = owner_state.llc_fresh
                # Owner downgrades; dirty data written through to memory.
                sockets[owner] = SocketState(
                    llc=BlockState.S, llc_fresh=owner_state.llc_fresh,
                    dram_valid=owner_state.dram_valid, dram_fresh=owner_state.dram_fresh,
                    dram_dirty=False if self._is_clean() else owner_state.dram_dirty,
                )
                memory_fresh = data_fresh
            else:
                # Dirty copy lives in the owner's DRAM cache (dirty designs only).
                data_fresh = owner_state.dram_fresh
                sockets[owner] = SocketState(
                    llc=owner_state.llc, llc_fresh=owner_state.llc_fresh,
                    dram_valid=owner_state.dram_valid, dram_fresh=owner_state.dram_fresh,
                    dram_dirty=False,
                )
                memory_fresh = data_fresh
            directory = DirectoryAbstractState(
                BlockState.S, None, frozenset({owner, requester})
            )
        else:
            data_fresh = memory_fresh
            if directory.state is BlockState.S or self.variant in (
                ProtocolVariant.CLEAN_FULL_DIR, ProtocolVariant.DIRTY_FULL_DIR
            ):
                directory = self._dir_add_sharer(directory, requester)
            # Plain C3D: GetS in Invalid stays untracked.

        requester_state = sockets[requester]
        sockets[requester] = SocketState(
            llc=BlockState.S, llc_fresh=data_fresh,
            dram_valid=requester_state.dram_valid,
            dram_fresh=requester_state.dram_fresh,
            dram_dirty=requester_state.dram_dirty,
        )
        self._last_read_fresh = data_fresh
        return AbstractMachineState(tuple(sockets), directory, memory_fresh)

    def write(self, state: AbstractMachineState, requester: int) -> AbstractMachineState:
        sockets = list(state.sockets)
        directory = state.directory
        memory_fresh = state.memory_fresh
        sock = sockets[requester]

        if sock.llc is BlockState.M:
            # Write hit with Modified permission; the new value supersedes all,
            # including any older dirty copy in the local DRAM cache (its
            # dirty bit is dropped -- the LLC copy will be written back).
            sockets[requester] = SocketState(
                llc=BlockState.M, llc_fresh=True,
                dram_valid=sock.dram_valid, dram_fresh=False, dram_dirty=False,
            )
            return self._after_write(sockets, directory, requester)

        if directory.state is BlockState.M and directory.owner is not None \
                and directory.owner != requester:
            sockets[directory.owner] = self._invalidate_socket(sockets[directory.owner])
        elif directory.state is BlockState.S:
            for target in directory.sharers:
                if target != requester:
                    sockets[target] = self._invalidate_socket(sockets[target])
        else:
            # Untracked (Invalid) block: C3D must broadcast; the broken
            # variant (and nothing else) skips it.
            if self.variant is not ProtocolVariant.BROKEN_NO_BROADCAST:
                for target in range(self.num_sockets):
                    if target != requester:
                        sockets[target] = self._invalidate_socket(sockets[target])

        sock = sockets[requester]
        sockets[requester] = SocketState(
            llc=BlockState.M, llc_fresh=True,
            dram_valid=sock.dram_valid, dram_fresh=False, dram_dirty=False,
        )
        return self._after_write(sockets, directory, requester)

    def _after_write(self, sockets: List[SocketState], directory: DirectoryAbstractState,
                     requester: int) -> AbstractMachineState:
        new_sockets: List[SocketState] = []
        for i, s in enumerate(sockets):
            if i == requester:
                new_sockets.append(s)
            else:
                # Any surviving copy elsewhere is now stale data.
                new_sockets.append(
                    SocketState(
                        llc=s.llc, llc_fresh=False,
                        dram_valid=s.dram_valid, dram_fresh=False, dram_dirty=s.dram_dirty,
                    )
                )
        directory = DirectoryAbstractState(BlockState.M, requester, frozenset({requester}))
        return AbstractMachineState(tuple(new_sockets), directory, memory_fresh=False)

    def llc_evict(self, state: AbstractMachineState, socket_id: int) -> AbstractMachineState:
        sock = state.sockets[socket_id]
        directory = state.directory
        memory_fresh = state.memory_fresh
        if sock.llc is BlockState.I:
            return state

        dram_valid, dram_fresh, dram_dirty = sock.dram_valid, sock.dram_fresh, sock.dram_dirty
        if self._has_dram_cache():
            dram_valid = True
            dram_fresh = sock.llc_fresh
            # A clean victim inserted over an already-dirty DRAM line must not
            # clear the dirty bit (mirrors DRAMCache.insert's dirty |= ...).
            dram_dirty = sock.dram_dirty or (
                (sock.llc is BlockState.M) and not self._is_clean()
            )

        if sock.llc is BlockState.M:
            if self._is_clean():
                memory_fresh = sock.llc_fresh
            if self.variant is ProtocolVariant.CLEAN_FULL_DIR:
                directory = DirectoryAbstractState(
                    BlockState.S, None, frozenset({socket_id})
                )
            elif self.variant is ProtocolVariant.DIRTY_FULL_DIR:
                directory = directory  # stays Modified at this socket (dirty DRAM copy)
            else:
                directory = DirectoryAbstractState()

        new_sock = SocketState(
            llc=BlockState.I, llc_fresh=False,
            dram_valid=dram_valid, dram_fresh=dram_fresh, dram_dirty=dram_dirty,
        )
        return AbstractMachineState(
            tuple(
                new_sock if i == socket_id else s for i, s in enumerate(state.sockets)
            ),
            directory,
            memory_fresh,
        )

    def dram_evict(self, state: AbstractMachineState, socket_id: int) -> AbstractMachineState:
        sock = state.sockets[socket_id]
        if not sock.dram_valid:
            return state
        memory_fresh = state.memory_fresh
        directory = state.directory
        if sock.dram_dirty:
            memory_fresh = sock.dram_fresh
            if directory.state is BlockState.M and directory.owner == socket_id:
                if sock.llc is BlockState.I:
                    directory = DirectoryAbstractState()
                elif sock.llc is BlockState.S:
                    # The socket still holds a clean, current on-chip copy:
                    # the write-back downgrades the entry to Shared.
                    directory = DirectoryAbstractState(
                        BlockState.S, None, frozenset({socket_id})
                    )
                # If the LLC holds the block Modified, the DRAM copy being
                # written back is an older value; the entry stays Modified.
        new_sock = SocketState(
            llc=sock.llc, llc_fresh=sock.llc_fresh,
            dram_valid=False, dram_fresh=False, dram_dirty=False,
        )
        return AbstractMachineState(
            tuple(
                new_sock if i == socket_id else s for i, s in enumerate(state.sockets)
            ),
            directory,
            memory_fresh,
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _is_clean(self) -> bool:
        return self.variant in (
            ProtocolVariant.CLEAN,
            ProtocolVariant.CLEAN_FULL_DIR,
            ProtocolVariant.BROKEN_NO_BROADCAST,
        )

    def _has_dram_cache(self) -> bool:
        return True

    @staticmethod
    def _dir_add_sharer(directory: DirectoryAbstractState, socket_id: int) -> DirectoryAbstractState:
        if directory.state is BlockState.M:
            return directory
        return DirectoryAbstractState(
            BlockState.S, None, frozenset(set(directory.sharers) | {socket_id})
        )

    # The freshness of the data returned by the most recent read() call;
    # consumed by the model checker to evaluate the data-value invariant.
    _last_read_fresh: bool = True

    def last_read_was_fresh(self) -> bool:
        return self._last_read_fresh
