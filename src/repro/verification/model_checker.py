"""Explicit-state model checker for the abstract C3D protocol model.

Performs a breadth-first exploration of every state reachable from the
initial state by interleaving the abstract actions (reads, writes, LLC
evictions, DRAM-cache evictions from every socket), checking the structural
invariants and the data-value (per-location SC) invariant after every
transition -- the reproduction-scale analogue of the paper's Murphi
verification.

The FRESH/STALE value abstraction keeps the state space finite (a few
thousand states for 2-4 sockets), so the full space is explored in well under
a second; no depth bound is needed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .protocol_model import (
    AbstractMachineState,
    C3DAbstractModel,
    InvariantViolation,
    ProtocolVariant,
)

__all__ = ["CheckResult", "ModelChecker", "check_protocol"]


@dataclass
class CheckResult:
    """Outcome of a model-checking run."""

    variant: ProtocolVariant
    num_sockets: int
    states_explored: int
    transitions_explored: int
    violations: List[InvariantViolation] = field(default_factory=list)
    counterexample: Optional[List[str]] = None

    @property
    def passed(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        lines = [
            f"[{status}] {self.variant.value} protocol, {self.num_sockets} sockets: "
            f"{self.states_explored} states, {self.transitions_explored} transitions"
        ]
        for violation in self.violations[:10]:
            lines.append(
                f"  violated {violation.invariant} on {violation.action}: {violation.detail}"
            )
        if self.counterexample:
            lines.append("  counterexample trace: " + " -> ".join(self.counterexample))
        return "\n".join(lines)


class ModelChecker:
    """Breadth-first exhaustive explorer of the abstract protocol."""

    def __init__(self, model: C3DAbstractModel, *, max_states: int = 200_000) -> None:
        self.model = model
        self.max_states = max_states

    def run(self, *, stop_at_first_violation: bool = True) -> CheckResult:
        """Explore the reachable state space and check invariants."""
        model = self.model
        initial = model.initial_state()
        result = CheckResult(
            variant=model.variant, num_sockets=model.num_sockets,
            states_explored=0, transitions_explored=0,
        )

        # parent map for counterexample reconstruction: state -> (parent, action)
        parents: Dict[AbstractMachineState, Tuple[Optional[AbstractMachineState], str]] = {
            initial: (None, "<init>")
        }
        queue = deque([initial])

        initial_violations = model.check_invariants(initial, "<init>")
        if initial_violations:
            result.violations.extend(initial_violations)
            result.counterexample = ["<init>"]
            if stop_at_first_violation:
                return result

        while queue:
            state = queue.popleft()
            result.states_explored += 1
            if result.states_explored > self.max_states:
                raise RuntimeError(
                    f"state-space explosion: more than {self.max_states} states; "
                    "increase max_states or reduce num_sockets"
                )

            for action, successor in model.actions(state):
                result.transitions_explored += 1
                violations = model.check_invariants(successor, action)
                if action.startswith("read["):
                    socket_id = int(action[action.index("[") + 1 : action.index("]")])
                    violations.extend(
                        model.check_read_value(
                            successor, socket_id, model.last_read_was_fresh(), action
                        )
                    )
                if violations:
                    result.violations.extend(violations)
                    if result.counterexample is None:
                        result.counterexample = self._trace(parents, state) + [action]
                    if stop_at_first_violation:
                        return result
                if successor not in parents:
                    parents[successor] = (state, action)
                    queue.append(successor)
        return result

    @staticmethod
    def _trace(
        parents: Dict[AbstractMachineState, Tuple[Optional[AbstractMachineState], str]],
        state: AbstractMachineState,
    ) -> List[str]:
        """Reconstruct the action sequence leading to ``state``."""
        actions: List[str] = []
        current: Optional[AbstractMachineState] = state
        while current is not None:
            parent, action = parents[current]
            if parent is not None:
                actions.append(action)
            current = parent
        return list(reversed(actions))


def check_protocol(
    variant: ProtocolVariant = ProtocolVariant.CLEAN,
    *,
    num_sockets: int = 2,
    stop_at_first_violation: bool = True,
) -> CheckResult:
    """Convenience wrapper: build the model and run the checker."""
    model = C3DAbstractModel(num_sockets=num_sockets, variant=variant)
    checker = ModelChecker(model)
    return checker.run(stop_at_first_violation=stop_at_first_violation)
