"""Protocol verification: abstract model + explicit-state model checker."""

from .model_checker import CheckResult, ModelChecker, check_protocol
from .protocol_model import (
    AbstractMachineState,
    BlockState,
    C3DAbstractModel,
    DirectoryAbstractState,
    Freshness,
    InvariantViolation,
    ProtocolVariant,
    SocketState,
)

__all__ = [
    "C3DAbstractModel",
    "AbstractMachineState",
    "SocketState",
    "DirectoryAbstractState",
    "BlockState",
    "Freshness",
    "ProtocolVariant",
    "InvariantViolation",
    "ModelChecker",
    "CheckResult",
    "check_protocol",
]
