"""``repro bench``: the simulator-throughput microbenchmark as a CLI command.

Runs the same scenario as ``benchmarks/test_simulator_throughput.py`` (the
facesim workload on the scaled quad-socket machine, DRAM caches pre-warmed)
for both the ``baseline`` and ``c3d`` designs and both execution engines
(``compiled`` -- the array-backed fast engine -- and ``object`` -- the legacy
one-dataclass-per-access engine the seed shipped with), and appends one JSON
record per invocation to ``BENCH_throughput.json`` so the performance
trajectory is tracked across PRs.

Usage::

    python -m repro bench
    python -m repro bench --accesses 2000 --rounds 5 --output BENCH_throughput.json
    python -m repro bench --store results/demo   # also persist the runs
    python -m repro bench --sampled              # exact-vs-sampled wall clock

With ``--store DIR`` each measured simulation's statistics are additionally
written to the persistent results store under its sweep-point content key
(see ``docs/campaigns.md``), so a later campaign or ``repro report`` over
the same points starts warm instead of re-simulating them.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from . import engines as engine_registry
from .system.config import SystemConfig
from .system.numa_system import NumaSystem
from .system.simulator import Simulator
from .workloads.scenario import build_workload

__all__ = ["run_benchmark", "build_parser", "main"]

DEFAULT_OUTPUT = "BENCH_throughput.json"
DEFAULT_PROTOCOLS = ("baseline", "c3d")


def _run_once(
    protocol: str,
    engine: str,
    *,
    scale: int,
    accesses: int,
    workload: str,
    trace_dir: Optional[str] = None,
    scenario: Optional[str] = None,
    sample_plan=None,
    engine_jobs: Optional[int] = None,
) -> Dict:
    config = SystemConfig.quad_socket(protocol=protocol).scaled(scale)
    system = NumaSystem(config)
    wl = build_workload(
        num_sockets=config.num_sockets,
        cores_per_socket=config.cores_per_socket,
        workload=workload,
        trace_dir=trace_dir,
        scenario=scenario,
        scale=scale,
        accesses_per_thread=accesses,
    )
    engine_options = {"jobs": engine_jobs} if engine_jobs is not None else None
    simulator = Simulator(
        system, wl, engine=engine, sample_plan=sample_plan,
        engine_options=engine_options,
    )
    # Collect before timing: garbage from earlier rounds otherwise inflates
    # both timing noise and the copy-on-write cost of forked measurement
    # children (sampled/sampled-par).
    gc.collect()
    started = time.perf_counter()
    result = simulator.run(prewarm=True)
    elapsed = time.perf_counter() - started
    measurement = {
        "executed": result.accesses_executed,
        "seconds": elapsed,
        "accesses_per_sec": result.accesses_executed / elapsed if elapsed > 0 else 0.0,
    }
    return measurement, result


def _git_sha() -> Optional[str]:
    """The simulated tree's commit hash, or ``None`` outside its checkout.

    Guards against attributing the record to an unrelated enclosing
    repository (e.g. a pip-installed copy whose site-packages happens to
    live inside some other git checkout): the discovered worktree must
    actually be this project (it contains ``src/repro``).
    """
    import subprocess

    here = Path(__file__).resolve().parent

    def _git(*argv: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ["git", *argv], cwd=here,
                capture_output=True, text=True, timeout=5,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        value = out.stdout.strip()
        return value if out.returncode == 0 and value else None

    toplevel = _git("rev-parse", "--show-toplevel")
    if toplevel is None or not (Path(toplevel) / "src" / "repro").is_dir():
        return None
    return _git("rev-parse", "HEAD")


def _store_run(store, protocol: str, engine: str, result, elapsed: float, *,
               scale: int, accesses: int, workload: str,
               trace_dir: Optional[str], scenario: Optional[str],
               sample_plan: Optional[str] = None) -> None:
    """Persist one measured run under its sweep-point content key."""
    from .experiments.runner import SweepPoint, sweep_point_key, sweep_point_payload
    from .stats.store import StoredRun

    point = SweepPoint(
        workload=workload, protocol=protocol, scale=scale,
        accesses_per_thread=accesses, warmup_accesses_per_thread=0,
        trace_dir=trace_dir, scenario=scenario, sample_plan=sample_plan,
    )
    store.put(StoredRun(
        key=sweep_point_key(point, engine),
        params=sweep_point_payload(point, engine),
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=elapsed,
    ))


def run_benchmark(
    *,
    protocols=DEFAULT_PROTOCOLS,
    engines=("compiled", "object"),
    scale: int = 1024,
    accesses: int = 400,
    rounds: int = 3,
    workload: str = "facesim",
    trace_dir: Optional[str] = None,
    scenario: Optional[str] = None,
    sampled: bool = False,
    sample_plan: Optional[str] = None,
    engine_jobs: Optional[int] = None,
    store=None,
) -> Dict:
    """Run the throughput microbenchmark; returns one JSON-ready record.

    Each (protocol, engine) pair is run ``rounds`` times after one warm-up
    round; the best round is reported (the container-level noise on shared
    machines makes best-of more stable than the mean).  ``trace_dir``
    replays a recorded trace directory instead of generating ``workload``
    (measuring the file-backed frontend, chunked trace compilation
    included); ``scenario`` benchmarks a composed multi-program mix.

    ``sampled`` additionally measures every protocol under the ``sampled``
    engine (``sample_plan`` optionally pins the plan spec; default: derived
    from the trace length) and records a ``sampled_speedup_<protocol>``
    wall-clock ratio against the exact compiled engine -- the number that
    shows what statistical sampling buys on this machine.

    ``engine_jobs`` forwards a worker count to engines with their own
    process pool (``sampled-par``); the record stores the machine's
    ``cpu_count`` and the *effective* job count (after the
    nested-parallelism clamp) so parallel numbers stay interpretable across
    machines, and measuring both ``sampled`` and ``sampled-par`` records a
    ``parallel_speedup_<protocol>`` serial-vs-parallel wall-clock ratio.

    The record's ``timestamp`` is read when the measurements complete (never
    at import time) and ``git_sha`` names the simulated tree when available,
    so appended bench artifacts stay attributable.  With a ``store`` (a
    :class:`~repro.stats.store.ResultsStore`), each measured pair's
    statistics are persisted under their sweep-point key so campaigns and
    ``repro report`` can reuse them (simulations are deterministic, so every
    round produces the same statistics -- only the timing varies).
    """
    measurements: Dict[str, Dict] = {}
    run_kwargs = dict(scale=scale, accesses=accesses, workload=workload,
                      trace_dir=trace_dir, scenario=scenario)
    engines = [engine_registry.validate(engine) for engine in engines]
    if sampled and "sampled" not in engines:
        engines.append("sampled")
    plan = None
    if sample_plan is not None:
        from .stats.sampling import SamplingPlan

        plan = SamplingPlan.from_spec(sample_plan)
    for protocol in protocols:
        for engine in engines:
            # Capability flag, not a name comparison: any registered
            # sampling engine gets the plan.
            samples = engine_registry.get(engine).supports_sampling
            engine_kwargs = dict(run_kwargs)
            if samples:
                engine_kwargs["sample_plan"] = plan
            if engine_jobs is not None:
                engine_kwargs["engine_jobs"] = engine_jobs
            _run_once(protocol, engine, **engine_kwargs)
            runs: List[tuple] = [
                _run_once(protocol, engine, **engine_kwargs) for _ in range(rounds)
            ]
            best, best_result = max(runs, key=lambda r: r[0]["accesses_per_sec"])
            measurements[f"{protocol}/{engine}"] = {
                "accesses_per_sec": round(best["accesses_per_sec"], 1),
                "seconds_best": round(best["seconds"], 4),
                "executed": best["executed"],
                "rounds": rounds,
            }
            if store is not None:
                _store_run(store, protocol, engine, best_result, best["seconds"],
                           sample_plan=sample_plan if samples else None,
                           **run_kwargs)
    if trace_dir is not None:
        workload_label = f"trace:{trace_dir}"
    elif scenario is not None:
        workload_label = f"scenario:{scenario}"
    else:
        workload_label = workload
    from .engines.sampled_par import effective_jobs

    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "git_sha": _git_sha(),
        "workload": workload_label,
        "scale": scale,
        "accesses_per_core": accesses,
        "python": platform.python_version(),
        # Parallel numbers are only interpretable with the machine size and
        # the job count that actually ran (after the nested-parallelism
        # clamp) next to them.
        "cpu_count": os.cpu_count(),
        "engine_jobs": effective_jobs(engine_jobs),
        "measurements": measurements,
    }
    for protocol in protocols:
        compiled = measurements.get(f"{protocol}/compiled")
        legacy = measurements.get(f"{protocol}/object")
        if compiled and legacy and legacy["accesses_per_sec"] > 0:
            record[f"speedup_{protocol}_compiled_vs_object"] = round(
                compiled["accesses_per_sec"] / legacy["accesses_per_sec"], 2
            )
        sampled_row = measurements.get(f"{protocol}/sampled")
        if compiled and sampled_row and sampled_row["seconds_best"] > 0:
            # Wall-clock ratio over the same trace: what sampling saves.
            record[f"sampled_speedup_{protocol}"] = round(
                compiled["seconds_best"] / sampled_row["seconds_best"], 2
            )
        vector_row = measurements.get(f"{protocol}/vector")
        if legacy and vector_row and vector_row["seconds_best"] > 0:
            # Wall-clock ratio against the per-object reference engine over
            # the same trace: what columnar batching buys (docs/performance.md,
            # "Vectorized execution"; floors in benchmarks/baseline.json).
            record[f"vector_speedup_{protocol}"] = round(
                legacy["seconds_best"] / vector_row["seconds_best"], 2
            )
        par_row = measurements.get(f"{protocol}/sampled-par")
        if sampled_row and par_row and par_row["seconds_best"] > 0:
            # Serial-vs-parallel wall clock of the *same* sampled run: what
            # window-parallel execution buys on this machine at the
            # effective job count (docs/performance.md, "Parallel windows";
            # floors in benchmarks/baseline.json).
            record[f"parallel_speedup_{protocol}"] = round(
                sampled_row["seconds_best"] / par_row["seconds_best"], 2
            )
    return record


def append_record(record: Dict, output: Path) -> None:
    """Append ``record`` to the JSON list in ``output`` (creating it if needed)."""
    history: List[Dict] = []
    if output.exists():
        try:
            history = json.loads(output.read_text())
            if not isinstance(history, list):
                history = [history]
        except (ValueError, OSError) as exc:
            # Never silently discard the cross-PR trajectory: keep the
            # unparsable file next to the fresh one.
            backup = output.with_name(output.name + ".corrupt")
            output.replace(backup)
            print(
                f"warning: could not parse {output} ({exc}); "
                f"preserved as {backup} and starting a new history",
                file=sys.stderr,
            )
    history.append(record)
    output.write_text(json.dumps(history, indent=2) + "\n")


def build_parser() -> argparse.ArgumentParser:
    from .cli_common import engine_jobs_options, store_options

    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Run the simulator-throughput microbenchmark.",
        parents=[store_options(
            store_help="also persist each measured run's statistics to "
                       "this results store (docs/campaigns.md)",
            json_help="print the benchmark record as one JSON line "
                      "(default: indented)",
        ), engine_jobs_options()],
    )
    parser.add_argument("--scale", type=int, default=1024)
    parser.add_argument("--accesses", type=int, default=400,
                        help="measured accesses per core")
    parser.add_argument("--rounds", type=int, default=3, help="timed rounds per point")
    parser.add_argument("--workload", default="facesim")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="benchmark replay of a recorded trace directory "
                             "instead of generating --workload")
    parser.add_argument("--scenario", default=None, metavar="NAME_OR_JSON",
                        help="benchmark a composed scenario instead of "
                             "--workload (exclusive with --trace-dir)")
    parser.add_argument("--protocols", nargs="+", default=list(DEFAULT_PROTOCOLS))
    parser.add_argument("--engines", nargs="+", default=["compiled", "object"],
                        metavar="NAME",
                        help="execution engines to measure (registry: "
                             f"{', '.join(engine_registry.names())})")
    parser.add_argument("--sampled", action="store_true",
                        help="also measure the sampled engine and record the "
                             "exact-vs-sampled wall-clock speedup per protocol "
                             "(docs/sampling.md)")
    parser.add_argument("--sample-plan", default=None, metavar="SPEC",
                        help="sampling plan spec for --sampled (default: "
                             "derived from the trace length)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT,
                        help="JSON history file to append to ('-' to skip writing)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        for engine in args.engines:
            engine_registry.validate(engine)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    store = None
    if args.store is not None:
        from .stats.store import ResultsStore

        store = ResultsStore(args.store)
    record = run_benchmark(
        protocols=tuple(args.protocols),
        engines=tuple(args.engines),
        scale=args.scale,
        accesses=args.accesses,
        rounds=args.rounds,
        workload=args.workload,
        trace_dir=args.trace_dir,
        scenario=args.scenario,
        # Giving a plan implies measuring it (mirrors the main CLI, where
        # --sample-plan switches the engine).
        sampled=args.sampled or args.sample_plan is not None,
        sample_plan=args.sample_plan,
        engine_jobs=args.engine_jobs,
        store=store,
    )
    if args.json:
        print(json.dumps(record, sort_keys=True))
    else:
        print(json.dumps(record, indent=2))
    if args.output != "-":
        output = Path(args.output)
        append_record(record, output)
        print(f"\nappended to {output}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
