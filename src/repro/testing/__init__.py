"""Test-support subsystems shipped with the package.

:mod:`repro.testing.faults` is the deterministic fault-injection harness
used by the chaos tests and the CI ``chaos-smoke`` job (docs/robustness.md).
It lives inside the package -- not under ``tests/`` -- because the faults
must be injectable into *real* campaign worker subprocesses, which import
``repro`` but not the test tree.
"""

from . import faults

__all__ = ["faults"]
