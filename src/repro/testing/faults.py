"""Deterministic, seed-driven fault injection for chaos-testing campaigns.

The execution layer's failure handling (docs/robustness.md) is only
trustworthy if it can be exercised against *real* faults on the *real*
subprocess path: workers that raise, workers that hang, store appends that
fail with ``OSError`` and record lines that land truncated or corrupted on
disk.  This module injects exactly those faults, deterministically:

* Every injection decision is a pure function of ``(seed, site, key,
  attempt)`` -- a SHA-256 roll, no global RNG state -- so a chaos run is
  reproducible bit-for-bit from its :class:`FaultPlan`, independent of
  worker scheduling order, and a *retry* of the same point re-rolls (the
  attempt number participates), which is what lets an injected crash rate
  model transient failures rather than permanent ones.
* The plan installs through the ``REPRO_FAULTS`` environment variable (a
  JSON object), which forked/spawned campaign workers inherit -- so the
  chaos tests and the CI ``chaos-smoke`` job drive the production
  ``run_sweep`` machinery unmodified, not a test double.

The hooks are called from two production sites, both no-ops when no plan is
installed: :func:`repro.experiments.runner._run_sweep_point` (worker
entry: poison / crash / hang) and :meth:`repro.stats.store.ResultsStore.put`
(append ``OSError`` / truncated or corrupted record lines).

Example::

    from repro.testing import faults

    plan = faults.FaultPlan(
        seed=7,
        crash_rate=0.2,                      # transient worker crashes
        poison=({"workload": "streamcluster", "protocol": "c3d"},),
        hang_points=({"workload": "facesim"},),
        hang_s=1.0,
    )
    with faults.injected(plan):
        run_campaign(spec, store, failure_policy=FailurePolicy(...))
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, fields
from typing import Iterator, Mapping, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "InjectedFault",
    "FaultPlan",
    "active",
    "install",
    "clear",
    "injected",
]

#: Environment variable holding the JSON-serialised active plan; inherited
#: by campaign worker subprocesses, which is the whole point.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """A worker failure raised on purpose by the fault harness."""


def _roll(seed: int, site: str, key: str, attempt: int = 0) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one injection decision.

    Keyed by the decision *site* (crash/hang/...) so one point's draws are
    independent across fault kinds, and by the attempt number so retries
    re-roll instead of failing forever.
    """
    token = f"{seed}|{site}|{key}|{attempt}".encode("utf-8")
    digest = hashlib.sha256(token).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


def _matches(matcher: Mapping, payload: Mapping) -> bool:
    """True when every ``field: value`` of ``matcher`` equals the payload's."""
    return all(payload.get(name) == value for name, value in matcher.items())


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic recipe of faults to inject (all rates in ``[0, 1]``).

    ``poison`` / ``hang_points`` are tuples of ``{field: value}`` matchers
    compared against the sweep point's store payload (``workload``,
    ``protocol``, ``num_sockets``, ...): a point matching any ``poison``
    entry fails on *every* attempt (this is what the quarantine exists
    for), a point matching any ``hang_points`` entry sleeps ``hang_s``
    before simulating (use a hang longer than the watchdog timeout to test
    the kill path, shorter to test that slow points still complete).

    ``crash_attempts`` unconditionally crashes those attempt numbers of
    every point -- the deterministic way to test "fails once, retry
    succeeds" without tuning rates.
    """

    seed: int = 0
    #: Probability that any given (point, attempt) raises InjectedFault.
    crash_rate: float = 0.0
    #: Attempt numbers (1-based) that always crash, for every point.
    crash_attempts: Tuple[int, ...] = ()
    #: Matchers for points that fail on every attempt (poison points).
    poison: Tuple[Mapping, ...] = ()
    #: Probability that any given (point, attempt) hangs for ``hang_s``.
    hang_rate: float = 0.0
    #: Matchers for points that always hang on their first attempt.
    hang_points: Tuple[Mapping, ...] = ()
    #: Injected hang duration in seconds.
    hang_s: float = 30.0
    #: Probability that a store append raises OSError before writing.
    store_error_rate: float = 0.0
    #: Probability that an appended record line is truncated mid-write.
    truncate_rate: float = 0.0
    #: Probability that an appended record line is corrupted in place.
    corrupt_rate: float = 0.0

    # ------------------------------------------------------------------
    # Worker faults (called at the top of the sweep-point worker)
    # ------------------------------------------------------------------

    def is_poison(self, payload: Mapping) -> bool:
        """True when ``payload`` matches any poison matcher."""
        return any(_matches(matcher, payload) for matcher in self.poison)

    def inject_point_faults(self, key: str, payload: Mapping, attempt: int) -> None:
        """Run the worker-side injections for one (point, attempt).

        Order: hang first (a slow point), then poison / attempt-pinned /
        rolled crashes.  Hangs sleep and return; crashes raise
        :class:`InjectedFault`, which the retry machinery treats exactly
        like any other worker exception.
        """
        hangs = any(_matches(matcher, payload) for matcher in self.hang_points)
        if attempt > 1:
            hangs = False  # targeted hangs fire once; retries proceed
        if not hangs and self.hang_rate > 0.0:
            hangs = _roll(self.seed, "hang", key, attempt) < self.hang_rate
        if hangs:
            time.sleep(self.hang_s)
        if self.is_poison(payload):
            raise InjectedFault(
                f"injected poison-point failure (attempt {attempt}, key {key[:12]}...)"
            )
        if attempt in self.crash_attempts:
            raise InjectedFault(
                f"injected crash pinned to attempt {attempt} (key {key[:12]}...)"
            )
        if self.crash_rate > 0.0 and _roll(self.seed, "crash", key, attempt) < self.crash_rate:
            raise InjectedFault(
                f"injected worker crash (attempt {attempt}, key {key[:12]}..., "
                f"rate {self.crash_rate})"
            )

    # ------------------------------------------------------------------
    # Store faults (called from ResultsStore.put)
    # ------------------------------------------------------------------

    def inject_store_append_fault(self, key: str) -> None:
        """Possibly raise the injected ``OSError`` for one append."""
        if self.store_error_rate > 0.0 and (
            _roll(self.seed, "store-error", key) < self.store_error_rate
        ):
            raise OSError(f"injected store append failure (key {key[:12]}...)")

    def mangle_append(self, key: str, data: str) -> str:
        """Possibly truncate or corrupt one record line about to be written.

        ``data`` is the full line including its trailing newline.  A
        truncation drops the tail (newline included -- a torn write, as a
        crashed writer leaves); a corruption overwrites a mid-line slice
        with garbage while keeping the line shape, which is exactly the
        damage the per-record checksum exists to catch.
        """
        if self.truncate_rate > 0.0 and _roll(self.seed, "truncate", key) < self.truncate_rate:
            cut = 1 + int(_roll(self.seed, "truncate-at", key) * (len(data) - 2))
            return data[:cut]
        if self.corrupt_rate > 0.0 and _roll(self.seed, "corrupt", key) < self.corrupt_rate:
            body = data.rstrip("\n")
            if len(body) > 8:
                at = 2 + int(_roll(self.seed, "corrupt-at", key) * (len(body) - 8))
                body = body[:at] + "!FAULT!" + body[at + 7:]
            return body + "\n"
        return data

    # ------------------------------------------------------------------
    # Serialisation (the env-var install path)
    # ------------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"{ENV_VAR} is not valid JSON: {exc}") from None
        if not isinstance(payload, Mapping):
            raise ValueError(f"{ENV_VAR} must be a JSON object, got {payload!r}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"{ENV_VAR} has unknown field(s) {unknown}; expected a subset of "
                f"{sorted(known)}"
            )
        kwargs = dict(payload)
        for name in ("poison", "hang_points"):
            if name in kwargs:
                kwargs[name] = tuple(dict(m) for m in kwargs[name])
        if "crash_attempts" in kwargs:
            kwargs["crash_attempts"] = tuple(int(a) for a in kwargs["crash_attempts"])
        return cls(**kwargs)


def active() -> Optional[FaultPlan]:
    """The installed plan, or ``None`` (the common case: no faults).

    Reads the environment on every call -- the harness is only reached from
    per-point / per-append code where one ``os.environ`` lookup is noise,
    and re-reading means a plan installed after process start (or inherited
    by a freshly forked worker) is always honoured.
    """
    text = os.environ.get(ENV_VAR)
    if not text:
        return None
    return FaultPlan.from_json(text)


def install(plan: FaultPlan) -> None:
    """Install ``plan`` into this process's environment (workers inherit it)."""
    os.environ[ENV_VAR] = plan.to_json()


def clear() -> None:
    """Remove any installed plan."""
    os.environ.pop(ENV_VAR, None)


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Context manager: install ``plan``, restore the previous state on exit."""
    previous = os.environ.get(ENV_VAR)
    install(plan)
    try:
        yield plan
    finally:
        if previous is None:
            clear()
        else:
            os.environ[ENV_VAR] = previous
