"""Region-based DRAM-cache miss predictor (Table II: "region-based miss
predictor, 4K-entry, 2-cycle").

The predictor keeps a small, LRU-managed table of recently observed memory
*regions* (4 KiB by default).  Each entry stores a presence bit per block of
the region (MissMap semantics, as in the Loh & Hill design the paper cites):
the bit is set when the block is inserted into the DRAM cache and cleared
when it is evicted or invalidated.  On a DRAM-cache lookup the predictor is
consulted first:

* if the region is untracked, or tracked with the block's bit clear, the
  block is predicted absent and the slow DRAM-cache array access is skipped;
* otherwise the block is predicted present and the array is probed.

Displacing a region entry from the finite table loses its presence bits, so
a subsequent lookup may predict "absent" for a block that is actually
resident.  The :class:`~repro.caches.dram_cache.DRAMCache` double-checks such
predictions against the tag array before trusting them, so displacement can
cost latency/hit-rate but never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from ..memory.address import DEFAULT_LAYOUT, AddressLayout

__all__ = ["RegionMissPredictor"]


class RegionMissPredictor:
    """Region-granularity presence predictor (MissMap) for the DRAM cache."""

    def __init__(
        self,
        *,
        entries: int = 4096,
        region_size: int = 4096,
        layout: Optional[AddressLayout] = None,
    ) -> None:
        self.layout = layout or DEFAULT_LAYOUT
        if entries <= 0:
            raise ValueError("entries must be positive")
        if region_size <= 0 or region_size % self.layout.block_size:
            raise ValueError("region_size must be a positive multiple of the block size")
        self.entries = entries
        self.region_size = region_size
        self._blocks_per_region = region_size // self.layout.block_size
        self._block_size = self.layout.block_size
        # region number -> bitmask of resident blocks, in LRU order.
        self._table: "OrderedDict[int, int]" = OrderedDict()

        self.lookups = 0
        self.predicted_miss = 0
        self.predicted_present = 0
        self.untracked_lookups = 0
        self.region_displacements = 0

    # -- geometry -----------------------------------------------------------

    def region_of_block(self, block: int) -> int:
        """Return the region number containing block number ``block``."""
        return (block * self.layout.block_size) // self.region_size

    def _bit_of_block(self, block: int) -> int:
        return 1 << (block % self._blocks_per_region)

    # -- maintenance ----------------------------------------------------------

    def note_insert(self, block: int) -> None:
        """Record that ``block`` was inserted into the DRAM cache."""
        table = self._table
        region = (block * self._block_size) // self.region_size
        bits = table.get(region)
        if bits is None:
            if len(table) >= self.entries:
                _victim, victim_bits = table.popitem(last=False)
                if victim_bits:
                    self.region_displacements += 1
            bits = 0
        else:
            table.move_to_end(region)
        table[region] = bits | (1 << (block % self._blocks_per_region))

    def note_evict(self, block: int) -> None:
        """Record that ``block`` left the DRAM cache (eviction or invalidation)."""
        table = self._table
        region = (block * self._block_size) // self.region_size
        bits = table.get(region)
        if bits is None:
            return
        table[region] = bits & ~(1 << (block % self._blocks_per_region))
        table.move_to_end(region)

    # -- prediction ---------------------------------------------------------

    def predicts_miss(self, block: int) -> bool:
        """True when the predictor believes ``block`` is absent.

        A ``True`` answer lets the caller skip the DRAM-cache array access.
        The answer can be wrong only for blocks whose region entry was
        displaced from the table (see the module docstring).
        """
        self.lookups += 1
        table = self._table
        region = (block * self._block_size) // self.region_size
        bits = table.get(region)
        if bits is None:
            self.untracked_lookups += 1
            self.predicted_miss += 1
            return True
        table.move_to_end(region)
        if bits & (1 << (block % self._blocks_per_region)):
            self.predicted_present += 1
            return False
        self.predicted_miss += 1
        return True

    # -- statistics -----------------------------------------------------------

    def tracked_regions(self) -> int:
        """Number of regions currently tracked."""
        return len(self._table)

    def tracked_blocks(self) -> int:
        """Number of presence bits currently set across all tracked regions."""
        return sum(bin(bits).count("1") for bits in self._table.values())

    def coverage(self) -> float:
        """Fraction of lookups answered from a tracked region."""
        if not self.lookups:
            return 0.0
        return 1.0 - self.untracked_lookups / self.lookups
