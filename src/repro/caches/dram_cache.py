"""Block-based DRAM cache (Table II: 1 GB, direct-mapped, 64-byte blocks,
40 ns access, region-based miss predictor).

Two operating modes are supported, selected by ``clean``:

* ``clean=True`` (C3D): the cache never holds dirty data.  Modified LLC
  victims are inserted *clean*; the owning socket is responsible for writing
  the data through to memory.  ``insert`` therefore never produces a victim
  that needs a writeback.
* ``clean=False`` (snoopy / full-dir designs): modified LLC victims are
  absorbed dirty, and evicting a dirty line produces a writeback to memory.

The paper's configuration is direct-mapped (``associativity=1``), stored as
one flat ``set index -> line`` dict.  For sensitivity sweeps the cache can
also be built set-associative, in which case each set is an insertion-ordered
dict managed as an intrusive O(1) LRU (hits move the line to the back, the
front line is the victim) -- no victim-list allocation, mirroring
:class:`~repro.caches.sram_cache.SetAssociativeCache`.

The DRAM cache is *non-inclusive* with respect to the on-chip hierarchy in
all designs (section IV-C): it never forces LLC invalidations, and LLC fills
do not have to allocate here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .block import CacheBlockState, CacheLine
from .miss_predictor import RegionMissPredictor

__all__ = ["DRAMCache", "DRAMCacheProbe"]


@dataclass
class DRAMCacheProbe:
    """Result of a DRAM-cache probe.

    ``hit`` tells whether the block was found; ``array_accessed`` tells
    whether the DRAM array had to be accessed (False when the miss predictor
    confidently predicted a miss, in which case the array latency is saved).
    """

    hit: bool
    array_accessed: bool
    dirty: bool = False


# Probe outcomes are immutable to callers, so the hot path returns shared
# instances instead of allocating one per probe.
_PROBE_MISS_BYPASS = DRAMCacheProbe(hit=False, array_accessed=False)
_PROBE_MISS_ARRAY = DRAMCacheProbe(hit=False, array_accessed=True)
_PROBE_HIT_CLEAN = DRAMCacheProbe(hit=True, array_accessed=True, dirty=False)
_PROBE_HIT_DIRTY = DRAMCacheProbe(hit=True, array_accessed=True, dirty=True)


class DRAMCache:
    """Direct-mapped (or optionally set-associative) DRAM cache of 64-byte blocks."""

    def __init__(
        self,
        size_bytes: int,
        *,
        block_size: int = 64,
        associativity: int = 1,
        clean: bool = True,
        name: str = "dram_cache",
        miss_predictor: Optional[RegionMissPredictor] = None,
    ) -> None:
        if size_bytes <= 0 or block_size <= 0 or associativity <= 0:
            raise ValueError("cache geometry parameters must be positive")
        total_blocks = size_bytes // block_size
        if total_blocks == 0:
            raise ValueError(f"{name}: size {size_bytes} smaller than one block")
        if total_blocks % associativity:
            raise ValueError(
                f"{name}: {total_blocks} blocks not divisible by associativity {associativity}"
            )
        self.num_sets = total_blocks // associativity
        self.name = name
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.clean = clean
        self.miss_predictor = miss_predictor
        # Direct-mapped storage: set index -> line.  Associative storage:
        # set index -> insertion-ordered {block: line} (front = LRU victim).
        self._lines: Dict[int, CacheLine] = {}
        self._sets: Dict[int, Dict[int, CacheLine]] = {}

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0
        self.predictor_bypasses = 0

    # -- geometry -----------------------------------------------------------

    def set_index(self, block: int) -> int:
        """Set index of block number ``block``."""
        return block % self.num_sets

    # -- queries ------------------------------------------------------------

    def contains(self, block: int) -> bool:
        """True if ``block`` is resident (no statistics update)."""
        if self.associativity == 1:
            line = self._lines.get(block % self.num_sets)
            return line is not None and line.block == block
        cache_set = self._sets.get(block % self.num_sets)
        return cache_set is not None and block in cache_set

    def peek(self, block: int) -> Optional[CacheLine]:
        """Return the resident line for ``block`` without side effects."""
        if self.associativity == 1:
            line = self._lines.get(block % self.num_sets)
            if line is not None and line.block == block:
                return line
            return None
        cache_set = self._sets.get(block % self.num_sets)
        if cache_set is None:
            return None
        return cache_set.get(block)

    def probe(self, block: int) -> DRAMCacheProbe:
        """Look up ``block``, consulting the miss predictor first.

        Updates hit/miss statistics.  When the predictor predicts a miss the
        DRAM array is not accessed; the caller should charge only the
        predictor latency in that case.
        """
        predictor = self.miss_predictor
        if predictor is not None:
            # Inlined RegionMissPredictor.predicts_miss.
            predictor.lookups += 1
            table = predictor._table
            region = (block * predictor._block_size) // predictor.region_size
            bits = table.get(region)
            if bits is None:
                predictor.untracked_lookups += 1
                predictor.predicted_miss += 1
                predicted_miss = True
            else:
                table.move_to_end(region)
                if bits & (1 << (block % predictor._blocks_per_region)):
                    predictor.predicted_present += 1
                    predicted_miss = False
                else:
                    predictor.predicted_miss += 1
                    predicted_miss = True
            if predicted_miss:
                if self.peek(block) is None:
                    self.predictor_bypasses += 1
                    self.misses += 1
                    return _PROBE_MISS_BYPASS
                # Mis-prediction (the predictor lost this region's residency
                # information): fall through to the array access so that a
                # resident -- possibly dirty -- line is never silently ignored.
        line = self.peek(block)
        if line is None:
            self.misses += 1
            return _PROBE_MISS_ARRAY
        self.hits += 1
        if self.associativity > 1:
            # Intrusive LRU touch: move the line to the back of its set.
            cache_set = self._sets[block % self.num_sets]
            del cache_set[block]
            cache_set[block] = line
        return _PROBE_HIT_DIRTY if line.dirty else _PROBE_HIT_CLEAN

    # -- mutations ------------------------------------------------------------

    def insert(
        self,
        block: int,
        *,
        dirty: bool = False,
        state: CacheBlockState = CacheBlockState.SHARED,
    ) -> Optional[CacheLine]:
        """Insert ``block``, returning the displaced victim line if any.

        In clean mode the inserted line is always stored clean regardless of
        the ``dirty`` argument (the caller performs the memory write-through),
        and victims never require a writeback.  The returned victim is the
        displaced :class:`CacheLine` itself (exposing ``block``, ``state``,
        ``dirty`` and ``needs_writeback``), avoiding a per-eviction record
        allocation.
        """
        stored_dirty = dirty and not self.clean
        predictor = self.miss_predictor
        if self.associativity == 1:
            index = block % self.num_sets
            lines = self._lines
            existing = lines.get(index)

            victim: Optional[CacheLine] = None
            if existing is not None:
                if existing.block == block:
                    existing.dirty = existing.dirty or stored_dirty
                    existing.state = state
                    return None
                # The displaced line itself is the victim record (it is no
                # longer referenced by the cache, so handing it out is safe).
                victim = existing
                self.evictions += 1
                if existing.dirty:
                    self.dirty_evictions += 1
                if predictor is not None:
                    predictor.note_evict(existing.block)

            lines[index] = CacheLine(block=block, state=state, dirty=stored_dirty)
            if predictor is not None:
                predictor.note_insert(block)
            return victim

        cache_set = self._sets.get(block % self.num_sets)
        if cache_set is None:
            cache_set = self._sets[block % self.num_sets] = {}
        existing = cache_set.get(block)
        if existing is not None:
            existing.dirty = existing.dirty or stored_dirty
            existing.state = state
            del cache_set[block]
            cache_set[block] = existing
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim = cache_set.pop(next(iter(cache_set)))
            self.evictions += 1
            if victim.dirty:
                self.dirty_evictions += 1
            if predictor is not None:
                predictor.note_evict(victim.block)
        cache_set[block] = CacheLine(block=block, state=state, dirty=stored_dirty)
        if predictor is not None:
            predictor.note_insert(block)
        return victim

    def bulk_insert_clean(self, blocks) -> int:
        """Insert an iterable of block numbers clean (prewarm fast path).

        Semantically identical to calling ``insert(block, dirty=False)`` for
        each block in order -- same eviction counters, same final cache and
        predictor state -- but vectorised: contiguous ranges build their
        lines with a C-level ``map`` and fill the tag store with one
        ``dict.update``, and predictor presence bits are OR-ed per *region*
        instead of per block.  Falls back to a faithful per-block loop for
        non-contiguous inputs, associative organisations, wrap-around ranges
        and predictor-displacement corner cases.  Returns the number of
        blocks processed.
        """
        if (
            self.associativity == 1
            and isinstance(blocks, range)
            and blocks.step == 1
            and 0 < len(blocks) <= self.num_sets
        ):
            predictor = self.miss_predictor
            if predictor is None:
                return self._bulk_fill_range(blocks)
            first_region = (blocks.start * predictor._block_size) // predictor.region_size
            last_region = ((blocks.stop - 1) * predictor._block_size) // predictor.region_size
            # The batched path cannot reproduce mid-stream table displacement
            # order, so require headroom for every region it may allocate.
            if len(predictor._table) + (last_region - first_region + 1) < predictor.entries:
                return self._bulk_fill_range(blocks)
        return self._bulk_insert_clean_loop(blocks)

    def _bulk_fill_range(self, blocks: range) -> int:
        """Vectorised clean fill of a contiguous block range (see above).

        Requires ``len(blocks) <= num_sets`` (so all set indices are
        distinct) and predictor-table headroom (no displacements possible).
        """
        lines = self._lines
        num_sets = self.num_sets
        start, stop = blocks.start, blocks.stop
        n = stop - start
        shared = CacheBlockState.SHARED

        if start % num_sets + n <= num_sets:
            idx_list = range(start % num_sets, start % num_sets + n)
        else:
            idx_list = [b % num_sets for b in blocks]

        # Eviction accounting for set conflicts with already-resident lines,
        # in block order (rare relative to n).  ``same_block`` entries must
        # keep their existing line object (state refreshed, dirty preserved).
        victims_by_region = {}
        same_block = []
        predictor = self.miss_predictor
        if lines:
            evicted = []  # (inserting block, victim block), later sorted to
            # recover the per-block processing order the loop path would use.
            for index in lines.keys() & set(idx_list):
                existing = lines[index]
                block = start + (index - start) % num_sets
                if existing.block == block:
                    existing.state = shared
                    same_block.append((index, existing, block))
                    continue
                self.evictions += 1
                if existing.dirty:
                    self.dirty_evictions += 1
                evicted.append((block, existing.block))
            if predictor is not None and evicted:
                evicted.sort()
                for block, victim_block in evicted:
                    region = (block * predictor._block_size) // predictor.region_size
                    victims_by_region.setdefault(region, []).append(victim_block)

        lines.update(zip(idx_list, map(CacheLine, blocks)))
        for index, existing, _block in same_block:
            lines[index] = existing

        if predictor is not None:
            # Blocks already resident as themselves are *not* re-inserted by
            # the per-block path, so they contribute no presence bit and no
            # region touch.
            skipped_by_region = {}
            if same_block:
                bs = predictor._block_size
                rs = predictor.region_size
                bpr_bits = predictor._blocks_per_region
                for _index, _existing, block in same_block:
                    region = (block * bs) // rs
                    skipped_by_region[region] = skipped_by_region.get(region, 0) | (
                        1 << (block % bpr_bits)
                    )
            # Region-batched predictor update, preserving the exact LRU order
            # of the per-block path: within each region's chunk the evicted
            # victims are noted first (in block order), then the region's
            # presence bits are OR-ed in and the region moves to the back.
            table = predictor._table
            table_get = table.get
            move_to_end = table.move_to_end
            block_size = predictor._block_size
            region_size = predictor.region_size
            bpr = predictor._blocks_per_region
            first_region = (start * block_size) // region_size
            last_region = ((stop - 1) * block_size) // region_size
            for region in range(first_region, last_region + 1):
                for victim_block in victims_by_region.get(region, ()):
                    victim_region = (victim_block * block_size) // region_size
                    bits = table_get(victim_region)
                    if bits is not None:
                        table[victim_region] = bits & ~(1 << (victim_block % bpr))
                        move_to_end(victim_region)
                region_first = max(start, (region * region_size) // block_size)
                region_stop = min(stop, ((region + 1) * region_size) // block_size)
                mask = ((1 << (region_stop - region_first)) - 1) << (region_first % bpr)
                mask &= ~skipped_by_region.get(region, 0)
                if not mask:
                    # Every block of this chunk was already resident: the
                    # per-block path performs no insert and no region touch.
                    continue
                bits = table_get(region)
                if bits is None:
                    table[region] = mask
                else:
                    move_to_end(region)
                    table[region] = bits | mask
        return n

    def _bulk_insert_clean_loop(self, blocks) -> int:
        """Faithful per-block loop behind :meth:`bulk_insert_clean`."""
        if self.associativity != 1:
            count = 0
            for block in blocks:
                self.insert(block, dirty=False)
                count += 1
            return count

        lines = self._lines
        num_sets = self.num_sets
        shared = CacheBlockState.SHARED
        make_line = CacheLine
        predictor = self.miss_predictor
        if predictor is not None:
            table = predictor._table
            table_get = table.get
            move_to_end = table.move_to_end
            entries = predictor.entries
            block_size = predictor._block_size
            region_size = predictor.region_size
            blocks_per_region = predictor._blocks_per_region
        evictions = 0
        dirty_evictions = 0
        count = 0
        for block in blocks:
            count += 1
            existing = lines.get(block % num_sets)
            if existing is not None:
                if existing.block == block:
                    existing.state = shared
                    continue
                evictions += 1
                if existing.dirty:
                    dirty_evictions += 1
                if predictor is not None:
                    # Inlined RegionMissPredictor.note_evict(existing.block).
                    victim_block = existing.block
                    region = (victim_block * block_size) // region_size
                    bits = table_get(region)
                    if bits is not None:
                        table[region] = bits & ~(1 << (victim_block % blocks_per_region))
                        move_to_end(region)
            lines[block % num_sets] = make_line(block=block, state=shared, dirty=False)
            if predictor is not None:
                # Inlined RegionMissPredictor.note_insert(block).
                region = (block * block_size) // region_size
                bits = table_get(region)
                if bits is None:
                    if len(table) >= entries:
                        _victim, victim_bits = table.popitem(last=False)
                        if victim_bits:
                            predictor.region_displacements += 1
                    bits = 0
                else:
                    move_to_end(region)
                table[region] = bits | (1 << (block % blocks_per_region))
        self.evictions += evictions
        self.dirty_evictions += dirty_evictions
        return count

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` (e.g. on a broadcast invalidation); return the line."""
        if self.associativity == 1:
            index = block % self.num_sets
            line = self._lines.get(index)
            if line is None or line.block != block:
                return None
            del self._lines[index]
        else:
            cache_set = self._sets.get(block % self.num_sets)
            line = cache_set.pop(block, None) if cache_set is not None else None
            if line is None:
                return None
        self.invalidations += 1
        if self.miss_predictor is not None:
            self.miss_predictor.note_evict(block)
        return line

    def mark_clean(self, block: int) -> None:
        """Clear the dirty bit of a resident block (after a writeback)."""
        line = self.peek(block)
        if line is not None:
            line.dirty = False

    def clear(self) -> None:
        """Drop all contents."""
        self._lines.clear()
        self._sets.clear()

    # -- statistics -----------------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid resident blocks."""
        if self.associativity == 1:
            return sum(1 for line in self._lines.values() if line.valid)
        return sum(len(cache_set) for cache_set in self._sets.values())

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over resident block numbers."""
        if self.associativity == 1:
            for line in self._lines.values():
                if line.valid:
                    yield line.block
        else:
            for cache_set in self._sets.values():
                yield from cache_set.keys()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hit fraction over all probes (0.0 when never probed)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMCache(name={self.name!r}, size={self.size_bytes}, "
            f"clean={self.clean}, occupancy={self.occupancy()})"
        )
