"""Direct-mapped, block-based DRAM cache (Table II: 1 GB, direct-mapped,
64-byte blocks, 40 ns access, region-based miss predictor).

Two operating modes are supported, selected by ``clean``:

* ``clean=True`` (C3D): the cache never holds dirty data.  Modified LLC
  victims are inserted *clean*; the owning socket is responsible for writing
  the data through to memory.  ``insert`` therefore never produces a victim
  that needs a writeback.
* ``clean=False`` (snoopy / full-dir designs): modified LLC victims are
  absorbed dirty, and evicting a dirty line produces a writeback to memory.

The DRAM cache is *non-inclusive* with respect to the on-chip hierarchy in
all designs (section IV-C): it never forces LLC invalidations, and LLC fills
do not have to allocate here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from .block import CacheBlockState, CacheLine, EvictedLine
from .miss_predictor import RegionMissPredictor

__all__ = ["DRAMCache", "DRAMCacheProbe"]


@dataclass
class DRAMCacheProbe:
    """Result of a DRAM-cache probe.

    ``hit`` tells whether the block was found; ``array_accessed`` tells
    whether the DRAM array had to be accessed (False when the miss predictor
    confidently predicted a miss, in which case the array latency is saved).
    """

    hit: bool
    array_accessed: bool
    dirty: bool = False


class DRAMCache:
    """Direct-mapped DRAM cache of 64-byte blocks."""

    def __init__(
        self,
        size_bytes: int,
        *,
        block_size: int = 64,
        clean: bool = True,
        name: str = "dram_cache",
        miss_predictor: Optional[RegionMissPredictor] = None,
    ) -> None:
        if size_bytes <= 0 or block_size <= 0:
            raise ValueError("cache geometry parameters must be positive")
        self.num_sets = size_bytes // block_size
        if self.num_sets == 0:
            raise ValueError(f"{name}: size {size_bytes} smaller than one block")
        self.name = name
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.clean = clean
        self.miss_predictor = miss_predictor
        self._lines: Dict[int, CacheLine] = {}

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0
        self.predictor_bypasses = 0

    # -- geometry -----------------------------------------------------------

    def set_index(self, block: int) -> int:
        """Direct-mapped set index of block number ``block``."""
        return block % self.num_sets

    # -- queries ------------------------------------------------------------

    def contains(self, block: int) -> bool:
        """True if ``block`` is resident (no statistics update)."""
        line = self._lines.get(self.set_index(block))
        return line is not None and line.valid and line.block == block

    def peek(self, block: int) -> Optional[CacheLine]:
        """Return the resident line for ``block`` without side effects."""
        line = self._lines.get(self.set_index(block))
        if line is not None and line.valid and line.block == block:
            return line
        return None

    def probe(self, block: int) -> DRAMCacheProbe:
        """Look up ``block``, consulting the miss predictor first.

        Updates hit/miss statistics.  When the predictor predicts a miss the
        DRAM array is not accessed; the caller should charge only the
        predictor latency in that case.
        """
        if self.miss_predictor is not None and self.miss_predictor.predicts_miss(block):
            if self.peek(block) is None:
                self.predictor_bypasses += 1
                self.misses += 1
                return DRAMCacheProbe(hit=False, array_accessed=False)
            # Mis-prediction (the predictor lost this region's residency
            # information): fall through to the array access so that a
            # resident -- possibly dirty -- line is never silently ignored.
        line = self.peek(block)
        if line is None:
            self.misses += 1
            return DRAMCacheProbe(hit=False, array_accessed=True)
        self.hits += 1
        return DRAMCacheProbe(hit=True, array_accessed=True, dirty=line.dirty)

    # -- mutations ------------------------------------------------------------

    def insert(
        self,
        block: int,
        *,
        dirty: bool = False,
        state: CacheBlockState = CacheBlockState.SHARED,
    ) -> Optional[EvictedLine]:
        """Insert ``block``, returning the displaced victim if any.

        In clean mode the inserted line is always stored clean regardless of
        the ``dirty`` argument (the caller performs the memory write-through),
        and victims never require a writeback.
        """
        stored_dirty = dirty and not self.clean
        index = self.set_index(block)
        existing = self._lines.get(index)

        victim: Optional[EvictedLine] = None
        if existing is not None and existing.valid:
            if existing.block == block:
                existing.dirty = existing.dirty or stored_dirty
                existing.state = state
                return None
            victim = EvictedLine(existing.block, existing.state, existing.dirty)
            self.evictions += 1
            if existing.dirty:
                self.dirty_evictions += 1
            if self.miss_predictor is not None:
                self.miss_predictor.note_evict(existing.block)

        self._lines[index] = CacheLine(block=block, state=state, dirty=stored_dirty)
        if self.miss_predictor is not None:
            self.miss_predictor.note_insert(block)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` (e.g. on a broadcast invalidation); return the line."""
        index = self.set_index(block)
        line = self._lines.get(index)
        if line is None or not line.valid or line.block != block:
            return None
        del self._lines[index]
        self.invalidations += 1
        if self.miss_predictor is not None:
            self.miss_predictor.note_evict(block)
        return line

    def mark_clean(self, block: int) -> None:
        """Clear the dirty bit of a resident block (after a writeback)."""
        line = self.peek(block)
        if line is not None:
            line.dirty = False

    def clear(self) -> None:
        """Drop all contents."""
        self._lines.clear()

    # -- statistics -----------------------------------------------------------

    def occupancy(self) -> int:
        """Number of valid resident blocks."""
        return sum(1 for line in self._lines.values() if line.valid)

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over resident block numbers."""
        for line in self._lines.values():
            if line.valid:
                yield line.block

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hit fraction over all probes (0.0 when never probed)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DRAMCache(name={self.name!r}, size={self.size_bytes}, "
            f"clean={self.clean}, occupancy={self.occupancy()})"
        )
