"""Set-associative SRAM cache model used for the L1s and the LLC.

The model is functional (hit/miss, MSI state, dirty bits, LRU) with latency
left to the owning socket, which knows the configured tag/data latencies.
It maintains the hit/miss/eviction statistics the experiments report.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .block import CacheBlockState, CacheLine
from .replacement import LRUPolicy, ReplacementPolicy

__all__ = ["SetAssociativeCache"]


class SetAssociativeCache:
    """A set-associative, write-back cache of 64-byte blocks.

    Parameters
    ----------
    size_bytes:
        Total data capacity.
    associativity:
        Number of ways per set.
    block_size:
        Block size in bytes.
    name:
        Label used in statistics and error messages (e.g. ``"socket0.llc"``).
    replacement:
        Replacement policy instance; defaults to LRU.
    """

    def __init__(
        self,
        size_bytes: int,
        associativity: int,
        *,
        block_size: int = 64,
        name: str = "cache",
        replacement: Optional[ReplacementPolicy] = None,
    ) -> None:
        if size_bytes <= 0 or associativity <= 0 or block_size <= 0:
            raise ValueError("cache geometry parameters must be positive")
        total_blocks = size_bytes // block_size
        if total_blocks == 0:
            raise ValueError(f"{name}: size {size_bytes} smaller than one block")
        if total_blocks % associativity:
            raise ValueError(
                f"{name}: {total_blocks} blocks not divisible by associativity {associativity}"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.block_size = block_size
        self.associativity = associativity
        self.num_sets = total_blocks // associativity
        self.replacement = replacement if replacement is not None else LRUPolicy()
        # Intrusive recency order: each set is an insertion-ordered dict whose
        # front entry is the victim, so LRU/FIFO evict in O(1) without the
        # per-eviction victim-list allocation of ``choose_victim``.
        self._intrusive = getattr(self.replacement, "intrusive", False)
        self._touch_moves = self._intrusive and getattr(self.replacement, "touch_moves", False)
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        # Change log for batch engines (see ``repro.engines.vector``): when
        # tracking is enabled, every mutation that can change which blocks are
        # resident or their MSI state appends the affected block number (or
        # ``-1`` for a wholesale ``clear``).  Recency-only moves are not state
        # changes and are not logged.  The flag is off by default so the
        # per-access engines pay only a predicted-not-taken branch.
        self._track_changes = False
        self._changes: List[int] = []

        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0
        self.invalidations = 0

    # -- geometry -----------------------------------------------------------

    def set_index(self, block: int) -> int:
        """Return the set index of block number ``block``."""
        return block % self.num_sets

    # -- queries ------------------------------------------------------------

    def contains(self, block: int) -> bool:
        """True if ``block`` is resident (does not update recency or stats)."""
        cache_set = self._sets.get(block % self.num_sets)
        return cache_set is not None and block in cache_set

    def peek(self, block: int) -> Optional[CacheLine]:
        """Return the resident line for ``block`` without side effects."""
        cache_set = self._sets.get(block % self.num_sets)
        if cache_set is None:
            return None
        return cache_set.get(block)

    def lookup(self, block: int) -> Optional[CacheLine]:
        """Access ``block``: update recency and hit/miss statistics."""
        cache_set = self._sets.get(block % self.num_sets)
        line = cache_set.get(block) if cache_set is not None else None
        if line is None:
            self.misses += 1
            return None
        self.hits += 1
        if self._touch_moves:
            # Move to the back of the set's recency order (dicts preserve
            # insertion order, so delete + reinsert is an O(1) move-to-end).
            del cache_set[block]
            cache_set[block] = line
        elif not self._intrusive:
            self.replacement.touch(line)
        return line

    # -- mutations ------------------------------------------------------------

    def insert(
        self,
        block: int,
        state: CacheBlockState = CacheBlockState.SHARED,
        *,
        dirty: bool = False,
    ) -> Optional[CacheLine]:
        """Insert ``block`` (allocating on fill) and return any victim.

        If the block is already resident its state/dirty bits are upgraded in
        place and no victim is produced.  The returned victim is the displaced
        :class:`CacheLine` itself (no per-eviction record allocation).
        """
        index = block % self.num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        existing = cache_set.get(block)
        if existing is not None:
            if self._track_changes and existing.state is not state:
                self._changes.append(block)
            existing.state = state
            existing.dirty = existing.dirty or dirty
            if self._touch_moves:
                del cache_set[block]
                cache_set[block] = existing
            elif not self._intrusive:
                self.replacement.touch(existing)
            return None

        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.associativity:
            if self._intrusive:
                # The front of the insertion-ordered set is the LRU/FIFO victim.
                victim = cache_set.pop(next(iter(cache_set)))
            else:
                victim = self.replacement.choose_victim(cache_set.values())
                del cache_set[victim.block]
            self.evictions += 1
            if victim.dirty:
                self.dirty_evictions += 1

        line = CacheLine(block=block, state=state, dirty=dirty)
        cache_set[block] = line
        if not self._intrusive:
            self.replacement.on_insert(line)
        if self._track_changes:
            self._changes.append(block)
            if victim is not None:
                self._changes.append(victim.block)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` and return the removed line (or ``None``)."""
        cache_set = self._sets.get(self.set_index(block))
        if not cache_set:
            return None
        line = cache_set.pop(block, None)
        if line is not None:
            self.invalidations += 1
            if self._track_changes:
                self._changes.append(block)
            return line
        return None

    def downgrade(self, block: int) -> Optional[CacheLine]:
        """Transition ``block`` from MODIFIED to SHARED, returning the line."""
        line = self.peek(block)
        if line is None:
            return None
        line.state = CacheBlockState.SHARED
        line.dirty = False
        if self._track_changes:
            self._changes.append(block)
        return line

    def set_state(self, block: int, state: CacheBlockState, *, dirty: Optional[bool] = None) -> None:
        """Overwrite the MSI state (and optionally the dirty bit) of a resident block."""
        line = self.peek(block)
        if line is None:
            raise KeyError(f"{self.name}: block {block:#x} not resident")
        line.state = state
        if dirty is not None:
            line.dirty = dirty
        if self._track_changes:
            self._changes.append(block)

    def clear(self) -> None:
        """Drop all contents and reset statistics-independent state."""
        self._sets.clear()
        if self._track_changes:
            self._changes.append(-1)

    def note_external_change(self, block: int) -> None:
        """Record a state change made directly on a peeked line.

        The coherence fast paths in :mod:`repro.system.socket` mutate peeked
        lines in place (peer intervention, directory downgrade); they call
        this so batch engines observing the change log stay coherent.
        """
        if self._track_changes:
            self._changes.append(block)

    # -- batch-engine helpers -------------------------------------------------

    def record_bulk_hits(self, count: int) -> None:
        """Credit ``count`` lookups that hit, without touching recency."""
        self.hits += count

    def bulk_touch(self, blocks: Iterable[int]) -> None:
        """Refresh recency for ``blocks`` in order (absent blocks skipped).

        Equivalent to the move-to-end a hitting :meth:`lookup` performs, but
        without statistics: batch engines replay only the *last* touch of each
        block in a window, in window order, which yields the same final
        recency order as per-access touches.
        """
        if not self._touch_moves:
            return
        sets = self._sets
        num_sets = self.num_sets
        for block in blocks:
            cache_set = sets.get(block % num_sets)
            if cache_set is None:
                continue
            line = cache_set.get(block)
            if line is None:
                continue
            del cache_set[block]
            cache_set[block] = line

    # -- statistics -----------------------------------------------------------

    def occupancy(self) -> int:
        """Number of resident blocks."""
        return sum(len(cache_set) for cache_set in self._sets.values())

    def resident_blocks(self) -> Iterator[int]:
        """Iterate over the block numbers of all resident lines."""
        for cache_set in self._sets.values():
            yield from cache_set.keys()

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        """Hit fraction over all lookups (0.0 when never accessed)."""
        if not self.accesses:
            return 0.0
        return self.hits / self.accesses

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(name={self.name!r}, size={self.size_bytes}, "
            f"ways={self.associativity}, sets={self.num_sets})"
        )
