"""Cache-line bookkeeping shared by the SRAM and DRAM cache models."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["CacheBlockState", "CacheLine"]


class CacheBlockState(enum.Enum):
    """MSI state of a block within a cache.

    The paper's protocols (local directory, global directory, DRAM cache and
    LLC controllers) are all MSI-based; the Exclusive state is deliberately
    omitted (section IV-C explains why an E state has little value under a
    non-inclusive directory).
    """

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"

    __hash__ = object.__hash__  # identity hashing, C-level

    @property
    def is_valid(self) -> bool:
        return self is not CacheBlockState.INVALID

    @property
    def is_writable(self) -> bool:
        return self is CacheBlockState.MODIFIED


@dataclass(slots=True)
class CacheLine:
    """A resident cache line.

    ``dirty`` is tracked separately from the MSI state because the clean
    DRAM cache of C3D holds lines that are coherence-wise SHARED and never
    dirty, while a dirty DRAM cache design (full-dir, snoopy) marks lines
    dirty when it absorbs a modified LLC victim.

    Caches only keep resident (valid) lines in their tag stores -- an
    invalidation removes the line object -- so ``valid`` is effectively
    always True for a line obtained from a cache and exists for API clarity.
    """

    block: int
    state: CacheBlockState = CacheBlockState.SHARED
    dirty: bool = False
    last_use: int = 0

    @property
    def valid(self) -> bool:
        return self.state is not CacheBlockState.INVALID

    @property
    def needs_writeback(self) -> bool:
        """Victim-line protocol: a dirty victim must reach memory."""
        return self.dirty

