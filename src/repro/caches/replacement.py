"""Replacement policies for the set-associative SRAM caches.

The paper's on-chip caches use LRU; a couple of alternative policies are
provided for ablation studies (random and FIFO).  A policy instance is shared
by all sets of a cache; per-set recency state is carried on the
:class:`~repro.caches.block.CacheLine` objects themselves (``last_use``) plus
a monotonically increasing counter owned by the policy.

Recency-order policies (LRU, FIFO) additionally declare themselves
**intrusive**: the cache keeps each set as an insertion-ordered dict and
maintains recency by moving lines to the back on use, so a full set evicts
its front line in O(1) with no victim-list allocation and no per-touch
callback.  ``choose_victim`` remains the interface for every other policy and
accepts any sized iterable of lines (e.g. a ``dict.values()`` view), so
non-intrusive policies no longer pay a per-eviction ``list()`` allocation
either.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, Iterable

from .block import CacheLine

__all__ = ["ReplacementPolicy", "LRUPolicy", "FIFOPolicy", "RandomPolicy", "make_replacement_policy"]


class ReplacementPolicy(ABC):
    """Chooses a victim among the valid lines of a full set."""

    name = "abstract"
    #: True when the cache can maintain this policy's recency order
    #: intrusively (insertion-ordered set dict, O(1) front-line eviction).
    intrusive = False
    #: For intrusive policies: whether a hit moves the line to the back of
    #: the recency order (LRU) or leaves the order untouched (FIFO).
    touch_moves = False

    def __init__(self) -> None:
        self._tick = 0

    def touch(self, line: CacheLine) -> None:
        """Record a use of ``line`` (called on hits and on insertion)."""
        self._tick += 1
        line.last_use = self._tick

    def on_insert(self, line: CacheLine) -> None:
        """Record the insertion of a new line."""
        self.touch(line)

    @abstractmethod
    def choose_victim(self, lines: Iterable[CacheLine]) -> CacheLine:
        """Return the line to evict from a full set.

        ``lines`` is a non-empty sized iterable (list, tuple or dict view).
        """


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used line."""

    name = "lru"
    intrusive = True
    touch_moves = True

    def choose_victim(self, lines: Iterable[CacheLine]) -> CacheLine:
        return min(lines, key=lambda line: line.last_use)


class FIFOPolicy(ReplacementPolicy):
    """Evict the line that was inserted first (insertion order only)."""

    name = "fifo"
    intrusive = True
    touch_moves = False

    def touch(self, line: CacheLine) -> None:  # hits do not update recency
        pass

    def on_insert(self, line: CacheLine) -> None:
        self._tick += 1
        line.last_use = self._tick

    def choose_victim(self, lines: Iterable[CacheLine]) -> CacheLine:
        return min(lines, key=lambda line: line.last_use)


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random line (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def choose_victim(self, lines: Iterable[CacheLine]) -> CacheLine:
        # randrange consumes the same RNG stream as random.choice, but works
        # on dict views without materialising a list.
        index = self._rng.randrange(len(lines))
        for i, line in enumerate(lines):
            if i == index:
                return line
        raise ValueError("choose_victim called with an empty set")


_POLICIES: Dict[str, type] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Create a replacement policy by name (``lru``, ``fifo`` or ``random``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown replacement policy {name!r}") from exc
    return cls(**kwargs)
