"""Replacement policies for the set-associative SRAM caches.

The paper's on-chip caches use LRU; a couple of alternative policies are
provided for ablation studies (random and FIFO).  A policy instance is shared
by all sets of a cache; per-set recency state is carried on the
:class:`~repro.caches.block.CacheLine` objects themselves (``last_use``) plus
a monotonically increasing counter owned by the policy.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Dict, List

from .block import CacheLine

__all__ = ["ReplacementPolicy", "LRUPolicy", "FIFOPolicy", "RandomPolicy", "make_replacement_policy"]


class ReplacementPolicy(ABC):
    """Chooses a victim among the valid lines of a full set."""

    name = "abstract"

    def __init__(self) -> None:
        self._tick = 0

    def touch(self, line: CacheLine) -> None:
        """Record a use of ``line`` (called on hits and on insertion)."""
        self._tick += 1
        line.last_use = self._tick

    def on_insert(self, line: CacheLine) -> None:
        """Record the insertion of a new line."""
        self.touch(line)

    @abstractmethod
    def choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        """Return the line to evict from a full set (``lines`` is non-empty)."""


class LRUPolicy(ReplacementPolicy):
    """Evict the least recently used line."""

    name = "lru"

    def choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        return min(lines, key=lambda line: line.last_use)


class FIFOPolicy(ReplacementPolicy):
    """Evict the line that was inserted first (insertion order only)."""

    name = "fifo"

    def touch(self, line: CacheLine) -> None:  # hits do not update recency
        pass

    def on_insert(self, line: CacheLine) -> None:
        self._tick += 1
        line.last_use = self._tick

    def choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        return min(lines, key=lambda line: line.last_use)


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random line (deterministic given the seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)

    def choose_victim(self, lines: List[CacheLine]) -> CacheLine:
        return self._rng.choice(lines)


_POLICIES: Dict[str, type] = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
}


def make_replacement_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Create a replacement policy by name (``lru``, ``fifo`` or ``random``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError as exc:
        raise ValueError(f"unknown replacement policy {name!r}") from exc
    return cls(**kwargs)
