"""Cache substrate: SRAM caches, DRAM cache, miss predictor, replacement."""

from .block import CacheBlockState, CacheLine
from .dram_cache import DRAMCache, DRAMCacheProbe
from .miss_predictor import RegionMissPredictor
from .replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_replacement_policy,
)
from .sram_cache import SetAssociativeCache

__all__ = [
    "CacheBlockState",
    "CacheLine",
    "SetAssociativeCache",
    "DRAMCache",
    "DRAMCacheProbe",
    "RegionMissPredictor",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_replacement_policy",
]
