"""On-disk trace formats and the file-backed (trace-driven) workload frontend.

The synthetic generators in :mod:`repro.workloads.synthetic` are the
reproduction's substitute for the paper's Pin/Simics traces; this module adds
the complementary *file* frontend so the simulator can also be driven by
traces that live on disk -- recorded from a synthetic workload for exact
replay, produced by an external tool, or written by hand.

Two formats are supported, both holding one
:class:`~repro.workloads.trace.MemoryAccess` per record and both optionally
gzip-compressed (selected by a trailing ``.gz`` on the file name):

* **CSV** (``.csv`` / ``.csv.gz``) -- a human-editable text format:
  ``addr,is_write,gap`` per line, decimal or ``0x``-hex addresses, ``#``
  comments and blank lines ignored, optional header line.
* **Binary** (``.bin`` / ``.bin.gz``) -- a compact fixed-width format: an
  8-byte magic (``C3DTRC01``) followed by 13-byte little-endian records
  (``int64`` address, ``uint8`` flags with bit 0 = write, ``int32`` gap).

A *trace directory* bundles one trace file per core plus a ``manifest.json``
that records the thread count, the address layout and the workload's
``memory_regions`` hint, so a recorded workload replays with the same NUMA
page placement and DRAM-cache pre-warm content as the original run --
:class:`TraceDirWorkload` implements the full workload protocol and produces
**bit-identical** :class:`~repro.stats.counters.SimulationStats` on both
simulation engines (``tests/system/test_trace_replay.py`` locks this in).

See ``docs/workloads.md`` for the field-by-field format specification.
"""

from __future__ import annotations

import gzip
import json
import struct
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from ..memory.address import DEFAULT_LAYOUT, AddressLayout
from .compiled import CompiledTrace
from .trace import MemoryAccess

__all__ = [
    "TraceFormatError",
    "TRACE_FORMATS",
    "trace_format_of",
    "read_trace",
    "write_trace",
    "read_trace_csv",
    "write_trace_csv",
    "read_trace_bin",
    "write_trace_bin",
    "compile_trace_file",
    "record_workload",
    "TraceDirWorkload",
]

#: Recognised trace-file format tokens (doubling as file extensions).
TRACE_FORMATS = ("csv", "csv.gz", "bin", "bin.gz")

#: Magic bytes opening every binary trace file (name + format version).
BINARY_MAGIC = b"C3DTRC01"

#: One binary record: int64 address, uint8 flags (bit 0 = write), int32 gap.
_RECORD = struct.Struct("<qBi")

#: Optional CSV header line (written by :func:`write_trace_csv`, skipped on read).
_CSV_HEADER = "addr,is_write,gap"

#: Records per buffered chunk in the streaming readers/writers and in
#: :func:`compile_trace_file` (bounds peak memory independent of trace length).
_CHUNK_RECORDS = 16384

_MANIFEST_NAME = "manifest.json"
_INT64_MIN, _INT64_MAX = -(2**63), 2**63 - 1
_INT32_MAX = 2**31 - 1


class TraceFormatError(ValueError):
    """A trace file (or trace directory manifest) could not be parsed.

    The message always names the offending file, and for text formats the
    1-based line number, so a malformed hand-edited trace is easy to locate.
    """


def trace_format_of(path: Union[str, Path]) -> str:
    """Return the format token (``csv``/``csv.gz``/``bin``/``bin.gz``) of ``path``.

    The format is determined purely by the file-name suffix; an unrecognised
    suffix raises :class:`TraceFormatError`.
    """
    name = str(path)
    for token in sorted(TRACE_FORMATS, key=len, reverse=True):
        if name.endswith("." + token):
            return token
    raise TraceFormatError(
        f"{path}: unrecognised trace extension (expected one of "
        + ", ".join("." + t for t in TRACE_FORMATS)
        + ")"
    )


def _open(path: Path, mode: str) -> IO:
    """Open ``path`` for text/binary read/write, transparently gzipping ``.gz``."""
    if str(path).endswith(".gz"):
        if "b" in mode:
            return gzip.open(path, mode)
        return gzip.open(path, mode + "t", encoding="ascii", newline="")
    if "b" in mode:
        return open(path, mode)
    return open(path, mode, encoding="ascii", newline="")


# ----------------------------------------------------------------------
# CSV (human-editable text) format
# ----------------------------------------------------------------------


def _parse_csv_line(path: Path, lineno: int, line: str) -> Optional[MemoryAccess]:
    """Parse one CSV trace line; returns None for blanks/comments/header."""
    text = line.strip()
    if not text or text.startswith("#") or text == _CSV_HEADER:
        return None
    fields = [f.strip() for f in text.split(",")]
    if len(fields) != 3:
        raise TraceFormatError(
            f"{path}:{lineno}: expected 3 comma-separated fields "
            f"(addr,is_write,gap), got {len(fields)}: {text!r}"
        )
    addr_text, write_text, gap_text = fields
    try:
        addr = int(addr_text, 0)
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: invalid address {addr_text!r} "
            f"(expected a decimal or 0x-prefixed integer)"
        ) from None
    if write_text not in ("0", "1"):
        raise TraceFormatError(
            f"{path}:{lineno}: invalid is_write flag {write_text!r} (expected 0 or 1)"
        )
    try:
        gap = int(gap_text, 0)
    except ValueError:
        raise TraceFormatError(
            f"{path}:{lineno}: invalid gap {gap_text!r} (expected a non-negative integer)"
        ) from None
    if addr < 0:
        raise TraceFormatError(f"{path}:{lineno}: address must be non-negative, got {addr}")
    if gap < 0:
        raise TraceFormatError(f"{path}:{lineno}: gap must be non-negative, got {gap}")
    return MemoryAccess(addr=addr, is_write=write_text == "1", gap=gap)


def read_trace_csv(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Stream :class:`MemoryAccess` records from a CSV trace file.

    Parameters
    ----------
    path:
        File to read; a ``.gz`` suffix selects transparent decompression.

    Yields records in file order; blank lines, ``#`` comments and the
    optional ``addr,is_write,gap`` header are skipped.  Malformed lines raise
    :class:`TraceFormatError` naming the file and line number.
    """
    path = Path(path)
    with _open(path, "r") as handle:
        for lineno, line in enumerate(handle, start=1):
            access = _parse_csv_line(path, lineno, line)
            if access is not None:
                yield access


def write_trace_csv(
    path: Union[str, Path], accesses: Iterable[MemoryAccess], *, header: bool = True
) -> int:
    """Write an access stream to a CSV trace file; returns the record count.

    Parameters
    ----------
    path:
        Destination file; a ``.gz`` suffix selects gzip compression.
    accesses:
        Any iterable of :class:`MemoryAccess` (or objects with ``addr`` /
        ``is_write`` / ``gap`` attributes).
    header:
        Write the ``addr,is_write,gap`` header line first (readers skip it).
    """
    path = Path(path)
    count = 0
    with _open(path, "w") as handle:
        if header:
            handle.write(_CSV_HEADER + "\n")
        buffer: List[str] = []
        for access in accesses:
            buffer.append(f"{access.addr},{1 if access.is_write else 0},{access.gap}\n")
            count += 1
            if len(buffer) >= _CHUNK_RECORDS:
                handle.write("".join(buffer))
                buffer.clear()
        if buffer:
            handle.write("".join(buffer))
    return count


# ----------------------------------------------------------------------
# Binary (compact) format
# ----------------------------------------------------------------------


def read_trace_bin(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Stream :class:`MemoryAccess` records from a binary trace file.

    The file must start with the ``C3DTRC01`` magic; a wrong magic or a
    truncated trailing record raises :class:`TraceFormatError`.  Records are
    read in bounded-size chunks, so arbitrarily long traces stream in
    constant memory.
    """
    path = Path(path)
    record_size = _RECORD.size
    with _open(path, "rb") as handle:
        magic = handle.read(len(BINARY_MAGIC))
        if magic != BINARY_MAGIC:
            raise TraceFormatError(
                f"{path}: not a C3D binary trace (bad magic {magic!r}; "
                f"expected {BINARY_MAGIC!r})"
            )
        carry = b""
        index = 0
        while True:
            chunk = handle.read(record_size * _CHUNK_RECORDS)
            if not chunk:
                break
            data = carry + chunk
            usable = len(data) - (len(data) % record_size)
            for addr, flags, gap in _RECORD.iter_unpack(data[:usable]):
                yield MemoryAccess(addr=addr, is_write=bool(flags & 1), gap=gap)
                index += 1
            carry = data[usable:]
        if carry:
            raise TraceFormatError(
                f"{path}: truncated record after {index} records "
                f"({len(carry)} trailing bytes; records are {record_size} bytes)"
            )


def write_trace_bin(path: Union[str, Path], accesses: Iterable[MemoryAccess]) -> int:
    """Write an access stream to a binary trace file; returns the record count.

    Addresses must fit a signed 64-bit integer and gaps a signed 32-bit
    integer (both are checked; violations raise :class:`TraceFormatError`).
    """
    path = Path(path)
    pack = _RECORD.pack
    count = 0
    with _open(path, "wb") as handle:
        handle.write(BINARY_MAGIC)
        buffer = bytearray()
        for access in accesses:
            addr, gap = access.addr, access.gap
            if not _INT64_MIN <= addr <= _INT64_MAX:
                raise TraceFormatError(
                    f"{path}: record {count}: address {addr} does not fit int64"
                )
            if not 0 <= gap <= _INT32_MAX:
                raise TraceFormatError(
                    f"{path}: record {count}: gap {gap} out of range [0, 2**31)"
                )
            buffer += pack(addr, 1 if access.is_write else 0, gap)
            count += 1
            if len(buffer) >= _RECORD.size * _CHUNK_RECORDS:
                handle.write(buffer)
                buffer.clear()
        if buffer:
            handle.write(buffer)
    return count


# ----------------------------------------------------------------------
# Format dispatch
# ----------------------------------------------------------------------


def read_trace(path: Union[str, Path]) -> Iterator[MemoryAccess]:
    """Stream records from a trace file, dispatching on the file extension."""
    token = trace_format_of(path)
    if token.startswith("csv"):
        return read_trace_csv(path)
    return read_trace_bin(path)


def write_trace(path: Union[str, Path], accesses: Iterable[MemoryAccess]) -> int:
    """Write an access stream to ``path``, dispatching on the file extension.

    Returns the number of records written.
    """
    token = trace_format_of(path)
    if token.startswith("csv"):
        return write_trace_csv(path, accesses)
    return write_trace_bin(path, accesses)


# ----------------------------------------------------------------------
# Chunked compilation straight into the fast engine's representation
# ----------------------------------------------------------------------


def compile_trace_file(
    path: Union[str, Path],
    *,
    layout: Optional[AddressLayout] = None,
    chunk_records: int = _CHUNK_RECORDS,
) -> CompiledTrace:
    """Materialise a trace file into a :class:`CompiledTrace` in bounded chunks.

    Parameters
    ----------
    path:
        Trace file in any supported format (see :data:`TRACE_FORMATS`).
    layout:
        Address layout used to precompute the block/page columns
        (:data:`~repro.memory.address.DEFAULT_LAYOUT` when omitted).
    chunk_records:
        Records per vectorised conversion batch; only the chunk (not the
        whole file) is ever held as intermediate numpy arrays, so peak
        overhead is bounded regardless of trace length.

    The produced columns are exactly those :func:`~repro.workloads.compiled.compile_trace`
    would build from the equivalent in-memory stream, so file-backed and
    generator-backed workloads are interchangeable to both engines.
    """
    layout = layout or DEFAULT_LAYOUT
    block_size, page_size = layout.block_size, layout.page_size
    addrs: List[int] = []
    writes: List[bool] = []
    gaps: List[int] = []
    blocks: List[int] = []
    pages: List[int] = []

    chunk_addrs: List[int] = []
    chunk_writes: List[bool] = []
    chunk_gaps: List[int] = []

    def flush() -> None:
        arr = np.asarray(chunk_addrs, dtype=np.int64)
        addrs.extend(chunk_addrs)
        writes.extend(chunk_writes)
        gaps.extend(chunk_gaps)
        blocks.extend((arr // block_size).tolist())
        pages.extend((arr // page_size).tolist())
        chunk_addrs.clear()
        chunk_writes.clear()
        chunk_gaps.clear()

    for access in read_trace(path):
        chunk_addrs.append(access.addr)
        chunk_writes.append(access.is_write)
        chunk_gaps.append(access.gap)
        if len(chunk_addrs) >= chunk_records:
            flush()
    if chunk_addrs:
        flush()
    if not addrs:
        return CompiledTrace.empty()
    return CompiledTrace(addrs, writes, gaps, blocks, pages)


# ----------------------------------------------------------------------
# Trace directories: record + replay
# ----------------------------------------------------------------------


def _trace_file_name(thread_id: int, trace_format: str) -> str:
    return f"core-{thread_id:04d}.{trace_format}"


def record_workload(
    workload,
    directory: Union[str, Path],
    *,
    num_threads: Optional[int] = None,
    trace_format: str = "csv",
) -> Path:
    """Capture a workload's per-thread streams into a replayable trace directory.

    Parameters
    ----------
    workload:
        Any workload object with ``num_threads`` and ``stream(thread_id)``
        (e.g. a :class:`~repro.workloads.synthetic.SyntheticWorkload` or a
        :class:`~repro.workloads.scenario.ScenarioWorkload`).  Its optional
        ``memory_regions()`` hint and address layout are captured in the
        manifest so replay reproduces the same first-touch page placement and
        DRAM-cache pre-warm content -- the ingredients of bit-identical
        replay statistics.
    directory:
        Destination directory (created if missing).  One trace file per
        thread (``core-NNNN.<format>``) plus ``manifest.json`` is written.
    num_threads:
        Record only the first ``num_threads`` threads (default: all).
    trace_format:
        One of :data:`TRACE_FORMATS` (``csv`` is the human-editable default;
        use ``bin.gz`` for the most compact files).

    Returns the directory path.
    """
    if trace_format not in TRACE_FORMATS:
        raise TraceFormatError(
            f"unknown trace format {trace_format!r}; expected one of {TRACE_FORMATS}"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    threads = workload.num_threads if num_threads is None else num_threads

    lengths: List[int] = []
    for thread_id in range(threads):
        path = directory / _trace_file_name(thread_id, trace_format)
        lengths.append(write_trace(path, workload.stream(thread_id)))

    layout = getattr(workload, "layout", None) or DEFAULT_LAYOUT
    regions_fn = getattr(workload, "memory_regions", None)
    regions = list(regions_fn()) if regions_fn is not None else []
    manifest = {
        "format_version": 1,
        "name": getattr(workload, "name", "trace"),
        "num_threads": threads,
        "trace_format": trace_format,
        "block_size": layout.block_size,
        "page_size": layout.page_size,
        "accesses_per_thread": lengths,
        "memory_regions": regions,
    }
    (directory / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
    return directory


class TraceDirWorkload:
    """A workload whose per-core access streams are trace files on disk.

    Implements the same protocol as
    :class:`~repro.workloads.synthetic.SyntheticWorkload` -- ``num_threads``,
    ``stream``, ``compiled_trace``, ``memory_regions``, ``serial_init_pages``
    -- so it is a drop-in workload for :class:`~repro.system.simulator.Simulator`
    on either engine, for :class:`~repro.experiments.runner.SweepPoint`
    sweeps and for ``repro bench``.

    The directory must contain the ``manifest.json`` written by
    :func:`record_workload` (see ``docs/workloads.md`` for authoring one by
    hand) plus one ``core-NNNN.<format>`` file per thread.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST_NAME
        if not manifest_path.is_file():
            raise TraceFormatError(
                f"{self.directory}: not a trace directory (missing {_MANIFEST_NAME}; "
                f"record one with record_workload() or `repro --record-trace`)"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as exc:
            raise TraceFormatError(f"{manifest_path}: invalid JSON ({exc})") from None
        for key in ("num_threads", "trace_format"):
            if key not in manifest:
                raise TraceFormatError(f"{manifest_path}: missing required key {key!r}")
        self.manifest = manifest
        self.name: str = manifest.get("name", self.directory.name)
        self.num_threads: int = int(manifest["num_threads"])
        self.trace_format: str = manifest["trace_format"]
        if self.trace_format not in TRACE_FORMATS:
            raise TraceFormatError(
                f"{manifest_path}: unknown trace_format {self.trace_format!r}; "
                f"expected one of {TRACE_FORMATS}"
            )
        self.layout = AddressLayout(
            block_size=int(manifest.get("block_size", DEFAULT_LAYOUT.block_size)),
            page_size=int(manifest.get("page_size", DEFAULT_LAYOUT.page_size)),
        )
        self._regions: List[Dict] = list(manifest.get("memory_regions", []))

    # -- identity -----------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceDirWorkload({str(self.directory)!r}, threads={self.num_threads})"

    def trace_path(self, thread_id: int) -> Path:
        """Path of the trace file backing ``thread_id``'s stream."""
        if not 0 <= thread_id < self.num_threads:
            raise ValueError(f"thread_id {thread_id} out of range")
        return self.directory / _trace_file_name(thread_id, self.trace_format)

    # -- workload protocol --------------------------------------------------

    def stream(self, thread_id: int) -> Iterator[MemoryAccess]:
        """Stream ``thread_id``'s recorded accesses from its trace file."""
        path = self.trace_path(thread_id)
        if not path.is_file():
            raise TraceFormatError(
                f"{self.directory}: missing trace file {path.name} "
                f"(manifest declares {self.num_threads} threads)"
            )
        return read_trace(path)

    def compiled_trace(self, thread_id: int) -> CompiledTrace:
        """Materialise ``thread_id``'s trace file for the compiled engine."""
        path = self.trace_path(thread_id)
        if not path.is_file():
            raise TraceFormatError(
                f"{self.directory}: missing trace file {path.name} "
                f"(manifest declares {self.num_threads} threads)"
            )
        return compile_trace_file(path, layout=self.layout)

    def memory_regions(self, thread_id: Optional[int] = None) -> List[Dict]:
        """The recorded ``memory_regions`` hint (same semantics as synthetic).

        With ``thread_id`` the result is restricted to that thread's private
        regions plus every shared region, preserving manifest order.
        """
        if thread_id is None:
            return [dict(region) for region in self._regions]
        return [
            dict(region)
            for region in self._regions
            if region.get("owner_thread") in (None, thread_id)
        ]

    def serial_init_pages(self) -> List[int]:
        """Pages the serial init phase touches (for FT1), from shared regions.

        Derived from the manifest's shared regions exactly the way
        :meth:`SyntheticWorkload.serial_init_pages` derives them from its
        spec, so FT1 placement matches between a recording and its replay.
        """
        pages: List[int] = []
        page_size = self.layout.page_size
        for region in self._regions:
            if region.get("owner_thread") is not None:
                continue
            size = region["size"]
            if size <= 0:
                continue
            first_page = region["base"] // page_size
            num_pages = max(1, size // page_size)
            pages.extend(range(first_page, first_page + num_pages))
        return pages
