"""PARSEC 3.0 workload models (native inputs, >100 MB working sets).

The paper evaluates the five PARSEC benchmarks whose native working sets
exceed 100 MB: facesim, streamcluster, fluidanimate, canneal and freqmine.
Each is modelled by a :class:`~repro.workloads.synthetic.WorkloadSpec` whose
parameters encode the published characteristics that drive the evaluation:

* all of them have large *shared* working sets with little memory-affinity,
  so ~75 % of their memory accesses land on remote sockets under first-touch
  placement (Table I);
* streamcluster's working set fits entirely within the per-socket 1 GB DRAM
  cache, which is why it enjoys the largest C3D speedup (50.7 %) and a 98 %
  reduction in memory traffic;
* facesim, fluidanimate and freqmine have considerable inter-thread
  communication (writes to shared data), which is what exposes the dirty
  remote DRAM-cache pathology and makes the full-dir design *lose*
  performance on them;
* canneal performs pseudo-random accesses over a multi-GB graph, so even a
  1 GB cache captures only part of its traffic.
"""

from __future__ import annotations

from typing import Dict

from .synthetic import WorkloadSpec

__all__ = ["PARSEC_SPECS", "parsec_names"]

MB = 2**20
GB = 2**30

PARSEC_SPECS: Dict[str, WorkloadSpec] = {
    "facesim": WorkloadSpec(
        name="facesim",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=160 * MB,
        warm_shared_bytes=int(1.6 * GB),
        cold_shared_bytes=256 * MB,
        p_private=0.15,
        p_hot=0.32,
        p_warm=0.41,
        p_cold=0.12,
        write_fraction_private=0.25,
        write_fraction_hot=0.50,
        write_fraction_warm=0.12,
        write_fraction_cold=0.05,
        best_policy="ft2",
        description="Physics simulation of a human face; iterative solver over "
        "a large shared mesh with neighbour communication each frame.",
    ),
    "streamcluster": WorkloadSpec(
        name="streamcluster",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=32 * MB,
        warm_shared_bytes=700 * MB,
        cold_shared_bytes=0,
        p_private=0.12,
        p_hot=0.10,
        p_warm=0.78,
        p_cold=0.0,
        write_fraction_private=0.25,
        write_fraction_hot=0.30,
        write_fraction_warm=0.05,
        write_fraction_cold=0.0,
        best_policy="ft2",
        description="Online clustering of streamed points; repeatedly scans a "
        "shared point set that fits within a 1 GB DRAM cache.",
    ),
    "fluidanimate": WorkloadSpec(
        name="fluidanimate",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=192 * MB,
        warm_shared_bytes=int(1.2 * GB),
        cold_shared_bytes=128 * MB,
        p_private=0.14,
        p_hot=0.36,
        p_warm=0.36,
        p_cold=0.14,
        write_fraction_private=0.25,
        write_fraction_hot=0.55,
        write_fraction_warm=0.15,
        write_fraction_cold=0.05,
        best_policy="ft2",
        description="Smoothed-particle hydrodynamics; grid cells exchanged "
        "between neighbouring threads every time step (high communication).",
    ),
    "canneal": WorkloadSpec(
        name="canneal",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=16 * MB,
        warm_shared_bytes=int(1.5 * GB),
        cold_shared_bytes=2 * GB,
        p_private=0.12,
        p_hot=0.05,
        p_warm=0.41,
        p_cold=0.42,
        write_fraction_private=0.25,
        write_fraction_hot=0.20,
        write_fraction_warm=0.08,
        write_fraction_cold=0.04,
        best_policy="interleave",
        description="Simulated-annealing chip routing; pseudo-random pointer "
        "chasing over a netlist far larger than any cache.",
    ),
    "freqmine": WorkloadSpec(
        name="freqmine",
        private_bytes_per_thread=2 * MB,
        hot_shared_bytes=128 * MB,
        warm_shared_bytes=int(1.4 * GB),
        cold_shared_bytes=256 * MB,
        p_private=0.16,
        p_hot=0.28,
        p_warm=0.44,
        p_cold=0.12,
        write_fraction_private=0.25,
        write_fraction_hot=0.45,
        write_fraction_warm=0.10,
        write_fraction_cold=0.05,
        best_policy="ft2",
        description="Frequent itemset mining over a shared FP-tree; mostly "
        "read-shared with bursts of tree construction writes.",
    ),
}


def parsec_names():
    """Names of the PARSEC workloads in the order the paper plots them."""
    return list(PARSEC_SPECS)
