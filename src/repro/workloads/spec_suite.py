"""Single-threaded SPEC CPU2006 workload model (mcf).

Section VI-C evaluates the TLB-based broadcast filter on the memory-intensive
single-threaded ``mcf`` benchmark: because a single-threaded workload has no
shared data (beyond user/kernel interaction), every page stays classified
thread-private and all of C3D's write-related broadcast traffic can be
elided.  The model therefore puts almost all accesses into the thread's
private region, with a small hot region standing in for kernel/user shared
pages.
"""

from __future__ import annotations

from typing import Dict

from .synthetic import WorkloadSpec

__all__ = ["SPEC_SPECS", "spec_names"]

MB = 2**20
GB = 2**30

SPEC_SPECS: Dict[str, WorkloadSpec] = {
    "mcf": WorkloadSpec(
        name="mcf",
        num_threads=1,
        private_bytes_per_thread=int(1.7 * GB),
        hot_shared_bytes=4 * MB,
        warm_shared_bytes=0,
        cold_shared_bytes=0,
        p_private=0.96,
        p_hot=0.04,
        p_warm=0.0,
        p_cold=0.0,
        write_fraction_private=0.30,
        write_fraction_hot=0.10,
        write_fraction_warm=0.0,
        write_fraction_cold=0.0,
        best_policy="ft2",
        description="SPEC CPU2006 429.mcf; single-threaded vehicle scheduling "
        "with a ~1.7 GB pointer-heavy private working set.",
    ),
}


def spec_names():
    """Names of the single-threaded SPEC workloads modelled."""
    return list(SPEC_SPECS)
