"""Synthetic workload generators (the reproduction's substitute for Pin/Simics traces).

The paper drives its simulator with traces collected from PARSEC 3.0 and
CloudSuite running their native inputs.  Those traces are not available (and
could not be replayed at full length in Python anyway), so each benchmark is
modelled as a parameterised synthetic access-stream generator.  The model is
deliberately simple and is entirely described by the parameters of
:class:`WorkloadSpec`; what matters for the paper's evaluation is the
*statistics* of the stream, not instruction semantics:

* a per-thread **private** region (stack/heap-local data), small enough to be
  mostly cache-resident and homed locally by first touch;
* a **hot shared** region sized around the LLC, which models actively
  communicated data (producer/consumer, locks, shared counters).  Writes to
  it create inter-socket communication and expose the dirty-DRAM-cache
  pathologies of the naive designs;
* a **warm shared** region sized between the LLC and the DRAM cache -- the
  temporal locality "beyond the reach of on-chip caches" that DRAM caches
  exploit (Fig. 3);
* a **cold shared** region far larger than any cache, modelling streaming or
  truly random accesses that no cache can capture.

Because the shared regions are first-touched by whichever thread happens to
reach each page first, pages spread roughly uniformly across sockets, which
reproduces the ~75 % remote-access fractions of Table I under first-touch
placement.

All region sizes are expressed in *paper-scale* bytes and divided by the
experiment's scale factor together with the cache capacities (DESIGN.md
section 5), which preserves hit rates and therefore the normalised results.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from ..memory.address import DEFAULT_LAYOUT, AddressLayout
from .trace import MemoryAccess

__all__ = ["WorkloadSpec", "SyntheticWorkload", "REGION_NAMES"]

#: Region identifiers in the order used by the mix vector.
REGION_NAMES = ("private", "hot", "warm", "cold")

# Base virtual addresses for the shared regions.  Private regions start at 0;
# the shared regions are placed at fixed high bases so that the regions never
# overlap for any realistic size/scale combination.
_PRIVATE_BASE = 0x0000_0000_0000
_HOT_BASE = 0x0100_0000_0000
_WARM_BASE = 0x0200_0000_0000
_COLD_BASE = 0x0400_0000_0000


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one benchmark's synthetic access stream.

    Sizes are in bytes at paper scale; probabilities are per memory access.
    """

    name: str
    num_threads: int = 32

    # -- region sizes (paper scale, bytes) ----------------------------------
    private_bytes_per_thread: int = 4 * 2**20
    hot_shared_bytes: int = 32 * 2**20
    warm_shared_bytes: int = 768 * 2**20
    cold_shared_bytes: int = 0

    # -- access mix (must sum to 1.0) -----------------------------------------
    p_private: float = 0.30
    p_hot: float = 0.15
    p_warm: float = 0.50
    p_cold: float = 0.05

    # -- write fractions ---------------------------------------------------------
    write_fraction_private: float = 0.35
    write_fraction_hot: float = 0.30
    write_fraction_warm: float = 0.10
    write_fraction_cold: float = 0.05

    # -- stream shape -----------------------------------------------------------
    mean_gap: int = 2
    spatial_accesses_per_block: int = 2
    seed: int = 1234

    #: The allocation policy the paper found best for this workload.
    best_policy: str = "ft2"
    #: Free-form description used in reports.
    description: str = ""

    def __post_init__(self) -> None:
        total = self.p_private + self.p_hot + self.p_warm + self.p_cold
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"{self.name}: access mix must sum to 1.0 (got {total})")
        for name in ("p_private", "p_hot", "p_warm", "p_cold"):
            if getattr(self, name) < 0:
                raise ValueError(f"{self.name}: {name} must be non-negative")
        if self.num_threads < 1:
            raise ValueError("num_threads must be >= 1")

    def scaled(self, factor: int) -> "WorkloadSpec":
        """Divide every region size by ``factor`` (keeping at least one page)."""
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self

        def scale(value: int) -> int:
            if value == 0:
                return 0
            return max(4096, value // factor)

        return dataclasses.replace(
            self,
            private_bytes_per_thread=scale(self.private_bytes_per_thread),
            hot_shared_bytes=scale(self.hot_shared_bytes),
            warm_shared_bytes=scale(self.warm_shared_bytes),
            cold_shared_bytes=scale(self.cold_shared_bytes),
        )

    def with_threads(self, num_threads: int) -> "WorkloadSpec":
        """Return a copy targeting a different thread count."""
        return dataclasses.replace(self, num_threads=num_threads)


class SyntheticWorkload:
    """Generates per-thread access streams from a :class:`WorkloadSpec`."""

    def __init__(
        self,
        spec: WorkloadSpec,
        *,
        accesses_per_thread: int = 20_000,
        layout: Optional[AddressLayout] = None,
    ) -> None:
        if accesses_per_thread < 1:
            raise ValueError("accesses_per_thread must be >= 1")
        self.spec = spec
        self.accesses_per_thread = accesses_per_thread
        self.layout = layout or DEFAULT_LAYOUT

    # -- identity -------------------------------------------------------------

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_threads(self) -> int:
        return self.spec.num_threads

    @property
    def best_policy(self) -> str:
        return self.spec.best_policy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SyntheticWorkload({self.spec.name!r}, threads={self.num_threads})"

    # -- region geometry ---------------------------------------------------------

    def _private_base(self, thread_id: int) -> int:
        return _PRIVATE_BASE + thread_id * max(self.spec.private_bytes_per_thread, 4096) * 2

    def region_blocks(self, region: str, thread_id: int = 0) -> int:
        """Number of blocks in a region (per thread for the private region)."""
        sizes = {
            "private": self.spec.private_bytes_per_thread,
            "hot": self.spec.hot_shared_bytes,
            "warm": self.spec.warm_shared_bytes,
            "cold": self.spec.cold_shared_bytes,
        }
        return max(1, sizes[region] // self.layout.block_size)

    def _region_base(self, region: str, thread_id: int) -> int:
        bases = {
            "private": self._private_base(thread_id),
            "hot": _HOT_BASE,
            "warm": _WARM_BASE,
            "cold": _COLD_BASE,
        }
        return bases[region]

    # -- stream generation ---------------------------------------------------------

    def _batches(self, thread_id: int):
        """Yield ``(addrs, writes, gaps)`` numpy array batches for one thread.

        This is the single source of randomness for a thread's trace: both
        :meth:`stream` (object-at-a-time, legacy) and :meth:`compiled_trace`
        (flat arrays, fast engine) consume it, so the two representations are
        bit-identical by construction.
        """
        if not 0 <= thread_id < self.spec.num_threads:
            raise ValueError(f"thread_id {thread_id} out of range")
        spec = self.spec
        rng = np.random.RandomState((spec.seed * 1_000_003 + thread_id) % (2**31 - 1))
        block_size = self.layout.block_size
        word_slots = block_size // 8

        probabilities = np.array([spec.p_private, spec.p_hot, spec.p_warm, spec.p_cold])
        write_fractions = np.array(
            [
                spec.write_fraction_private,
                spec.write_fraction_hot,
                spec.write_fraction_warm,
                spec.write_fraction_cold,
            ]
        )
        region_blocks = np.array(
            [self.region_blocks(region, thread_id) for region in REGION_NAMES], dtype=np.int64
        )
        region_bases = np.array(
            [self._region_base(region, thread_id) for region in REGION_NAMES], dtype=np.int64
        )

        spatial = max(1, spec.spatial_accesses_per_block)
        remaining = self.accesses_per_thread
        batch_blocks = 2048

        while remaining > 0:
            blocks_this_batch = min(batch_blocks, (remaining + spatial - 1) // spatial)
            regions = rng.choice(len(REGION_NAMES), size=blocks_this_batch, p=probabilities)
            block_indices = (rng.random_sample(blocks_this_batch) * region_blocks[regions]).astype(
                np.int64
            )
            block_addrs = region_bases[regions] + block_indices * block_size

            total_refs = blocks_this_batch * spatial
            offsets = rng.randint(0, word_slots, size=total_refs) * 8
            writes = rng.random_sample(total_refs) < np.repeat(write_fractions[regions], spatial)
            gaps = (
                rng.poisson(spec.mean_gap, size=total_refs)
                if spec.mean_gap > 0
                else np.zeros(total_refs, dtype=np.int64)
            )
            addrs = np.repeat(block_addrs, spatial) + offsets

            emit = min(remaining, total_refs)
            yield addrs[:emit], writes[:emit], gaps[:emit]
            remaining -= emit

    def stream(self, thread_id: int) -> Iterator[MemoryAccess]:
        """Yield ``accesses_per_thread`` accesses for one thread.

        The stream is deterministic given (spec.seed, thread_id).  Random
        choices are drawn in vectorised batches so that trace generation is a
        small fraction of the simulation cost.
        """
        for addrs, writes, gaps in self._batches(thread_id):
            for i in range(len(addrs)):
                yield MemoryAccess(
                    addr=int(addrs[i]), is_write=bool(writes[i]), gap=int(gaps[i])
                )

    def compiled_trace(self, thread_id: int) -> "CompiledTrace":
        """Materialise one thread's trace into a :class:`CompiledTrace`.

        The access sequence is identical to :meth:`stream`; only the
        representation differs (flat columns instead of per-access objects).
        """
        from .compiled import CompiledTrace

        chunks = list(self._batches(thread_id))
        if not chunks:
            return CompiledTrace.empty()
        addrs = np.concatenate([c[0] for c in chunks])
        writes = np.concatenate([c[1] for c in chunks])
        gaps = np.concatenate([c[2] for c in chunks])
        return CompiledTrace.from_arrays(addrs, writes, gaps, layout=self.layout)

    # -- hooks used by the simulator / allocation policies -----------------------------

    def memory_regions(self, thread_id: Optional[int] = None) -> List[dict]:
        """Describe the workload's memory regions.

        Returns a list of ``{"kind", "base", "size", "owner_thread"}`` records
        (``owner_thread`` is None for shared regions).  The simulation driver
        uses this to model *steady-state* first-touch placement: by the time
        the measured window starts, every page of the data set has long been
        allocated, private pages sit on their owning thread's socket and
        shared pages are spread across the sockets.  Without this hint, a
        short trace-driven run would classify the first (cold) touch of every
        page as local and understate the remote-access fractions of Table I.
        """
        regions: List[dict] = []
        threads = [thread_id] if thread_id is not None else range(self.spec.num_threads)
        for tid in threads:
            if self.spec.private_bytes_per_thread > 0:
                regions.append(
                    {
                        "kind": "private",
                        "base": self._private_base(tid),
                        "size": self.spec.private_bytes_per_thread,
                        "owner_thread": tid,
                    }
                )
        for kind, size in (
            ("hot", self.spec.hot_shared_bytes),
            ("warm", self.spec.warm_shared_bytes),
            ("cold", self.spec.cold_shared_bytes),
        ):
            if size > 0:
                regions.append(
                    {
                        "kind": kind,
                        "base": self._region_base(kind, 0),
                        "size": size,
                        "owner_thread": None,
                    }
                )
        return regions

    def serial_init_pages(self) -> List[int]:
        """Pages touched by the serial initialisation phase (for FT1 placement).

        The single-threaded initialisation touches the entire shared data set,
        which is why the paper found FT1 to perform poorly (everything lands
        on socket 0).  Private regions are initialised by their own threads
        and are not included.
        """
        pages: List[int] = []
        for region in ("hot", "warm", "cold"):
            size = {
                "hot": self.spec.hot_shared_bytes,
                "warm": self.spec.warm_shared_bytes,
                "cold": self.spec.cold_shared_bytes,
            }[region]
            if size == 0:
                continue
            base = self._region_base(region, 0)
            first_page = self.layout.page_of(base)
            num_pages = max(1, size // self.layout.page_size)
            pages.extend(range(first_page, first_page + num_pages))
        return pages

    # -- derived helpers -----------------------------------------------------------

    def scaled(self, factor: int) -> "SyntheticWorkload":
        """Return a copy with all region sizes scaled down by ``factor``."""
        return SyntheticWorkload(
            self.spec.scaled(factor),
            accesses_per_thread=self.accesses_per_thread,
            layout=self.layout,
        )

    def with_accesses(self, accesses_per_thread: int) -> "SyntheticWorkload":
        """Return a copy generating a different trace length."""
        return SyntheticWorkload(
            self.spec, accesses_per_thread=accesses_per_thread, layout=self.layout
        )

    def with_threads(self, num_threads: int) -> "SyntheticWorkload":
        """Return a copy with a different thread count (e.g. for 2-socket runs)."""
        return SyntheticWorkload(
            self.spec.with_threads(num_threads),
            accesses_per_thread=self.accesses_per_thread,
            layout=self.layout,
        )

    def total_footprint_bytes(self) -> int:
        """Approximate total data footprint of the workload."""
        return (
            self.spec.private_bytes_per_thread * self.spec.num_threads
            + self.spec.hot_shared_bytes
            + self.spec.warm_shared_bytes
            + self.spec.cold_shared_bytes
        )
