"""Workload characterisation: trace directories -> JSON profiles.

``repro analyze`` reduces any workload -- most usefully a trace directory
imported from an external tool (:mod:`.importers`) -- to a compact JSON
*profile* of the statistics the simulator actually responds to:

* **footprint** -- unique blocks / pages / bytes touched;
* **read/write mix** -- global, per thread, and split by private vs shared
  data;
* **sharing** -- how many threads touch each block (the sharing-degree
  histogram behind the paper's private/shared classification);
* **reuse distance** -- per-thread LRU stack distances in blocks, log2
  bucketed (computed exactly with a Fenwick tree, not sampled);
* **page & block locality** -- run lengths of consecutive accesses to the
  same page / block (the block-run mean is what the cloner uses for
  ``spatial_accesses_per_block``).

The profile is pure JSON (``schema: workload-profile/v1``), deterministic
for a given workload -- the golden test in
``tests/workloads/test_analyzer.py`` pins one byte for byte -- and is the
input contract of :mod:`.clone`, which fits a synthetic ``WorkloadSpec``
to it.  See ``docs/ingestion.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..stats.histograms import Log2Histogram
from .trace_io import TraceFormatError, TraceDirWorkload

__all__ = [
    "PROFILE_SCHEMA",
    "analyze_trace_dir",
    "analyze_workload",
    "profile_to_markdown",
    "main",
]

PROFILE_SCHEMA = "workload-profile/v1"


class _Fenwick:
    """Fenwick (binary indexed) tree over positions ``1..size``.

    Supports the two operations exact LRU stack-distance computation needs:
    point update and prefix sum, both O(log n).
    """

    __slots__ = ("size", "_tree")

    def __init__(self, size: int) -> None:
        self.size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        while index <= self.size:
            self._tree[index] += delta
            index += index & -index

    def prefix(self, index: int) -> int:
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & -index
        return total


def _round(value: float) -> float:
    return round(value, 6)


def _ratio(part: int, whole: int) -> float:
    return _round(part / whole) if whole else 0.0


def analyze_workload(
    workload,
    *,
    name: Optional[str] = None,
    source: str = "<workload>",
) -> Dict:
    """Characterise any workload implementing the stream protocol.

    Streams each thread twice (once to discover the block -> thread map,
    once to classify accesses against it), so memory use is proportional to
    the *footprint* -- never the trace length.  Returns the profile dict.
    """
    layout = getattr(workload, "layout", None)
    if layout is None:
        from ..memory.address import DEFAULT_LAYOUT

        layout = DEFAULT_LAYOUT
    block_size = layout.block_size
    page_size = layout.page_size
    num_threads = workload.num_threads

    # -- pass 1: footprint and the block -> thread-set map -------------------
    block_threads: Dict[int, int] = {}
    pages = set()
    thread_accesses = [0] * num_threads
    thread_writes = [0] * num_threads
    thread_blocks = [0] * num_threads
    gap_total = 0
    for tid in range(num_threads):
        bit = 1 << tid
        seen = 0
        for access in workload.stream(tid):
            block = access.addr // block_size
            mask = block_threads.get(block, 0)
            if not mask & bit:
                block_threads[block] = mask | bit
                seen += 1
            pages.add(access.addr // page_size)
            thread_accesses[tid] += 1
            if access.is_write:
                thread_writes[tid] += 1
            gap_total += access.gap
        thread_blocks[tid] = seen
    total_accesses = sum(thread_accesses)
    if total_accesses == 0:
        raise TraceFormatError(f"{source}: workload contains no memory accesses")

    shared_blocks = sum(1 for mask in block_threads.values() if mask & (mask - 1))
    degree_hist: Dict[int, int] = {}
    for mask in block_threads.values():
        degree = bin(mask).count("1")
        degree_hist[degree] = degree_hist.get(degree, 0) + 1

    # -- pass 2: reuse distance, locality runs, private/shared classification
    reuse = Log2Histogram()
    cold_accesses = 0
    page_runs = Log2Histogram()
    block_run_total = 0
    block_run_count = 0
    private_counts = [0, 0]  # [reads, writes] to single-thread blocks
    shared_counts = [0, 0]
    for tid in range(num_threads):
        if thread_accesses[tid] == 0:
            continue
        fenwick = _Fenwick(thread_accesses[tid])
        last_position: Dict[int, int] = {}
        position = 0
        current_page = current_block = None
        page_run = block_run = 0
        for access in workload.stream(tid):
            block = access.addr // block_size
            page = access.addr // page_size

            position += 1
            previous = last_position.get(block)
            if previous is None:
                cold_accesses += 1
            else:
                reuse.add(fenwick.prefix(position - 1) - fenwick.prefix(previous))
                fenwick.add(previous, -1)
            fenwick.add(position, 1)
            last_position[block] = position

            if page == current_page:
                page_run += 1
            else:
                if current_page is not None:
                    page_runs.add(page_run)
                current_page, page_run = page, 1
            if block == current_block:
                block_run += 1
            else:
                if current_block is not None:
                    block_run_total += block_run
                    block_run_count += 1
                current_block, block_run = block, 1

            mask = block_threads[block]
            counts = shared_counts if mask & (mask - 1) else private_counts
            counts[access.is_write] += 1
        page_runs.add(page_run)
        block_run_total += block_run
        block_run_count += 1

    total_writes = sum(thread_writes)
    private_accesses = private_counts[0] + private_counts[1]
    shared_accesses = shared_counts[0] + shared_counts[1]
    return {
        "schema": PROFILE_SCHEMA,
        "name": name or getattr(workload, "name", "workload"),
        "source": str(source),
        "num_threads": num_threads,
        "block_size": block_size,
        "page_size": page_size,
        "total_accesses": total_accesses,
        "total_reads": total_accesses - total_writes,
        "total_writes": total_writes,
        "write_fraction": _ratio(total_writes, total_accesses),
        "mean_gap": _round(gap_total / total_accesses),
        "footprint": {
            "unique_blocks": len(block_threads),
            "unique_pages": len(pages),
            "bytes": len(block_threads) * block_size,
        },
        "per_thread": [
            {
                "thread": tid,
                "accesses": thread_accesses[tid],
                "writes": thread_writes[tid],
                "unique_blocks": thread_blocks[tid],
            }
            for tid in range(num_threads)
        ],
        "sharing": {
            "private_blocks": len(block_threads) - shared_blocks,
            "shared_blocks": shared_blocks,
            "shared_block_fraction": _ratio(shared_blocks, len(block_threads)),
            "private_accesses": private_accesses,
            "shared_accesses": shared_accesses,
            "shared_access_fraction": _ratio(shared_accesses, total_accesses),
            "write_fraction_private": _ratio(private_counts[1], private_accesses),
            "write_fraction_shared": _ratio(shared_counts[1], shared_accesses),
            "sharing_degree_histogram": {
                str(degree): degree_hist[degree] for degree in sorted(degree_hist)
            },
        },
        "reuse_distance": {
            "cold_accesses": cold_accesses,
            "histogram": reuse.to_json_dict(),
            "median_lower_bound": reuse.quantile(0.5) if reuse.total else None,
        },
        "page_locality": {
            "runs": page_runs.total,
            "histogram": page_runs.to_json_dict(),
            "mean_run_length": _ratio(total_accesses, page_runs.total),
        },
        "block_locality": {
            "runs": block_run_count,
            "mean_run_length": _ratio(block_run_total, block_run_count),
        },
    }


def analyze_trace_dir(directory: Union[str, Path]) -> Dict:
    """Load a trace directory and return its profile dict."""
    workload = TraceDirWorkload(directory)
    return analyze_workload(workload, name=workload.name, source=str(directory))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def profile_to_markdown(profile: Dict) -> str:
    """Render a profile as the Markdown report printed by ``repro analyze``."""
    footprint = profile["footprint"]
    sharing = profile["sharing"]
    lines: List[str] = [
        f"# Workload profile: {profile['name']}",
        "",
        f"Source: `{profile['source']}`",
        "",
        "| metric | value |",
        "| --- | --- |",
        f"| threads | {profile['num_threads']} |",
        f"| accesses | {profile['total_accesses']} |",
        f"| write fraction | {profile['write_fraction']:.3f} |",
        f"| mean gap (instructions) | {profile['mean_gap']:.2f} |",
        f"| footprint | {footprint['bytes']} B "
        f"({footprint['unique_blocks']} blocks / {footprint['unique_pages']} pages) |",
        f"| shared blocks | {sharing['shared_blocks']} "
        f"({100 * sharing['shared_block_fraction']:.1f}%) |",
        f"| accesses to shared data | {sharing['shared_accesses']} "
        f"({100 * sharing['shared_access_fraction']:.1f}%) |",
        f"| write fraction (private / shared) | "
        f"{sharing['write_fraction_private']:.3f} / "
        f"{sharing['write_fraction_shared']:.3f} |",
        "",
        "## Sharing degree (threads per block)",
        "",
        "| degree | blocks |",
        "| --- | --- |",
    ]
    for degree, count in sharing["sharing_degree_histogram"].items():
        lines.append(f"| {degree} | {count} |")
    reuse = Log2Histogram.from_json_dict(profile["reuse_distance"]["histogram"])
    lines += [
        "",
        "## Reuse distance (blocks, log2 buckets)",
        "",
        f"Cold (first-touch) accesses: {profile['reuse_distance']['cold_accesses']}",
        "",
        reuse.format_markdown(value_label="reuse distance"),
        "",
        "## Page-run lengths (log2 buckets)",
        "",
        Log2Histogram.from_json_dict(profile["page_locality"]["histogram"]).format_markdown(
            value_label="run length"
        ),
    ]
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# CLI (`repro analyze ...`)
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="Characterise a trace directory into a JSON workload "
        "profile (docs/ingestion.md).",
    )
    parser.add_argument("trace_dir", help="trace directory to analyse")
    parser.add_argument("--json", default=None, metavar="FILE",
                        help="write the profile as JSON ('-' for stdout)")
    parser.add_argument("--clone-out", default=None, metavar="FILE",
                        help="fit a synthetic clone to the profile and write "
                             "its spec JSON here")
    parser.add_argument("--clone-name", default=None,
                        help="name for the fitted clone (default: <name>-clone)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the Markdown report on stdout")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        profile = analyze_trace_dir(args.trace_dir)
    except (TraceFormatError, FileNotFoundError, KeyError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    payload = json.dumps(profile, indent=2) + "\n"
    if args.json == "-":
        sys.stdout.write(payload)
    elif args.json:
        Path(args.json).write_text(payload)
    if not args.quiet and args.json != "-":
        sys.stdout.write(profile_to_markdown(profile))
    if args.clone_out:
        from .clone import fit_clone, save_clone

        spec, accesses = fit_clone(profile, name=args.clone_name)
        save_clone(args.clone_out, spec, accesses_per_thread=accesses, profile=profile)
        if not args.quiet:
            print(f"clone spec written to {args.clone_out} ({spec.name})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro analyze`
    sys.exit(main())
