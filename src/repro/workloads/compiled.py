"""Compiled (array-backed) trace representation for the fast engine.

The legacy simulation path materialises one :class:`~repro.workloads.trace.MemoryAccess`
dataclass per memory reference and threads it through a generator; at
figure-sweep scale the allocation and generator machinery dominate the
simulator's run time.  A :class:`CompiledTrace` instead stores each per-thread
access stream as flat parallel columns -- byte address, write flag,
instruction gap, plus *precomputed* block and page numbers -- that the hot
loop consumes by index.  The columns are plain Python lists of ints/bools
(converted once from the vectorised numpy batches), which is the fastest
indexed representation for a pure-Python consumer.

Any workload that exposes ``stream(thread_id)`` can be compiled with
:func:`compile_trace`; workloads that can generate their batches vectorised
(:class:`~repro.workloads.synthetic.SyntheticWorkload`) provide a
``compiled_trace`` method that skips per-access object creation entirely.
Both paths produce bit-identical access sequences, which the engine
equivalence test (``tests/system/test_engine_equivalence.py``) locks in.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..memory.address import DEFAULT_LAYOUT, AddressLayout

__all__ = ["CompiledTrace", "compile_trace", "compile_workload"]


class CompiledTrace:
    """One thread's access stream as flat parallel columns.

    Attributes
    ----------
    addrs, writes, gaps:
        The raw trace columns (byte address, store flag, instruction gap).
    blocks, pages:
        Precomputed ``addr // block_size`` and ``addr // page_size`` so the
        hot loop never performs address arithmetic.
    length:
        Number of accesses in the trace.
    """

    __slots__ = ("addrs", "writes", "gaps", "blocks", "pages", "length")

    def __init__(
        self,
        addrs: List[int],
        writes: List[bool],
        gaps: List[int],
        blocks: List[int],
        pages: List[int],
    ) -> None:
        self.addrs = addrs
        self.writes = writes
        self.gaps = gaps
        self.blocks = blocks
        self.pages = pages
        self.length = len(addrs)

    @classmethod
    def empty(cls) -> "CompiledTrace":
        return cls([], [], [], [], [])

    @classmethod
    def from_arrays(
        cls,
        addrs: np.ndarray,
        writes: np.ndarray,
        gaps: np.ndarray,
        *,
        layout: Optional[AddressLayout] = None,
    ) -> "CompiledTrace":
        """Build a trace from numpy columns, precomputing block/page numbers."""
        layout = layout or DEFAULT_LAYOUT
        addrs = np.asarray(addrs, dtype=np.int64)
        blocks = addrs // layout.block_size
        pages = addrs // layout.page_size
        return cls(
            addrs.tolist(),
            np.asarray(writes, dtype=bool).tolist(),
            np.asarray(gaps, dtype=np.int64).tolist(),
            blocks.tolist(),
            pages.tolist(),
        )

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTrace(length={self.length})"


def compile_trace(
    workload, thread_id: int, *, layout: Optional[AddressLayout] = None
) -> CompiledTrace:
    """Compile one thread's access stream into a :class:`CompiledTrace`.

    Uses the workload's vectorised ``compiled_trace`` method when available
    (and its address layout matches the requested one); otherwise falls back
    to draining ``stream(thread_id)`` once (any iterable of
    :class:`~repro.workloads.trace.MemoryAccess` works).
    """
    vectorised = getattr(workload, "compiled_trace", None)
    if vectorised is not None and (
        layout is None or getattr(workload, "layout", None) == layout
    ):
        return vectorised(thread_id)

    layout = layout or getattr(workload, "layout", None) or DEFAULT_LAYOUT
    addrs: List[int] = []
    writes: List[bool] = []
    gaps: List[int] = []
    for access in workload.stream(thread_id):
        addrs.append(access.addr)
        writes.append(access.is_write)
        gaps.append(access.gap)
    if not addrs:
        return CompiledTrace.empty()
    block_size = layout.block_size
    page_size = layout.page_size
    blocks = [a // block_size for a in addrs]
    pages = [a // page_size for a in addrs]
    return CompiledTrace(addrs, writes, gaps, blocks, pages)


def compile_workload(
    workload, num_threads: int, *, layout: Optional[AddressLayout] = None
) -> Dict[int, CompiledTrace]:
    """Compile the first ``num_threads`` per-thread streams of a workload."""
    return {
        thread_id: compile_trace(workload, thread_id, layout=layout)
        for thread_id in range(num_threads)
    }
