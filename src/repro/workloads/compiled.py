"""Compiled (array-backed) trace representation: the default engine's input.

Since PR 1 the ``compiled`` engine is the simulator's *default* execution
path: every per-thread access stream is materialised into a
:class:`CompiledTrace` -- flat parallel columns of byte address, write flag
and instruction gap, plus *precomputed* block and page numbers -- that
:meth:`EngineContext.run_phase_compiled` consumes by index.  The columns are
plain Python lists of ints/bools (converted once from vectorised numpy
batches), which is the fastest indexed representation for a pure-Python
consumer.  The one-``MemoryAccess``-dataclass-at-a-time generator path
survives as the ``object`` engine, kept as the readable reference
implementation and for equivalence testing.

Every workload frontend can produce a :class:`CompiledTrace`:

* :class:`~repro.workloads.synthetic.SyntheticWorkload` builds one directly
  from its vectorised numpy batches (``compiled_trace``), never allocating
  per-access objects;
* trace files compile in bounded-memory chunks via
  :func:`~repro.workloads.trace_io.compile_trace_file`;
* any other object exposing ``stream(thread_id)`` goes through the generic
  :func:`compile_trace` fallback, which drains the stream once.

All paths produce bit-identical access sequences and therefore bit-identical
simulation statistics, which ``tests/system/test_engine_equivalence.py`` and
``tests/system/test_trace_replay.py`` lock in.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..memory.address import DEFAULT_LAYOUT, AddressLayout

__all__ = ["CompiledTrace", "compile_trace", "compile_workload"]


class CompiledTrace:
    """One thread's access stream as flat parallel columns.

    Attributes
    ----------
    addrs, writes, gaps:
        The raw trace columns (byte address, store flag, instruction gap).
    blocks, pages:
        Precomputed ``addr // block_size`` and ``addr // page_size`` so the
        hot loop never performs address arithmetic.
    length:
        Number of accesses in the trace.
    """

    __slots__ = ("addrs", "writes", "gaps", "blocks", "pages", "length", "_columns")

    def __init__(
        self,
        addrs: List[int],
        writes: List[bool],
        gaps: List[int],
        blocks: List[int],
        pages: List[int],
    ) -> None:
        self.addrs = addrs
        self.writes = writes
        self.gaps = gaps
        self.blocks = blocks
        self.pages = pages
        self.length = len(addrs)
        self._columns: Optional[Dict[str, np.ndarray]] = None

    def columns(self) -> Dict[str, np.ndarray]:
        """Columnar numpy views of the trace, built once and cached.

        Returns ``{"blocks": int64, "pages": int64, "writes": bool,
        "gaps": int64}`` arrays of length :attr:`length`.  The vectorized
        engine (:mod:`repro.engines.vector`) classifies batch windows from
        these; the per-access engines keep indexing the Python lists, which
        remain the canonical columns.
        """
        cols = self._columns
        if cols is None:
            cols = self._columns = {
                "blocks": np.asarray(self.blocks, dtype=np.int64),
                "pages": np.asarray(self.pages, dtype=np.int64),
                "writes": np.asarray(self.writes, dtype=bool),
                "gaps": np.asarray(self.gaps, dtype=np.int64),
            }
        return cols

    @classmethod
    def empty(cls) -> "CompiledTrace":
        """A zero-length trace (used for idle cores, e.g. scenario gaps)."""
        return cls([], [], [], [], [])

    @classmethod
    def from_arrays(
        cls,
        addrs: np.ndarray,
        writes: np.ndarray,
        gaps: np.ndarray,
        *,
        layout: Optional[AddressLayout] = None,
    ) -> "CompiledTrace":
        """Build a trace from numpy columns, precomputing block/page numbers.

        Parameters
        ----------
        addrs, writes, gaps:
            Equal-length 1-D arrays (or array-likes) of byte addresses,
            store flags and instruction gaps.
        layout:
            Address layout used for the block/page precomputation
            (:data:`~repro.memory.address.DEFAULT_LAYOUT` when omitted).
        """
        layout = layout or DEFAULT_LAYOUT
        addrs = np.asarray(addrs, dtype=np.int64)
        writes = np.asarray(writes, dtype=bool)
        gaps = np.asarray(gaps, dtype=np.int64)
        blocks = addrs // layout.block_size
        pages = addrs // layout.page_size
        trace = cls(
            addrs.tolist(),
            writes.tolist(),
            gaps.tolist(),
            blocks.tolist(),
            pages.tolist(),
        )
        # The arrays already exist here; seed the columns() cache so batch
        # engines don't round-trip the lists back through numpy.
        trace._columns = {
            "blocks": blocks,
            "pages": pages,
            "writes": writes,
            "gaps": gaps,
        }
        return trace

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledTrace(length={self.length})"


def compile_trace(
    workload, thread_id: int, *, layout: Optional[AddressLayout] = None
) -> CompiledTrace:
    """Compile one thread's access stream into a :class:`CompiledTrace`.

    Uses the workload's vectorised ``compiled_trace`` method when available
    (and its address layout matches the requested one); otherwise falls back
    to draining ``stream(thread_id)`` once (any iterable of
    :class:`~repro.workloads.trace.MemoryAccess` works).
    """
    vectorised = getattr(workload, "compiled_trace", None)
    if vectorised is not None and (
        layout is None or getattr(workload, "layout", None) == layout
    ):
        return vectorised(thread_id)

    layout = layout or getattr(workload, "layout", None) or DEFAULT_LAYOUT
    addrs: List[int] = []
    writes: List[bool] = []
    gaps: List[int] = []
    for access in workload.stream(thread_id):
        addrs.append(access.addr)
        writes.append(access.is_write)
        gaps.append(access.gap)
    if not addrs:
        return CompiledTrace.empty()
    block_size = layout.block_size
    page_size = layout.page_size
    blocks = [a // block_size for a in addrs]
    pages = [a // page_size for a in addrs]
    return CompiledTrace(addrs, writes, gaps, blocks, pages)


def compile_workload(
    workload, num_threads: int, *, layout: Optional[AddressLayout] = None
) -> Dict[int, CompiledTrace]:
    """Compile the first ``num_threads`` per-thread streams of a workload."""
    return {
        thread_id: compile_trace(workload, thread_id, layout=layout)
        for thread_id in range(num_threads)
    }
