"""Trace record format consumed by the simulation driver."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List

__all__ = ["MemoryAccess", "materialise"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference from a core's trace.

    Attributes
    ----------
    addr:
        Byte address referenced.
    is_write:
        True for stores, False for loads.
    gap:
        Number of non-memory instructions executed since the previous memory
        reference (the 1-IPC core charges one cycle per such instruction).
    """

    addr: int
    is_write: bool = False
    gap: int = 0


def materialise(stream: Iterable[MemoryAccess], limit: int = None) -> List[MemoryAccess]:
    """Collect (a prefix of) a trace stream into a list, mainly for tests."""
    out: List[MemoryAccess] = []
    for i, access in enumerate(stream):
        if limit is not None and i >= limit:
            break
        out.append(access)
    return out
