"""The in-memory trace record every workload frontend produces.

A workload's ``stream(thread_id)`` yields :class:`MemoryAccess` records --
one per memory reference -- regardless of where the trace comes from: the
synthetic generators (:mod:`repro.workloads.synthetic`), a trace file on
disk (:mod:`repro.workloads.trace_io`, whose CSV/binary records map
field-for-field onto :class:`MemoryAccess`), or a scenario composition
(:mod:`repro.workloads.scenario`).  The compiled engine stores the same
three fields as flat columns instead (:mod:`repro.workloads.compiled`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

__all__ = ["MemoryAccess", "materialise"]


@dataclass(frozen=True)
class MemoryAccess:
    """One memory reference from a core's trace.

    Attributes
    ----------
    addr:
        Byte address referenced.
    is_write:
        True for stores, False for loads.
    gap:
        Number of non-memory instructions executed since the previous memory
        reference (the 1-IPC core charges one cycle per such instruction).
    """

    addr: int
    is_write: bool = False
    gap: int = 0


def materialise(stream: Iterable[MemoryAccess], limit: int = None) -> List[MemoryAccess]:
    """Collect (a prefix of) a trace stream into a list, mainly for tests.

    Parameters
    ----------
    stream:
        Any iterable of :class:`MemoryAccess`.
    limit:
        Stop after this many records (``None`` collects the whole stream --
        beware of long traces).
    """
    out: List[MemoryAccess] = []
    for i, access in enumerate(stream):
        if limit is not None and i >= limit:
            break
        out.append(access)
    return out
