"""CloudSuite workload models (scale-out server workloads).

The paper uses three CloudSuite 1.0 workloads with available 32-core Simics
checkpoints -- nutch (web search), cassandra (data serving) and
classification (data analytics / MapReduce) -- plus the Graph Analytics
benchmark (tunkrank) from CloudSuite 2.0.

Characteristics encoded in the specs:

* server workloads have comparatively little inter-thread communication
  (Ferdman et al., ASPLOS'12), so the full-dir design *helps* them (6.4 % to
  22.9 % in the paper) -- their shared-region write fractions are low;
* nutch is the exception: the thread that accepts a request is usually not
  the thread that processes it, so request/response buffers bounce between
  sockets.  That hand-off is modelled with a hot shared region with a high
  write fraction, which is what makes full-dir lose badly on nutch while C3D
  does not;
* tunkrank (graph analytics) has the lowest remote-access fraction in
  Table I (61.6 %) because a larger share of its accesses go to per-thread
  private state.
"""

from __future__ import annotations

from typing import Dict

from .synthetic import WorkloadSpec

__all__ = ["CLOUDSUITE_SPECS", "cloudsuite_names"]

MB = 2**20
GB = 2**30

CLOUDSUITE_SPECS: Dict[str, WorkloadSpec] = {
    "nutch": WorkloadSpec(
        name="nutch",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=224 * MB,
        warm_shared_bytes=int(1.5 * GB),
        cold_shared_bytes=512 * MB,
        p_private=0.14,
        p_hot=0.34,
        p_warm=0.36,
        p_cold=0.16,
        write_fraction_private=0.25,
        write_fraction_hot=0.50,
        write_fraction_warm=0.05,
        write_fraction_cold=0.03,
        best_policy="ft2",
        description="Apache Nutch web search; request hand-off between "
        "front-end and worker threads bounces hot buffers across sockets.",
    ),
    "cassandra": WorkloadSpec(
        name="cassandra",
        private_bytes_per_thread=2 * MB,
        hot_shared_bytes=32 * MB,
        warm_shared_bytes=2 * GB,
        cold_shared_bytes=512 * MB,
        p_private=0.16,
        p_hot=0.10,
        p_warm=0.57,
        p_cold=0.17,
        write_fraction_private=0.25,
        write_fraction_hot=0.15,
        write_fraction_warm=0.04,
        write_fraction_cold=0.03,
        best_policy="interleave",
        description="Cassandra data serving; large read-mostly memtable/row "
        "cache shared by all server threads.",
    ),
    "classification": WorkloadSpec(
        name="classification",
        private_bytes_per_thread=1 * MB,
        hot_shared_bytes=24 * MB,
        warm_shared_bytes=int(1.8 * GB),
        cold_shared_bytes=256 * MB,
        p_private=0.15,
        p_hot=0.10,
        p_warm=0.61,
        p_cold=0.14,
        write_fraction_private=0.25,
        write_fraction_hot=0.15,
        write_fraction_warm=0.05,
        write_fraction_cold=0.03,
        best_policy="ft2",
        description="Mahout/Hadoop text classification; map tasks stream a "
        "shared training corpus with little write sharing.",
    ),
    "tunkrank": WorkloadSpec(
        name="tunkrank",
        private_bytes_per_thread=32 * MB,
        hot_shared_bytes=16 * MB,
        warm_shared_bytes=int(2.5 * GB),
        cold_shared_bytes=1 * GB,
        p_private=0.33,
        p_hot=0.05,
        p_warm=0.40,
        p_cold=0.22,
        write_fraction_private=0.25,
        write_fraction_hot=0.15,
        write_fraction_warm=0.04,
        write_fraction_cold=0.03,
        best_policy="interleave",
        description="GraphLab TunkRank (Twitter influence); per-thread vertex "
        "partitions plus a large shared edge list.",
    ),
}


def cloudsuite_names():
    """Names of the CloudSuite workloads in the order the paper plots them."""
    return list(CLOUDSUITE_SPECS)
