"""Scenario composition: multi-program, multi-socket workload mixes.

A *scenario* assigns a workload source -- a registered synthetic benchmark or
a recorded trace directory -- to each group of cores of the simulated
machine, so a single simulation can run e.g. ``facesim`` on socket 0,
``cassandra`` on socket 1 and a hand-written trace on two cores of socket 2.
Scenarios are the reproduction's answer to the paper's consolidated-server
setting, where independent jobs share one NUMA machine.

Three layers:

* :class:`ScenarioEntry` / :class:`Scenario` -- the declarative description
  (also loadable from JSON via :func:`load_scenario`; see
  ``docs/workloads.md`` for the schema).  Core groups are given either as
  explicit global core ids (``cores``) or as whole sockets (``sockets``),
  resolved against the machine topology at build time and validated for
  range and overlap.
* :class:`ScenarioWorkload` -- the composed runtime object.  It implements
  the full workload protocol (``stream`` / ``compiled_trace`` /
  ``memory_regions`` / ``serial_init_pages``), delegating each global thread
  to its entry's sub-workload, so both simulation engines, the sweep runner
  and ``repro bench`` accept scenarios like any other workload.
* the **registry** (:data:`SCENARIO_SPECS`) of built-in named scenarios,
  mirroring :data:`~repro.workloads.registry.WORKLOAD_SPECS` for single
  benchmarks.

Two composition knobs:

* **address isolation** -- each entry's addresses are rebased by a per-entry
  offset (``entry index * ADDRESS_STRIDE`` by default) so independent
  programs never share pages; pass an explicit ``base_offset`` (e.g. ``0``
  for every entry) to make entries share data instead.
* **rate skew** -- ``gap_scale`` multiplies an entry's instruction gaps,
  modelling cores that issue memory accesses at a fraction of the others'
  rate (the composed stream stays deterministic and engine-identical).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..memory.address import DEFAULT_LAYOUT, AddressLayout
from .clone import load_clone
from .compiled import CompiledTrace, compile_trace
from .registry import make_workload
from .trace import MemoryAccess
from .trace_io import TraceDirWorkload

__all__ = [
    "ADDRESS_STRIDE",
    "ScenarioEntry",
    "Scenario",
    "ScenarioWorkload",
    "SCENARIO_SPECS",
    "scenario_names",
    "get_scenario",
    "load_scenario",
    "build_scenario_workload",
    "build_workload",
]

#: Default per-entry address-space stride (bytes).  Every synthetic region
#: base (the highest is the cold region at ``0x0400_0000_0000``) plus any
#: realistic region size fits well below it, so entry ``i`` shifted by
#: ``i * ADDRESS_STRIDE`` can never collide with entry ``j``'s pages.
ADDRESS_STRIDE = 1 << 44


@dataclass(frozen=True)
class ScenarioEntry:
    """One workload-to-cores assignment inside a :class:`Scenario`.

    Exactly one of ``workload`` (a registry benchmark name), ``trace_dir``
    (a recorded trace directory) or ``clone`` (a fitted clone-spec JSON)
    must be set, and exactly one of ``cores`` (explicit global core ids) or
    ``sockets`` (whole sockets, resolved against the topology at build
    time).

    Parameters
    ----------
    workload:
        Benchmark name from :data:`~repro.workloads.registry.WORKLOAD_SPECS`.
    trace_dir:
        Path of a trace directory written by
        :func:`~repro.workloads.trace_io.record_workload`.
    clone:
        Path of a clone-spec JSON written by ``repro analyze --clone-out``
        (:mod:`~repro.workloads.clone`); built like a synthetic entry, so
        ``scale``, ``seed`` and ``accesses_per_thread`` all apply.
    cores:
        Global core ids this entry drives (``socket * cores_per_socket + i``).
    sockets:
        Socket ids whose every core this entry drives.
    accesses_per_thread:
        Trace length override for synthetic entries (default: the scenario
        build's global value).
    seed:
        RNG seed override for synthetic entries.
    gap_scale:
        Multiply the entry's instruction gaps by this integer factor
        (``>= 1``); larger values model slower-issuing (rate-skewed) cores.
    base_offset:
        Address-space rebase for this entry in bytes (must be a multiple of
        the page size).  Default: ``entry index * ADDRESS_STRIDE``.
    """

    workload: Optional[str] = None
    trace_dir: Optional[str] = None
    clone: Optional[str] = None
    cores: Optional[Tuple[int, ...]] = None
    sockets: Optional[Tuple[int, ...]] = None
    accesses_per_thread: Optional[int] = None
    seed: Optional[int] = None
    gap_scale: int = 1
    base_offset: Optional[int] = None

    def __post_init__(self) -> None:
        sources = [
            s for s in (self.workload, self.trace_dir, self.clone) if s is not None
        ]
        if len(sources) != 1:
            raise ValueError(
                "scenario entry needs exactly one of 'workload', 'trace_dir' "
                f"or 'clone' (got workload={self.workload!r}, "
                f"trace_dir={self.trace_dir!r}, clone={self.clone!r})"
            )
        if (self.cores is None) == (self.sockets is None):
            raise ValueError(
                "scenario entry needs exactly one of 'cores' or 'sockets' "
                f"(got cores={self.cores!r}, sockets={self.sockets!r})"
            )
        if self.cores is not None:
            object.__setattr__(self, "cores", tuple(int(c) for c in self.cores))
        if self.sockets is not None:
            object.__setattr__(self, "sockets", tuple(int(s) for s in self.sockets))
        if self.gap_scale < 1:
            raise ValueError(f"gap_scale must be >= 1, got {self.gap_scale}")

    def describe(self) -> str:
        """One-line human description (used by the CLI banner)."""
        source = self.workload or self.trace_dir or self.clone
        where = (
            f"cores {list(self.cores)}" if self.cores is not None
            else f"sockets {list(self.sockets)}"
        )
        extra = f", gap_scale={self.gap_scale}" if self.gap_scale != 1 else ""
        return f"{source} on {where}{extra}"


@dataclass(frozen=True)
class Scenario:
    """A named list of :class:`ScenarioEntry` assignments."""

    name: str
    entries: Tuple[ScenarioEntry, ...]
    description: str = ""

    def __post_init__(self) -> None:
        if not self.entries:
            raise ValueError(f"scenario {self.name!r} has no entries")
        object.__setattr__(self, "entries", tuple(self.entries))

    def resolve_cores(
        self, num_sockets: int, cores_per_socket: int
    ) -> List[Tuple[int, ...]]:
        """Resolve every entry to explicit core ids, validating the topology.

        Raises :class:`ValueError` when an entry names a socket or core
        outside the machine, or when two entries claim the same core.
        """
        total_cores = num_sockets * cores_per_socket
        resolved: List[Tuple[int, ...]] = []
        claimed: Dict[int, int] = {}
        for index, entry in enumerate(self.entries):
            if entry.cores is not None:
                cores = entry.cores
                for core in cores:
                    if not 0 <= core < total_cores:
                        raise ValueError(
                            f"scenario {self.name!r} entry {index}: core {core} out of "
                            f"range for {num_sockets}x{cores_per_socket} machine "
                            f"(cores 0..{total_cores - 1})"
                        )
            else:
                cores_list: List[int] = []
                for socket in entry.sockets:
                    if not 0 <= socket < num_sockets:
                        raise ValueError(
                            f"scenario {self.name!r} entry {index}: socket {socket} out "
                            f"of range (machine has {num_sockets} sockets)"
                        )
                    base = socket * cores_per_socket
                    cores_list.extend(range(base, base + cores_per_socket))
                cores = tuple(cores_list)
            for core in cores:
                if core in claimed:
                    raise ValueError(
                        f"scenario {self.name!r}: core {core} claimed by both "
                        f"entry {claimed[core]} and entry {index}"
                    )
                claimed[core] = index
            resolved.append(cores)
        return resolved

    def build(
        self,
        *,
        num_sockets: int,
        cores_per_socket: int,
        scale: int = 1,
        accesses_per_thread: int = 20_000,
        seed: Optional[int] = None,
        layout: Optional[AddressLayout] = None,
    ) -> "ScenarioWorkload":
        """Instantiate the scenario for a concrete machine topology.

        Parameters
        ----------
        num_sockets, cores_per_socket:
            The simulated machine's topology (entries are validated against
            it; see :meth:`resolve_cores`).
        scale:
            Working-set scale factor passed to every synthetic entry (use the
            same factor as :meth:`repro.system.config.SystemConfig.scaled`).
        accesses_per_thread:
            Default trace length for synthetic entries (per-entry
            ``accesses_per_thread`` overrides it).
        seed:
            Default RNG seed override for synthetic entries.
        layout:
            Address layout for compiled traces (default
            :data:`~repro.memory.address.DEFAULT_LAYOUT`).
        """
        layout = layout or DEFAULT_LAYOUT
        core_groups = self.resolve_cores(num_sockets, cores_per_socket)
        assignments: List[_Assignment] = []
        for index, (entry, cores) in enumerate(zip(self.entries, core_groups)):
            if entry.trace_dir is not None:
                sub = TraceDirWorkload(entry.trace_dir)
                if len(cores) > sub.num_threads:
                    raise ValueError(
                        f"scenario {self.name!r} entry {index}: {len(cores)} cores "
                        f"assigned but trace directory {entry.trace_dir!r} records "
                        f"only {sub.num_threads} threads"
                    )
            elif entry.clone is not None:
                sub = load_clone(
                    entry.clone,
                    scale=scale,
                    num_threads=len(cores),
                    seed=entry.seed if entry.seed is not None else seed,
                    accesses_per_thread=entry.accesses_per_thread or accesses_per_thread,
                )
            else:
                sub = make_workload(
                    entry.workload,
                    scale=scale,
                    accesses_per_thread=entry.accesses_per_thread or accesses_per_thread,
                    num_threads=len(cores),
                    seed=entry.seed if entry.seed is not None else seed,
                )
            offset = (
                entry.base_offset if entry.base_offset is not None
                else index * ADDRESS_STRIDE
            )
            if offset % layout.page_size:
                raise ValueError(
                    f"scenario {self.name!r} entry {index}: base_offset {offset:#x} "
                    f"must be a multiple of the page size ({layout.page_size})"
                )
            assignments.append(
                _Assignment(
                    entry=entry, cores=cores, workload=sub,
                    offset=offset, gap_scale=entry.gap_scale,
                )
            )
        return ScenarioWorkload(self, assignments, layout=layout)


@dataclass
class _Assignment:
    """A built entry: resolved cores, instantiated sub-workload, rebase."""

    entry: ScenarioEntry
    cores: Tuple[int, ...]
    workload: object
    offset: int
    gap_scale: int


class ScenarioWorkload:
    """The composed workload a :class:`Scenario` builds for one machine.

    Each global thread id (== core id) maps to one entry's sub-workload and a
    local thread index within it; cores no entry claims get empty streams.
    Implements the same protocol as
    :class:`~repro.workloads.synthetic.SyntheticWorkload`, and its
    ``stream``/``compiled_trace`` pair is bit-identical by construction (the
    rebase and gap scaling are applied identically on both paths).
    """

    def __init__(
        self, scenario: Scenario, assignments: Sequence[_Assignment], *,
        layout: Optional[AddressLayout] = None,
    ) -> None:
        self.scenario = scenario
        self.assignments = list(assignments)
        self.layout = layout or DEFAULT_LAYOUT
        self._by_core: Dict[int, Tuple[_Assignment, int]] = {}
        for assignment in self.assignments:
            for local, core in enumerate(assignment.cores):
                self._by_core[core] = (assignment, local)
        self.num_threads = max(self._by_core) + 1 if self._by_core else 0

    # -- identity -----------------------------------------------------------

    @property
    def name(self) -> str:
        return self.scenario.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ScenarioWorkload({self.scenario.name!r}, "
            f"entries={len(self.assignments)}, threads={self.num_threads})"
        )

    def describe(self) -> str:
        """Multi-line summary of the entry-to-core assignments."""
        lines = [f"scenario {self.scenario.name!r}:"]
        lines.extend(f"  - {a.entry.describe()}" for a in self.assignments)
        return "\n".join(lines)

    # -- workload protocol --------------------------------------------------

    def stream(self, thread_id: int) -> Iterator[MemoryAccess]:
        """Yield the composed access stream of global thread ``thread_id``."""
        mapping = self._by_core.get(thread_id)
        if mapping is None:
            return iter(())
        assignment, local = mapping
        offset, gap_scale = assignment.offset, assignment.gap_scale
        if offset == 0 and gap_scale == 1:
            return assignment.workload.stream(local)
        return (
            MemoryAccess(
                addr=access.addr + offset,
                is_write=access.is_write,
                gap=access.gap * gap_scale,
            )
            for access in assignment.workload.stream(local)
        )

    def compiled_trace(self, thread_id: int) -> CompiledTrace:
        """Compiled-engine view of :meth:`stream` (bit-identical sequence)."""
        mapping = self._by_core.get(thread_id)
        if mapping is None:
            return CompiledTrace.empty()
        assignment, local = mapping
        base = compile_trace(assignment.workload, local, layout=self.layout)
        offset, gap_scale = assignment.offset, assignment.gap_scale
        if (offset == 0 and gap_scale == 1) or base.length == 0:
            return base
        addrs = (np.asarray(base.addrs, dtype=np.int64) + offset).tolist()
        block_shift = offset // self.layout.block_size
        page_shift = offset // self.layout.page_size
        blocks = (np.asarray(base.blocks, dtype=np.int64) + block_shift).tolist()
        pages = (np.asarray(base.pages, dtype=np.int64) + page_shift).tolist()
        gaps = (
            (np.asarray(base.gaps, dtype=np.int64) * gap_scale).tolist()
            if gap_scale != 1 else base.gaps
        )
        return CompiledTrace(addrs, base.writes, gaps, blocks, pages)

    def memory_regions(self, thread_id: Optional[int] = None) -> List[dict]:
        """Union of the entries' region hints, rebased to the composed space.

        ``owner_thread`` is remapped from each entry's local thread index to
        the global core id, so first-touch pins private pages to the socket
        actually running that thread.
        """
        regions: List[dict] = []
        if thread_id is not None:
            mapping = self._by_core.get(thread_id)
            if mapping is None:
                return []
            assignment, local = mapping
            return self._entry_regions(assignment, local)
        for assignment in self.assignments:
            regions.extend(self._entry_regions(assignment, None))
        return regions

    def _entry_regions(self, assignment: _Assignment, local: Optional[int]) -> List[dict]:
        regions_fn = getattr(assignment.workload, "memory_regions", None)
        if regions_fn is None:
            return []
        out: List[dict] = []
        for region in regions_fn(local) if local is not None else regions_fn():
            rebased = dict(region)
            rebased["base"] = region["base"] + assignment.offset
            owner = region.get("owner_thread")
            if owner is not None:
                if owner >= len(assignment.cores):
                    # A trace directory may record more threads than this
                    # entry drives; the extra threads' private regions belong
                    # to streams that never run, so they place no pages.
                    continue
                rebased["owner_thread"] = assignment.cores[owner]
            out.append(rebased)
        return out

    def serial_init_pages(self) -> List[int]:
        """Concatenated FT1 init pages of every entry, rebased per entry."""
        pages: List[int] = []
        page_size = self.layout.page_size
        for assignment in self.assignments:
            pages_fn = getattr(assignment.workload, "serial_init_pages", None)
            if pages_fn is None:
                continue
            shift = assignment.offset // page_size
            pages.extend(page + shift for page in pages_fn())
        return pages

    def total_footprint_bytes(self) -> int:
        """Sum of the entries' footprints (entries with no estimate count 0)."""
        total = 0
        for assignment in self.assignments:
            footprint = getattr(assignment.workload, "total_footprint_bytes", None)
            if footprint is not None:
                total += footprint()
        return total


# ----------------------------------------------------------------------
# JSON loading and the built-in registry
# ----------------------------------------------------------------------

_ENTRY_KEYS = {
    "workload", "trace_dir", "clone", "cores", "sockets",
    "accesses_per_thread", "seed", "gap_scale", "base_offset",
}


def _entry_from_dict(data: Dict, *, where: str) -> ScenarioEntry:
    unknown = set(data) - _ENTRY_KEYS
    if unknown:
        raise ValueError(
            f"{where}: unknown scenario entry keys {sorted(unknown)} "
            f"(expected a subset of {sorted(_ENTRY_KEYS)})"
        )
    kwargs = dict(data)
    for key in ("cores", "sockets"):
        if kwargs.get(key) is not None:
            kwargs[key] = tuple(kwargs[key])
    return ScenarioEntry(**kwargs)


def scenario_from_dict(data: Dict, *, where: str = "<dict>") -> Scenario:
    """Build a :class:`Scenario` from a JSON-shaped dict (see docs/workloads.md)."""
    if "entries" not in data or not isinstance(data["entries"], list):
        raise ValueError(f"{where}: scenario needs an 'entries' list")
    entries = tuple(
        _entry_from_dict(entry, where=f"{where} entry {i}")
        for i, entry in enumerate(data["entries"])
    )
    return Scenario(
        name=data.get("name", "scenario"),
        entries=entries,
        description=data.get("description", ""),
    )


def load_scenario(path: Union[str, Path]) -> Scenario:
    """Load a scenario description from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except ValueError as exc:
        raise ValueError(f"{path}: invalid scenario JSON ({exc})") from None
    return scenario_from_dict(data, where=str(path))


#: Built-in named scenarios.  They address sockets (not cores) so they adapt
#: to any ``cores_per_socket``; ``het-quad`` and ``rate-skew-quad`` need the
#: 4-socket machine, ``het-dual`` the 2-socket one.
SCENARIO_SPECS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="het-quad",
            description=(
                "Consolidated 4-socket server: a different evaluated benchmark "
                "per socket (facesim / streamcluster / canneal / cassandra)."
            ),
            entries=(
                ScenarioEntry(workload="facesim", sockets=(0,)),
                ScenarioEntry(workload="streamcluster", sockets=(1,)),
                ScenarioEntry(workload="canneal", sockets=(2,)),
                ScenarioEntry(workload="cassandra", sockets=(3,)),
            ),
        ),
        Scenario(
            name="het-dual",
            description="2-socket consolidation: facesim beside cassandra.",
            entries=(
                ScenarioEntry(workload="facesim", sockets=(0,)),
                ScenarioEntry(workload="cassandra", sockets=(1,)),
            ),
        ),
        Scenario(
            name="rate-skew-quad",
            description=(
                "facesim on every socket, but sockets 1-3 issue memory accesses "
                "4x slower (gap_scale=4): a straggler/foreground-background mix."
            ),
            entries=(
                ScenarioEntry(workload="facesim", sockets=(0,)),
                ScenarioEntry(workload="facesim", sockets=(1, 2, 3), gap_scale=4, seed=97),
            ),
        ),
        Scenario(
            name="multiprogram-mcf-quad",
            description=(
                "Throughput mode: independent mcf-like instances on every core "
                "(one entry per socket, distinct seeds, no cross-socket sharing)."
            ),
            entries=(
                ScenarioEntry(workload="mcf", sockets=(0,), seed=11),
                ScenarioEntry(workload="mcf", sockets=(1,), seed=12),
                ScenarioEntry(workload="mcf", sockets=(2,), seed=13),
                ScenarioEntry(workload="mcf", sockets=(3,), seed=14),
            ),
        ),
    )
}


def scenario_names() -> List[str]:
    """Names of the built-in scenarios, in registry order."""
    return list(SCENARIO_SPECS)


def get_scenario(name_or_path: Union[str, Path]) -> Scenario:
    """Resolve a scenario by registry name or JSON file path.

    A name found in :data:`SCENARIO_SPECS` wins; otherwise the argument is
    treated as a path to a scenario JSON file.
    """
    name = str(name_or_path)
    if name in SCENARIO_SPECS:
        return SCENARIO_SPECS[name]
    path = Path(name_or_path)
    if path.is_file():
        return load_scenario(path)
    raise KeyError(
        f"unknown scenario {name!r}: not a built-in "
        f"({sorted(SCENARIO_SPECS)}) and not an existing JSON file"
    )


def build_scenario_workload(
    scenario: Union[str, Path, Scenario],
    *,
    num_sockets: int,
    cores_per_socket: int,
    scale: int = 1,
    accesses_per_thread: int = 20_000,
    seed: Optional[int] = None,
    layout: Optional[AddressLayout] = None,
) -> ScenarioWorkload:
    """Resolve (if needed) and build a scenario for a concrete topology.

    Convenience wrapper over :func:`get_scenario` + :meth:`Scenario.build`;
    this is what ``repro --scenario`` and
    :class:`~repro.experiments.runner.SweepPoint` call.
    """
    if not isinstance(scenario, Scenario):
        scenario = get_scenario(scenario)
    return scenario.build(
        num_sockets=num_sockets,
        cores_per_socket=cores_per_socket,
        scale=scale,
        accesses_per_thread=accesses_per_thread,
        seed=seed,
        layout=layout,
    )


def build_workload(
    *,
    num_sockets: int,
    cores_per_socket: int,
    workload: Optional[str] = None,
    trace_dir: Optional[Union[str, Path]] = None,
    scenario: Union[str, Path, Scenario, None] = None,
    clone: Optional[Union[str, Path]] = None,
    scale: int = 1,
    accesses_per_thread: int = 20_000,
    seed: Optional[int] = None,
    layout: Optional[AddressLayout] = None,
):
    """Build a workload from whichever frontend is selected.

    The single dispatch point behind
    ``repro --workload/--trace-dir/--scenario/--clone``,
    :class:`~repro.experiments.runner.SweepPoint` and ``repro bench``:
    ``trace_dir`` replays a recorded trace directory, ``scenario`` builds a
    composition (built-in name, JSON path or :class:`Scenario`), ``clone``
    instantiates a fitted clone-spec JSON (``repro analyze --clone-out``),
    and otherwise ``workload`` names a synthetic benchmark instantiated
    with one thread per core.  ``trace_dir``, ``scenario`` and ``clone``
    are mutually exclusive and each overrides ``workload``.
    """
    selected = [
        name
        for name, value in (
            ("trace_dir", trace_dir), ("scenario", scenario), ("clone", clone)
        )
        if value is not None
    ]
    if len(selected) > 1:
        raise ValueError(f"{' and '.join(selected)} are mutually exclusive")
    if trace_dir is not None:
        return TraceDirWorkload(trace_dir)
    if clone is not None:
        return load_clone(
            clone,
            scale=scale,
            num_threads=num_sockets * cores_per_socket,
            seed=seed,
            accesses_per_thread=accesses_per_thread,
        )
    if scenario is not None:
        return build_scenario_workload(
            scenario,
            num_sockets=num_sockets,
            cores_per_socket=cores_per_socket,
            scale=scale,
            accesses_per_thread=accesses_per_thread,
            seed=seed,
            layout=layout,
        )
    if workload is None:
        raise ValueError("one of workload, trace_dir or scenario is required")
    return make_workload(
        workload,
        scale=scale,
        accesses_per_thread=accesses_per_thread,
        num_threads=num_sockets * cores_per_socket,
        seed=seed,
    )
