"""Workload registry: every benchmark the paper evaluates, by name.

The registry is the single entry point used by the examples, the experiment
harness and the benchmarks.  :data:`WORKLOAD_SPECS` merges the three suite
modules -- :data:`~repro.workloads.parsec.PARSEC_SPECS` (five multi-threaded
PARSEC 3.0 benchmarks), :data:`~repro.workloads.cloudsuite.CLOUDSUITE_SPECS`
(four server workloads) and :data:`~repro.workloads.spec_suite.SPEC_SPECS`
(the single-threaded mcf) -- and :func:`make_workload` instantiates any of
them as a :class:`~repro.workloads.synthetic.SyntheticWorkload`.  Named
multi-program compositions live in the sibling scenario registry
(:data:`repro.workloads.scenario.SCENARIO_SPECS`); see ``docs/workloads.md``
for the full tour.

>>> from repro.workloads import make_workload, workload_names
>>> workload_names()[:3]
['facesim', 'streamcluster', 'fluidanimate']
>>> wl = make_workload("streamcluster", scale=256, accesses_per_thread=5000)
>>> wl.num_threads
32
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cloudsuite import CLOUDSUITE_SPECS
from .parsec import PARSEC_SPECS
from .spec_suite import SPEC_SPECS
from .synthetic import SyntheticWorkload, WorkloadSpec

__all__ = [
    "WORKLOAD_SPECS",
    "MICRO_SPECS",
    "EVALUATED_WORKLOADS",
    "workload_names",
    "make_workload",
    "get_spec",
]

#: Microbenchmarks used by the performance harness (``repro bench``), not
#: part of the paper's evaluation set.  ``hotset`` is deliberately
#: cache-resident: every region fits in an unscaled L1 and the shared hot
#: region is read-only, so after the cold fills virtually every access is an
#: L1 hit.  That is the regime the vectorized engine accelerates (the paper's
#: own workloads are DRAM-cache studies and therefore miss-dominated by
#: design -- see docs/performance.md), which makes ``hotset`` the workload
#: behind the ``vector_speedup_*`` floors in ``benchmarks/baseline.json``.
MICRO_SPECS: Dict[str, WorkloadSpec] = {
    "hotset": WorkloadSpec(
        name="hotset",
        private_bytes_per_thread=4096,
        hot_shared_bytes=4096,
        warm_shared_bytes=0,
        cold_shared_bytes=0,
        p_private=0.50,
        p_hot=0.50,
        p_warm=0.0,
        p_cold=0.0,
        write_fraction_private=0.40,
        write_fraction_hot=0.0,
        write_fraction_warm=0.0,
        write_fraction_cold=0.0,
        mean_gap=2,
        spatial_accesses_per_block=4,
        best_policy="ft2",
        description="L1-resident microbenchmark for the vectorized hot path "
        "(one private page per thread plus one read-only shared page)",
    ),
}

#: All specs known to the registry, including the single-threaded mcf.
WORKLOAD_SPECS: Dict[str, WorkloadSpec] = {}
WORKLOAD_SPECS.update(PARSEC_SPECS)
WORKLOAD_SPECS.update(CLOUDSUITE_SPECS)
WORKLOAD_SPECS.update(SPEC_SPECS)
WORKLOAD_SPECS.update(MICRO_SPECS)

#: The nine multi-threaded workloads used in the paper's main evaluation
#: (Figs. 2, 3, 6-11 and Table I), in plotting order.
EVALUATED_WORKLOADS: List[str] = [
    "facesim",
    "streamcluster",
    "fluidanimate",
    "canneal",
    "freqmine",
    "nutch",
    "cassandra",
    "classification",
    "tunkrank",
]


def workload_names(*, include_spec: bool = False) -> List[str]:
    """Names of the evaluated workloads (optionally including mcf)."""
    names = list(EVALUATED_WORKLOADS)
    if include_spec:
        names.extend(SPEC_SPECS)
    return names


def get_spec(name: str) -> WorkloadSpec:
    """Look up a workload spec by name."""
    try:
        return WORKLOAD_SPECS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown workload {name!r}; known workloads: {sorted(WORKLOAD_SPECS)}"
        ) from exc


def make_workload(
    name: str,
    *,
    scale: int = 1,
    accesses_per_thread: int = 20_000,
    num_threads: Optional[int] = None,
    seed: Optional[int] = None,
) -> SyntheticWorkload:
    """Instantiate a workload generator by benchmark name.

    Parameters
    ----------
    name:
        Benchmark name (see :data:`WORKLOAD_SPECS`).
    scale:
        Divide all region sizes by this factor; pass the same factor given to
        :meth:`repro.system.config.SystemConfig.scaled`.
    accesses_per_thread:
        Trace length per thread.
    num_threads:
        Override the spec's thread count (e.g. to match a smaller test
        machine).
    seed:
        Override the spec's RNG seed (for independent trials).
    """
    spec = get_spec(name)
    if num_threads is not None:
        spec = spec.with_threads(num_threads)
    if seed is not None:
        import dataclasses

        spec = dataclasses.replace(spec, seed=seed)
    spec = spec.scaled(scale)
    return SyntheticWorkload(spec, accesses_per_thread=accesses_per_thread)
