"""Workload substrate: synthetic generators, trace files and scenario mixes.

Three frontends produce the per-thread access streams the simulator runs:

* **synthetic** (:mod:`.synthetic` + the :mod:`.registry`) -- parameterised
  generators modelling the paper's PARSEC/CloudSuite/SPEC benchmarks;
* **trace files** (:mod:`.trace_io`) -- on-disk CSV/binary traces, recorded
  from any workload for exact replay or authored externally;
* **scenarios** (:mod:`.scenario`) -- compositions of the other two into
  multi-program, multi-socket mixes.

All three implement the same workload protocol (``num_threads`` /
``stream`` / ``compiled_trace`` / ``memory_regions`` /
``serial_init_pages``) and run on both simulation engines.

The ingestion pipeline (docs/ingestion.md) feeds the trace frontend from
the outside world: :mod:`.importers` converts external memory traces
(Valgrind lackey, PIN-style CSV, SynchroTrace-style events) into trace
directories, :mod:`.analyzer` characterises any trace directory into a
JSON profile, and :mod:`.clone` fits a synthetic :class:`WorkloadSpec`
to a profile so a recorded workload becomes a scalable generator.
"""

from .analyzer import analyze_trace_dir, analyze_workload, profile_to_markdown
from .clone import fit_clone, load_clone, save_clone
from .cloudsuite import CLOUDSUITE_SPECS, cloudsuite_names
from .compiled import CompiledTrace, compile_trace, compile_workload
from .parsec import PARSEC_SPECS, parsec_names
from .registry import (
    EVALUATED_WORKLOADS,
    WORKLOAD_SPECS,
    get_spec,
    make_workload,
    workload_names,
)
from .scenario import (
    SCENARIO_SPECS,
    Scenario,
    ScenarioEntry,
    ScenarioWorkload,
    build_scenario_workload,
    build_workload,
    get_scenario,
    load_scenario,
    scenario_names,
)
from .importers import IMPORTERS, ImportSummary, import_trace, importer_names
from .spec_suite import SPEC_SPECS, spec_names
from .synthetic import REGION_NAMES, SyntheticWorkload, WorkloadSpec
from .trace import MemoryAccess, materialise
from .trace_io import (
    TRACE_FORMATS,
    TraceDirWorkload,
    TraceFormatError,
    compile_trace_file,
    read_trace,
    record_workload,
    write_trace,
)

__all__ = [
    "MemoryAccess",
    "materialise",
    "CompiledTrace",
    "compile_trace",
    "compile_workload",
    "TRACE_FORMATS",
    "TraceFormatError",
    "TraceDirWorkload",
    "read_trace",
    "write_trace",
    "compile_trace_file",
    "record_workload",
    "IMPORTERS",
    "ImportSummary",
    "import_trace",
    "importer_names",
    "analyze_trace_dir",
    "analyze_workload",
    "profile_to_markdown",
    "fit_clone",
    "save_clone",
    "load_clone",
    "Scenario",
    "ScenarioEntry",
    "ScenarioWorkload",
    "SCENARIO_SPECS",
    "scenario_names",
    "get_scenario",
    "load_scenario",
    "build_scenario_workload",
    "build_workload",
    "WorkloadSpec",
    "SyntheticWorkload",
    "REGION_NAMES",
    "PARSEC_SPECS",
    "CLOUDSUITE_SPECS",
    "SPEC_SPECS",
    "WORKLOAD_SPECS",
    "EVALUATED_WORKLOADS",
    "workload_names",
    "make_workload",
    "get_spec",
    "parsec_names",
    "cloudsuite_names",
    "spec_names",
]


def __getattr__(name):
    # Deprecated alias of the repro.api facade, kept one release.
    if name == "analyze":
        import warnings

        warnings.warn(
            "importing 'analyze' from repro.workloads is deprecated; "
            "use repro.api.analyze (docs/architecture.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..api import analyze

        return analyze
    raise AttributeError(f"module 'repro.workloads' has no attribute {name!r}")
