"""Workload substrate: synthetic trace generators for the paper's benchmarks."""

from .cloudsuite import CLOUDSUITE_SPECS, cloudsuite_names
from .compiled import CompiledTrace, compile_trace, compile_workload
from .parsec import PARSEC_SPECS, parsec_names
from .registry import (
    EVALUATED_WORKLOADS,
    WORKLOAD_SPECS,
    get_spec,
    make_workload,
    workload_names,
)
from .spec_suite import SPEC_SPECS, spec_names
from .synthetic import REGION_NAMES, SyntheticWorkload, WorkloadSpec
from .trace import MemoryAccess, materialise

__all__ = [
    "MemoryAccess",
    "materialise",
    "CompiledTrace",
    "compile_trace",
    "compile_workload",
    "WorkloadSpec",
    "SyntheticWorkload",
    "REGION_NAMES",
    "PARSEC_SPECS",
    "CLOUDSUITE_SPECS",
    "SPEC_SPECS",
    "WORKLOAD_SPECS",
    "EVALUATED_WORKLOADS",
    "workload_names",
    "make_workload",
    "get_spec",
    "parsec_names",
    "cloudsuite_names",
    "spec_names",
]
