"""Synthetic workload cloning: fit a ``WorkloadSpec`` to an analyzer profile.

The closing move of the ingestion pipeline (``docs/ingestion.md``): given
the JSON profile ``repro analyze`` extracted from an imported trace,
:func:`fit_clone` parameterises a :class:`~.synthetic.WorkloadSpec` whose
generated stream matches the profile's first-order statistics --

* **access mix** -- the private/shared access split maps onto the spec's
  ``p_private`` / ``p_warm`` mass (imported traces carry no hot/cold
  temperature information, so the shared mass is modelled as one warm
  region);
* **read/write mix** -- per-class write fractions are copied verbatim;
* **footprint** -- private-per-thread and shared region sizes are taken
  from the observed unique bytes, rounded up to whole pages;
* **stream shape** -- ``mean_gap`` and ``spatial_accesses_per_block`` come
  from the profile's gap mean and block-run mean.

What a clone is *for*: the original trace is a single fixed recording, but
its clone is a generator -- scalable to other thread counts, trace lengths
and region scales, usable anywhere a synthetic workload is (scenarios,
campaign grids via the ``clones`` axis, engine differential tests).
Fidelity is statistical, not per-access: the clone-fidelity test
(``tests/workloads/test_clone.py``) holds the write fraction to within
+-0.05, the shared-access fraction to within +-0.1, and the footprint to
within a factor of 2, and those tolerances are this module's contract.
Clones are deterministic: same profile + same seed -> identical streams.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .synthetic import SyntheticWorkload, WorkloadSpec
from .trace_io import TraceFormatError

__all__ = ["CLONE_SCHEMA", "fit_clone", "save_clone", "load_clone"]

CLONE_SCHEMA = "workload-clone/v1"

_PAGE = 4096


def _pages(num_bytes: float) -> int:
    """Round a byte count up to whole pages (minimum one page)."""
    return max(_PAGE, int(-(-num_bytes // _PAGE)) * _PAGE)


def fit_clone(
    profile: Dict,
    *,
    name: Optional[str] = None,
    seed: int = 1234,
) -> Tuple[WorkloadSpec, int]:
    """Fit a synthetic spec to an analyzer profile.

    Returns ``(spec, accesses_per_thread)`` -- the trace length is not part
    of :class:`WorkloadSpec`, so it rides alongside.  Raises
    :class:`TraceFormatError` if ``profile`` is not a ``workload-profile/v1``
    document.
    """
    schema = profile.get("schema")
    if schema != "workload-profile/v1":
        raise TraceFormatError(
            f"cannot fit a clone: expected a workload-profile/v1 document, "
            f"got schema {schema!r}"
        )
    num_threads = int(profile["num_threads"])
    total = int(profile["total_accesses"])
    sharing = profile["sharing"]
    block_size = int(profile["block_size"])

    p_private = sharing["private_accesses"] / total
    p_warm = 1.0 - p_private

    # Region sizes from observed unique bytes.  The generator draws blocks
    # uniformly, so an N-block region yields < N unique blocks for short
    # traces -- the factor-of-2 footprint tolerance absorbs that.
    private_bytes = _pages(
        sharing["private_blocks"] * block_size / max(1, num_threads)
    )
    warm_bytes = _pages(sharing["shared_blocks"] * block_size) if p_warm > 0 else 0

    spec = WorkloadSpec(
        name=name or f"{profile['name']}-clone",
        num_threads=num_threads,
        private_bytes_per_thread=private_bytes if p_private > 0 else 0,
        hot_shared_bytes=0,
        warm_shared_bytes=warm_bytes,
        cold_shared_bytes=0,
        p_private=p_private,
        p_hot=0.0,
        p_warm=p_warm,
        p_cold=0.0,
        write_fraction_private=float(sharing["write_fraction_private"]),
        write_fraction_hot=0.0,
        write_fraction_warm=float(sharing["write_fraction_shared"]),
        write_fraction_cold=0.0,
        mean_gap=max(0, round(float(profile["mean_gap"]))),
        spatial_accesses_per_block=max(
            1, round(float(profile["block_locality"]["mean_run_length"]))
        ),
        seed=seed,
        description=f"synthetic clone fitted to {profile['source']}",
    )
    accesses_per_thread = max(1, round(total / num_threads))
    return spec, accesses_per_thread


def save_clone(
    path: Union[str, Path],
    spec: WorkloadSpec,
    *,
    accesses_per_thread: int,
    profile: Optional[Dict] = None,
) -> None:
    """Write a clone-spec JSON document (``workload-clone/v1``)."""
    payload = {
        "schema": CLONE_SCHEMA,
        "accesses_per_thread": accesses_per_thread,
        "spec": dataclasses.asdict(spec),
    }
    if profile is not None:
        payload["fitted_from"] = {
            "name": profile.get("name"),
            "source": profile.get("source"),
            "total_accesses": profile.get("total_accesses"),
        }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def load_clone(
    path: Union[str, Path],
    *,
    scale: int = 1,
    num_threads: Optional[int] = None,
    seed: Optional[int] = None,
    accesses_per_thread: Optional[int] = None,
) -> SyntheticWorkload:
    """Load a clone-spec JSON file into a runnable :class:`SyntheticWorkload`.

    The overrides make one clone file a whole sweepable family: campaigns
    re-run it at other scales, thread counts, seeds and trace lengths.
    Raises :class:`TraceFormatError` for a missing/invalid document.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except FileNotFoundError:
        raise TraceFormatError(f"{path}: no such clone spec") from None
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: invalid clone spec JSON ({exc})") from None
    if not isinstance(payload, dict) or payload.get("schema") != CLONE_SCHEMA:
        raise TraceFormatError(
            f"{path}: expected a {CLONE_SCHEMA} document, "
            f"got schema {payload.get('schema') if isinstance(payload, dict) else None!r}"
        )
    try:
        spec = WorkloadSpec(**payload["spec"])
        accesses = int(payload["accesses_per_thread"])
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"{path}: malformed clone spec ({exc})") from None
    if seed is not None:
        spec = dataclasses.replace(spec, seed=seed)
    if num_threads is not None:
        spec = spec.with_threads(num_threads)
    if scale != 1:
        spec = spec.scaled(scale)
    if accesses_per_thread is not None:
        accesses = accesses_per_thread
    return SyntheticWorkload(spec, accesses_per_thread=accesses)
