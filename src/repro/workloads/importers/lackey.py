"""Importer for Valgrind lackey memory traces (``--tool=lackey --trace-mem=yes``).

Lackey prints one line per instruction fetch or data access::

    I  0023C790,2
     L 04222cac,1
     S 04222cb0,4
     M 0421339c,4

* ``I`` -- instruction fetch (column 0).  Instruction fetches are not
  memory-trace records here; each one adds one instruction to the *gap* of
  the next data access, modelling the 1-IPC core's non-memory work.
* ``L`` / ``S`` -- data load / store (indented by one space in real lackey
  output; leading whitespace is not significant to this parser).
* ``M`` -- modify: an atomic read-modify-write, imported as a load followed
  by a store to the same address with zero gap in between.

Addresses are hexadecimal (a ``0x`` prefix is tolerated), the field after
the comma is the access size in bytes.  Valgrind banner lines (``==pid==``)
and blank lines are skipped.  Lackey traces carry no thread information, so
the imported trace directory always has exactly one thread; accesses wider
than one block are recorded at their start address (see
``docs/ingestion.md`` for the full format notes and limits).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from ...memory.address import AddressLayout
from ..trace_io import TraceFormatError
from .base import ImportSummary, numbered_lines, run_import

__all__ = ["import_lackey", "parse_lackey"]

_OPS = ("I", "L", "S", "M")


def _parse_operand(where: str, text: str) -> Tuple[int, int]:
    """Parse lackey's ``addr,size`` operand (hex address, decimal size)."""
    parts = text.split(",")
    if len(parts) != 2:
        raise TraceFormatError(
            f"{where}: expected 'addr,size' after the op marker, got {text.strip()!r}"
        )
    addr_text, size_text = parts[0].strip(), parts[1].strip()
    try:
        addr = int(addr_text, 16)
    except ValueError:
        raise TraceFormatError(
            f"{where}: invalid hexadecimal address {addr_text!r}"
        ) from None
    try:
        size = int(size_text, 10)
    except ValueError:
        raise TraceFormatError(f"{where}: invalid access size {size_text!r}") from None
    if size <= 0:
        raise TraceFormatError(f"{where}: access size must be positive, got {size}")
    return addr, size


def parse_lackey(path: Union[str, Path]) -> Iterator[Tuple[str, int, int, bool, int]]:
    """Yield ``(where, thread_id, addr, is_write, gap)`` from a lackey trace."""
    path = Path(path)
    pending_gap = 0
    for lineno, raw in numbered_lines(path):
        line = raw.strip()
        if not line or line.startswith("==") or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        op, _, operand = line.partition(" ")
        if op not in _OPS:
            raise TraceFormatError(
                f"{where}: unknown lackey op marker {op!r} (expected one of {_OPS})"
            )
        if op == "I":
            # One fetched instruction of non-memory work; sizes are ignored
            # but still validated so a garbled line cannot pass silently.
            _parse_operand(where, operand)
            pending_gap += 1
            continue
        addr, _size = _parse_operand(where, operand)
        if op == "M":
            yield where, 0, addr, False, pending_gap
            yield where, 0, addr, True, 0
        else:
            yield where, 0, addr, op == "S", pending_gap
        pending_gap = 0


def import_lackey(
    source: Union[str, Path],
    directory: Union[str, Path],
    *,
    name: Optional[str] = None,
    trace_format: str = "csv",
    layout: Optional[AddressLayout] = None,
    synthesize_regions: bool = True,
) -> ImportSummary:
    """Stream-convert a Valgrind lackey trace into a trace directory."""
    return run_import(
        "lackey",
        parse_lackey(source),
        source,
        directory,
        name=name,
        trace_format=trace_format,
        layout=layout,
        synthesize_regions=synthesize_regions,
    )
