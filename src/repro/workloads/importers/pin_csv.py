"""Importer for PIN-style CSV memory traces.

The classic Pin ``pinatrace`` instrumentation (and most home-grown pintools)
emits one line per memory reference with the thread id, the operation and
the effective address.  This importer reads the CSV normal form of that
output::

    tid,op,addr[,size[,gap]]

* ``tid`` -- non-negative decimal thread id (per-thread streams are
  demultiplexed from the single interleaved file);
* ``op`` -- ``R``/``W`` (case-insensitive; ``0``/``1`` are accepted for
  tools that log the write flag numerically);
* ``addr`` -- decimal or ``0x``-prefixed hexadecimal byte address;
* ``size`` *(optional)* -- access width in bytes (validated, recorded at
  the start address);
* ``gap`` *(optional)* -- non-memory instructions since the thread's
  previous reference (defaults to 0 when the pintool does not log it).

Blank lines, ``#`` comments and one optional header line (any first field
that is not a number) are skipped.  Malformed lines raise
:class:`~repro.workloads.trace_io.TraceFormatError` with the file and
1-based line number.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Optional, Tuple, Union

from ...memory.address import AddressLayout
from ..trace_io import TraceFormatError
from .base import ImportSummary, numbered_lines, run_import

__all__ = ["import_pin_csv", "parse_pin_csv"]

_WRITE_TOKENS = {"w": True, "r": False, "1": True, "0": False}


def parse_pin_csv(path: Union[str, Path]) -> Iterator[Tuple[str, int, int, bool, int]]:
    """Yield ``(where, thread_id, addr, is_write, gap)`` from a PIN-style CSV."""
    path = Path(path)
    saw_header = False
    for lineno, raw in numbered_lines(path):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        fields = [f.strip() for f in line.split(",")]
        if not 3 <= len(fields) <= 5:
            raise TraceFormatError(
                f"{where}: expected 3-5 comma-separated fields "
                f"(tid,op,addr[,size[,gap]]), got {len(fields)}: {line!r}"
            )
        if not saw_header and not fields[0].lstrip("+-").isdigit():
            # One tolerated header line, e.g. "tid,op,addr,size".
            saw_header = True
            continue
        saw_header = True
        try:
            tid = int(fields[0], 10)
        except ValueError:
            raise TraceFormatError(
                f"{where}: invalid thread id {fields[0]!r} (expected a decimal integer)"
            ) from None
        is_write = _WRITE_TOKENS.get(fields[1].lower())
        if is_write is None:
            raise TraceFormatError(
                f"{where}: invalid op {fields[1]!r} (expected R, W, 0 or 1)"
            )
        try:
            addr = int(fields[2], 0)
        except ValueError:
            raise TraceFormatError(
                f"{where}: invalid address {fields[2]!r} "
                f"(expected a decimal or 0x-prefixed integer)"
            ) from None
        if len(fields) >= 4:
            try:
                size = int(fields[3], 10)
            except ValueError:
                raise TraceFormatError(
                    f"{where}: invalid access size {fields[3]!r}"
                ) from None
            if size <= 0:
                raise TraceFormatError(
                    f"{where}: access size must be positive, got {size}"
                )
        gap = 0
        if len(fields) == 5:
            try:
                gap = int(fields[4], 10)
            except ValueError:
                raise TraceFormatError(f"{where}: invalid gap {fields[4]!r}") from None
        yield where, tid, addr, is_write, gap


def import_pin_csv(
    source: Union[str, Path],
    directory: Union[str, Path],
    *,
    name: Optional[str] = None,
    trace_format: str = "csv",
    layout: Optional[AddressLayout] = None,
    synthesize_regions: bool = True,
) -> ImportSummary:
    """Stream-convert a PIN-style CSV trace into a trace directory."""
    return run_import(
        "pin",
        parse_pin_csv(source),
        source,
        directory,
        name=name,
        trace_format=trace_format,
        layout=layout,
        synthesize_regions=synthesize_regions,
    )
