"""External-trace importers: turn foreign memory traces into trace directories.

The record/replay loop of :mod:`repro.workloads.trace_io` can replay only
its own trace-directory format; this package ingests traces produced by
*external* tools into that format, so any recorded real-world workload
becomes a simulator scenario (and, through the analyzer and cloner, a whole
parameterised scenario family -- see ``docs/ingestion.md``):

=============  ===============================================  ==========
format token   source                                           module
=============  ===============================================  ==========
``lackey``     Valgrind ``--tool=lackey --trace-mem=yes``       :mod:`.lackey`
``pin``        PIN-style CSV (``tid,op,addr[,size[,gap]]``)     :mod:`.pin_csv`
``synchrotrace``  SynchroTrace-style event traces               :mod:`.synchrotrace`
=============  ===============================================  ==========

All importers stream-convert in bounded memory, accept gzipped sources
transparently (``.gz``), raise located
:class:`~repro.workloads.trace_io.TraceFormatError` messages on any
malformed input, and synthesise the manifest's thread count and
memory-region hints from the pages each thread touched.  ``repro import
FORMAT SRC DEST`` is the CLI entry point.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable, Dict, List, Optional

from ..trace_io import TRACE_FORMATS, TraceFormatError
from .base import ImportSummary, TraceDirEmitter, numbered_lines, run_import
from .lackey import import_lackey, parse_lackey
from .pin_csv import import_pin_csv, parse_pin_csv
from .synchrotrace import import_synchrotrace, parse_synchrotrace

__all__ = [
    "IMPORTERS",
    "ImportSummary",
    "TraceDirEmitter",
    "import_trace",
    "importer_names",
    "import_lackey",
    "import_pin_csv",
    "import_synchrotrace",
    "parse_lackey",
    "parse_pin_csv",
    "parse_synchrotrace",
    "numbered_lines",
    "run_import",
    "main",
]

#: Format token -> importer function, the single authority on importer names.
IMPORTERS: Dict[str, Callable[..., ImportSummary]] = {
    "lackey": import_lackey,
    "pin": import_pin_csv,
    "synchrotrace": import_synchrotrace,
}


def importer_names() -> List[str]:
    """Registered external-format tokens, in registry order."""
    return list(IMPORTERS)


def import_trace(source_format: str, source, directory, **kwargs) -> ImportSummary:
    """Import ``source`` (a file in ``source_format``) into ``directory``.

    Dispatches on :data:`IMPORTERS`; all keyword arguments (``name``,
    ``trace_format``, ``layout``, ``synthesize_regions``) are forwarded to
    the concrete importer.  Raises :class:`TraceFormatError` for an unknown
    format token and for any malformed input.
    """
    importer = IMPORTERS.get(source_format)
    if importer is None:
        raise TraceFormatError(
            f"unknown import format {source_format!r}; "
            f"expected one of {importer_names()}"
        )
    return importer(source, directory, **kwargs)


# ----------------------------------------------------------------------
# CLI (`repro import ...`)
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro import",
        description="Convert an external memory trace into a replayable "
        "trace directory (docs/ingestion.md).",
    )
    parser.add_argument("format", choices=importer_names(),
                        help="external trace format of SOURCE")
    parser.add_argument("source", help="trace file to import (.gz accepted)")
    parser.add_argument("directory", help="destination trace directory")
    parser.add_argument("--name", default=None,
                        help="workload name recorded in the manifest "
                             "(default: the source file's stem)")
    parser.add_argument("--trace-format", default="csv", choices=list(TRACE_FORMATS),
                        help="on-disk format of the emitted per-core files")
    parser.add_argument("--no-regions", action="store_true",
                        help="skip memory-region synthesis (replay then uses "
                             "plain dynamic first-touch and no DRAM-cache "
                             "prewarm)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not Path(args.source).is_file():
        print(f"error: {args.source}: no such trace file", file=sys.stderr)
        return 1
    try:
        summary = import_trace(
            args.format,
            args.source,
            args.directory,
            name=args.name,
            trace_format=args.trace_format,
            synthesize_regions=not args.no_regions,
        )
    except TraceFormatError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(summary.format_line())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via `repro import`
    sys.exit(main())
