"""Shared machinery for external-trace importers.

Every importer (:mod:`.lackey`, :mod:`.pin_csv`, :mod:`.synchrotrace`)
is a thin line parser that yields ``(thread_id, addr, is_write, gap)``
tuples; everything else -- streaming the records into one trace file per
core, validating ranges, synthesising the trace-directory manifest
(thread count, address layout, memory-region hints derived from the pages
each thread touched) -- lives here, so the three formats behave
identically under the property-test wall in
``tests/workloads/test_importers.py``.

Design constraints, in the order they shaped the code:

* **Bounded memory.**  Records are written through per-thread buffered
  writers the moment they are parsed; peak memory is proportional to the
  thread count plus the page *footprint* (for region synthesis), never to
  the trace length.
* **Located errors.**  Any malformed input raises
  :class:`~repro.workloads.trace_io.TraceFormatError` naming the source
  file and 1-based line number; a gzip-corrupted source names the file.
  Importing never silently produces garbage
  (``tests/workloads/test_malformed_corpus.py``).
* **Byte-identical output.**  The emitted per-core files use exactly the
  byte layout of :func:`~repro.workloads.trace_io.write_trace`, so
  re-recording the imported :class:`~repro.workloads.trace_io.TraceDirWorkload`
  with ``record_workload`` reproduces the files byte-for-byte, and
  importing a source twice (or its gzipped variant) is deterministic.
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, IO, Iterable, Iterator, List, Optional, Tuple, Union

from ...memory.address import DEFAULT_LAYOUT, AddressLayout
from ..trace_io import (
    BINARY_MAGIC,
    TRACE_FORMATS,
    TraceFormatError,
    _CSV_HEADER,
    _MANIFEST_NAME,
    _open,
    _RECORD,
    _trace_file_name,
)

__all__ = [
    "ImportSummary",
    "ParsedRecord",
    "TraceDirEmitter",
    "numbered_lines",
    "run_import",
]

#: One parsed external record: (thread_id, addr, is_write, gap).
ParsedRecord = Tuple[int, int, bool, int]

_INT64_MAX = 2**63 - 1
_INT32_MAX = 2**31 - 1

#: Records buffered per thread before flushing to its trace file.
_WRITE_CHUNK = 8192

#: Marker owner for pages touched by more than one thread.
_SHARED = -1


def numbered_lines(path: Union[str, Path]) -> Iterator[Tuple[int, str]]:
    """Yield ``(lineno, line)`` from a text source, transparently gunzipping.

    Decoding never raises (undecodable bytes surface as replacement
    characters and fail the field parsers with a located message instead);
    gzip-level corruption -- truncated stream, bad CRC, not actually gzip --
    is converted to :class:`TraceFormatError` naming the file.
    """
    path = Path(path)
    if str(path).endswith(".gz"):
        handle: IO = gzip.open(path, "rt", encoding="utf-8", errors="replace", newline="")
    else:
        handle = open(path, "r", encoding="utf-8", errors="replace", newline="")
    lineno = 0
    try:
        with handle:
            while True:
                try:
                    line = handle.readline()
                except (EOFError, gzip.BadGzipFile, OSError) as exc:
                    raise TraceFormatError(
                        f"{path}: corrupt gzip stream after line {lineno} ({exc})"
                    ) from None
                if not line:
                    return
                lineno += 1
                yield lineno, line
    except (EOFError, gzip.BadGzipFile) as exc:  # raised by open/close paths
        raise TraceFormatError(f"{path}: corrupt gzip stream ({exc})") from None


@dataclass
class ImportSummary:
    """Outcome of one import: where the trace directory landed and its shape."""

    directory: Path
    source: Path
    format: str
    num_threads: int
    records_per_thread: List[int]
    shared_pages: int
    private_pages: int
    regions: int

    @property
    def total_records(self) -> int:
        return sum(self.records_per_thread)

    def format_line(self) -> str:
        """One human-readable summary line (printed by ``repro import``)."""
        return (
            f"imported {self.total_records} accesses / {self.num_threads} thread(s) "
            f"[{self.format}] -> {self.directory} "
            f"({self.private_pages} private + {self.shared_pages} shared pages, "
            f"{self.regions} synthesised regions)"
        )


class _ThreadWriter:
    """Buffered per-thread trace-file writer, byte-identical to write_trace.

    CSV output starts with the standard header line; binary output with the
    ``C3DTRC01`` magic.  Records are flushed in chunks so an arbitrarily
    long thread streams in constant memory.
    """

    def __init__(self, path: Path, trace_format: str) -> None:
        self.path = path
        self.binary = trace_format.startswith("bin")
        self.count = 0
        if self.binary:
            self._handle = _open(path, "wb")
            self._handle.write(BINARY_MAGIC)
            self._buffer_b = bytearray()
        else:
            self._handle = _open(path, "w")
            self._handle.write(_CSV_HEADER + "\n")
            self._buffer_t: List[str] = []

    def write(self, addr: int, is_write: bool, gap: int) -> None:
        self.count += 1
        if self.binary:
            self._buffer_b += _RECORD.pack(addr, 1 if is_write else 0, gap)
            if len(self._buffer_b) >= _RECORD.size * _WRITE_CHUNK:
                self._handle.write(self._buffer_b)
                self._buffer_b.clear()
        else:
            self._buffer_t.append(f"{addr},{1 if is_write else 0},{gap}\n")
            if len(self._buffer_t) >= _WRITE_CHUNK:
                self._handle.write("".join(self._buffer_t))
                self._buffer_t.clear()

    def close(self) -> None:
        if self.binary:
            if self._buffer_b:
                self._handle.write(self._buffer_b)
        elif self._buffer_t:
            self._handle.write("".join(self._buffer_t))
        self._handle.close()


class TraceDirEmitter:
    """Streams parsed records into a trace directory, then writes the manifest.

    Per-thread writers open lazily on the first record of each thread;
    threads the source never mentions below the maximum thread id get empty
    trace files so the directory satisfies ``TraceDirWorkload``'s
    one-file-per-thread contract.  Alongside the records the emitter tracks
    which pages each thread touched, from which :meth:`close` synthesises
    the manifest's ``memory_regions`` hint: contiguous page runs touched by
    exactly one thread become that thread's ``private`` regions, runs
    touched by several threads become shared ``warm`` regions (the middle
    DRAM-cache prewarm priority -- an imported trace carries no hot/cold
    information).
    """

    def __init__(
        self,
        directory: Union[str, Path],
        *,
        source: Union[str, Path],
        name: str,
        source_format: str = "external",
        trace_format: str = "csv",
        layout: Optional[AddressLayout] = None,
        synthesize_regions: bool = True,
    ) -> None:
        if trace_format not in TRACE_FORMATS:
            raise TraceFormatError(
                f"unknown trace format {trace_format!r}; expected one of {TRACE_FORMATS}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.source = Path(source)
        self.name = name
        self.source_format = source_format
        self.trace_format = trace_format
        self.layout = layout or DEFAULT_LAYOUT
        self.synthesize_regions = synthesize_regions
        self._writers: Dict[int, _ThreadWriter] = {}
        self._page_owner: Dict[int, int] = {}

    def _writer(self, thread_id: int) -> _ThreadWriter:
        writer = self._writers.get(thread_id)
        if writer is None:
            path = self.directory / _trace_file_name(thread_id, self.trace_format)
            writer = _ThreadWriter(path, self.trace_format)
            self._writers[thread_id] = writer
        return writer

    def emit(self, where: str, thread_id: int, addr: int, is_write: bool, gap: int) -> None:
        """Validate and append one record (``where`` = ``file:line`` context)."""
        if thread_id < 0:
            raise TraceFormatError(f"{where}: thread id must be non-negative, got {thread_id}")
        if not 0 <= addr <= _INT64_MAX:
            raise TraceFormatError(
                f"{where}: address {addr:#x} outside the supported [0, 2**63) range"
            )
        if not 0 <= gap <= _INT32_MAX:
            raise TraceFormatError(
                f"{where}: instruction gap {gap} outside the supported [0, 2**31) range"
            )
        self._writer(thread_id).write(addr, is_write, gap)
        if self.synthesize_regions:
            page = addr // self.layout.page_size
            owner = self._page_owner.get(page)
            if owner is None:
                self._page_owner[page] = thread_id
            elif owner != thread_id:
                self._page_owner[page] = _SHARED

    # -- finishing ----------------------------------------------------------

    def _synthesised_regions(self) -> List[Dict]:
        """Contiguous page runs -> memory_regions records (manifest order)."""
        page_size = self.layout.page_size
        regions: List[Dict] = []
        run_start = run_end = run_owner = None
        for page in sorted(self._page_owner):
            owner = self._page_owner[page]
            if run_start is not None and page == run_end + 1 and owner == run_owner:
                run_end = page
                continue
            if run_start is not None:
                regions.append(_region(run_start, run_end, run_owner, page_size))
            run_start = run_end = page
            run_owner = owner
        if run_start is not None:
            regions.append(_region(run_start, run_end, run_owner, page_size))
        return regions

    def close(self) -> ImportSummary:
        """Flush every writer, fill thread gaps, write the manifest."""
        if not self._writers:
            raise TraceFormatError(f"{self.source}: contains no memory accesses")
        num_threads = max(self._writers) + 1
        for thread_id in range(num_threads):
            self._writer(thread_id)  # materialise empty files for gaps
        lengths = []
        for thread_id in range(num_threads):
            writer = self._writers[thread_id]
            writer.close()
            lengths.append(writer.count)
        regions = self._synthesised_regions() if self.synthesize_regions else []
        shared = sum(1 for owner in self._page_owner.values() if owner == _SHARED)
        manifest = {
            "format_version": 1,
            "name": self.name,
            "num_threads": num_threads,
            "trace_format": self.trace_format,
            "block_size": self.layout.block_size,
            "page_size": self.layout.page_size,
            "accesses_per_thread": lengths,
            "memory_regions": regions,
            "imported_from": {"source": str(self.source), "format": self.source_format},
        }
        (self.directory / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=2) + "\n")
        return ImportSummary(
            directory=self.directory,
            source=self.source,
            format=self.source_format,
            num_threads=num_threads,
            records_per_thread=lengths,
            shared_pages=shared,
            private_pages=len(self._page_owner) - shared,
            regions=len(regions),
        )


def _region(first_page: int, last_page: int, owner: int, page_size: int) -> Dict:
    return {
        "kind": "private" if owner != _SHARED else "warm",
        "base": first_page * page_size,
        "size": (last_page - first_page + 1) * page_size,
        "owner_thread": owner if owner != _SHARED else None,
    }


def run_import(
    source_format: str,
    records: Iterable[Tuple[str, int, int, bool, int]],
    source: Union[str, Path],
    directory: Union[str, Path],
    *,
    name: Optional[str] = None,
    trace_format: str = "csv",
    layout: Optional[AddressLayout] = None,
    synthesize_regions: bool = True,
) -> ImportSummary:
    """Drive one import: stream parsed records into a trace directory.

    ``records`` yields ``(where, thread_id, addr, is_write, gap)`` -- the
    importer's parse generator; ``where`` is the ``file:line`` context used
    in validation errors.  Returns the :class:`ImportSummary`.
    """
    emitter = TraceDirEmitter(
        directory,
        source=source,
        name=name or Path(source).stem,
        source_format=source_format,
        trace_format=trace_format,
        layout=layout,
        synthesize_regions=synthesize_regions,
    )
    for where, thread_id, addr, is_write, gap in records:
        emitter.emit(where, thread_id, addr, is_write, gap)
    return emitter.close()
