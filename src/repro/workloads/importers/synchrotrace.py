"""Importer for SynchroTrace-style event traces.

SynchroTrace (Nilakantan et al.; the gem5 frontend lives in
``src/cpu/testers/synchrotrace``) drives timing simulation from
*event traces*: per-thread sequences of aggregated computation events
(instruction counts between memory operations) and memory events.  This
importer reads the single-file normal form of such a trace, one event per
line, comma-separated::

    <event_id>,<tid>,comp,<iops>,<flops>
    <event_id>,<tid>,read,<addr>,<bytes>
    <event_id>,<tid>,write,<addr>,<bytes>

* ``event_id`` -- non-negative integer, strictly increasing **per thread**
  (the cheap integrity check that catches spliced or reordered traces);
* ``comp`` events add ``iops + flops`` instructions to the gap of the
  thread's next memory event;
* ``read``/``write`` events reference ``addr`` (decimal or ``0x`` hex)
  for ``bytes`` bytes (recorded at the start address).

Blank lines and ``#`` comments are skipped.  Synchronisation events of the
real format (thread create/join, mutex/barrier) are out of scope -- the
simulated machine has no OS model -- and any other event kind raises
:class:`~repro.workloads.trace_io.TraceFormatError` with the file and
line, as does any malformed field or a non-monotonic event id.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from ...memory.address import AddressLayout
from ..trace_io import TraceFormatError
from .base import ImportSummary, numbered_lines, run_import

__all__ = ["import_synchrotrace", "parse_synchrotrace"]

_EVENT_KINDS = ("comp", "read", "write")


def _int_field(where: str, label: str, text: str, *, base: int = 10) -> int:
    try:
        return int(text, base)
    except ValueError:
        raise TraceFormatError(f"{where}: invalid {label} {text!r}") from None


def parse_synchrotrace(
    path: Union[str, Path],
) -> Iterator[Tuple[str, int, int, bool, int]]:
    """Yield ``(where, thread_id, addr, is_write, gap)`` from an event trace."""
    path = Path(path)
    pending_gap: Dict[int, int] = {}
    last_event: Dict[int, int] = {}
    for lineno, raw in numbered_lines(path):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        where = f"{path}:{lineno}"
        fields = [f.strip() for f in line.split(",")]
        if len(fields) != 5:
            raise TraceFormatError(
                f"{where}: expected 5 comma-separated fields "
                f"(event,tid,kind,a,b), got {len(fields)}: {line!r}"
            )
        event = _int_field(where, "event id", fields[0])
        tid = _int_field(where, "thread id", fields[1])
        if tid < 0:
            raise TraceFormatError(f"{where}: thread id must be non-negative, got {tid}")
        kind = fields[2].lower()
        if kind not in _EVENT_KINDS:
            raise TraceFormatError(
                f"{where}: unknown event kind {fields[2]!r} "
                f"(expected one of {_EVENT_KINDS})"
            )
        previous = last_event.get(tid)
        if previous is not None and event <= previous:
            raise TraceFormatError(
                f"{where}: event id {event} not increasing for thread {tid} "
                f"(previous was {previous}; the trace is reordered or spliced)"
            )
        last_event[tid] = event

        if kind == "comp":
            iops = _int_field(where, "iop count", fields[3])
            flops = _int_field(where, "flop count", fields[4])
            if iops < 0 or flops < 0:
                raise TraceFormatError(
                    f"{where}: iop/flop counts must be non-negative "
                    f"(got {iops}, {flops})"
                )
            pending_gap[tid] = pending_gap.get(tid, 0) + iops + flops
            continue
        addr = _int_field(where, "address", fields[3], base=0)
        size = _int_field(where, "byte count", fields[4])
        if size <= 0:
            raise TraceFormatError(f"{where}: byte count must be positive, got {size}")
        yield where, tid, addr, kind == "write", pending_gap.pop(tid, 0)


def import_synchrotrace(
    source: Union[str, Path],
    directory: Union[str, Path],
    *,
    name: Optional[str] = None,
    trace_format: str = "csv",
    layout: Optional[AddressLayout] = None,
    synthesize_regions: bool = True,
) -> ImportSummary:
    """Stream-convert a SynchroTrace-style event trace into a trace directory."""
    return run_import(
        "synchrotrace",
        parse_synchrotrace(source),
        source,
        directory,
        name=name,
        trace_format=trace_format,
        layout=layout,
        synthesize_regions=synthesize_regions,
    )
