"""A socket: cores + private L1s + shared LLC + optional DRAM cache + memory.

The socket implements the *intra-socket* part of the memory system (Fig. 1):
per-core L1s kept coherent through a local directory embedded in the LLC,
with the LLC inclusive of the L1s.  Anything the socket cannot satisfy
on-chip is handed to the global coherence protocol
(:mod:`repro.coherence.protocol_base`), which owns the DRAM cache probing,
the global directory and the interconnect.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..caches.block import CacheBlockState
from ..caches.dram_cache import DRAMCache
from ..caches.miss_predictor import RegionMissPredictor
from ..caches.sram_cache import SetAssociativeCache
from ..coherence.local_directory import LocalDirectory, LocalDirectoryEntry
from ..coherence.messages import MissResult, ServiceSource
from ..memory.address import AddressLayout
from ..memory.main_memory import MemoryController
from ..stats.counters import SimulationStats

if TYPE_CHECKING:  # pragma: no cover
    from ..coherence.protocol_base import GlobalCoherenceProtocol
    from .config import SystemConfig
    from .numa_system import NumaSystem

__all__ = ["Socket"]

_MODIFIED = CacheBlockState.MODIFIED
_SHARED = CacheBlockState.SHARED


class Socket:
    """One NUMA socket of the simulated machine."""

    def __init__(
        self,
        socket_id: int,
        config: "SystemConfig",
        system: "NumaSystem",
        *,
        with_dram_cache: bool,
    ) -> None:
        self.socket_id = socket_id
        self.config = config
        self.system = system
        self.layout: AddressLayout = system.layout

        # -- latencies (ns) -------------------------------------------------
        self.l1_latency_ns = config.l1.latency_ns
        self.llc_latency_ns = config.llc.latency_ns
        self.dram_cache_latency_ns = config.dram_cache.latency_ns
        self.dram_predictor_latency_ns = config.dram_cache.predictor_latency_ns
        self.snoop_filter_latency_ns = config.directory.snoop_filter_latency_ns

        # -- per-core L1s ---------------------------------------------------
        self.l1s: List[SetAssociativeCache] = [
            SetAssociativeCache(
                config.l1.size_bytes,
                config.l1.associativity,
                block_size=config.block_size,
                name=f"socket{socket_id}.l1[{i}]",
            )
            for i in range(config.cores_per_socket)
        ]

        # -- shared LLC + local directory -------------------------------------
        self.llc = SetAssociativeCache(
            config.llc.size_bytes,
            config.llc.associativity,
            block_size=config.block_size,
            name=f"socket{socket_id}.llc",
        )
        self.local_directory = LocalDirectory(
            latency_ns=config.directory.local_latency_ns,
            name=f"socket{socket_id}.local_dir",
        )

        # -- optional DRAM cache ------------------------------------------------
        self.dram_cache: Optional[DRAMCache] = None
        if with_dram_cache and config.dram_cache.enabled:
            predictor = RegionMissPredictor(
                entries=config.dram_cache.predictor_entries,
                region_size=config.dram_cache.region_size,
                layout=self.layout,
            )
            clean = system.protocol_is_clean
            self.dram_cache = DRAMCache(
                config.dram_cache.size_bytes,
                block_size=config.block_size,
                associativity=config.dram_cache.associativity,
                clean=clean,
                name=f"socket{socket_id}.dram_cache",
                miss_predictor=predictor,
            )

        # -- local memory ---------------------------------------------------------
        self.memory = MemoryController(
            latency_ns=config.memory.latency_ns,
            channels=config.memory.channels,
            channel_bandwidth_gbps=config.memory.channel_bandwidth_gbps,
            block_size=config.block_size,
            infinite_bandwidth=config.memory.infinite_bandwidth,
        )

        #: Set by the system after the protocol is constructed.
        self.protocol: Optional["GlobalCoherenceProtocol"] = None
        self._core_ids = [
            socket_id * config.cores_per_socket + i for i in range(config.cores_per_socket)
        ]

    # ------------------------------------------------------------------
    # Identity helpers
    # ------------------------------------------------------------------

    @property
    def stats(self) -> SimulationStats:
        return self.system.stats

    @property
    def core_ids(self) -> List[int]:
        """Global core ids housed by this socket."""
        return list(self._core_ids)

    def local_index_of(self, core_id: int) -> int:
        """Map a global core id to the socket-local L1 index."""
        return core_id - self._core_ids[0]

    # ------------------------------------------------------------------
    # The demand access path
    # ------------------------------------------------------------------

    def access(
        self, now: float, core_index: int, block: int, is_write: bool = False,
        thread_id: int = 0,
    ) -> Tuple[float, ServiceSource]:
        """Service one demand access from core ``core_index`` of this socket.

        Returns ``(latency_ns, source)`` where ``latency_ns`` is the critical
        path of the access and ``source`` identifies which level ultimately
        provided the data (or write permission).
        """
        stats = self.system.stats
        l1_line = self.l1s[core_index].lookup(block)

        if l1_line is not None and (not is_write or l1_line.state is _MODIFIED):
            stats.l1_hits += 1
            if is_write:
                l1_line.dirty = True
                llc_line = self.llc.peek(block)
                if llc_line is not None:
                    llc_line.dirty = True
            return self.l1_latency_ns, ServiceSource.L1
        stats.l1_misses += 1
        return self.access_l1_missed(now, core_index, block, is_write, thread_id)

    def access_l1_missed(
        self, now: float, core_index: int, block: int, is_write: bool, thread_id: int
    ) -> Tuple[float, ServiceSource]:
        """Continue a demand access after an L1 miss (or store permission miss).

        Split out of :meth:`access` so the compiled engine can inline the L1
        hit path into the core and enter the memory system here.  The caller
        has already performed the L1 lookup (recency + cache and stats hit
        accounting).
        """
        stats = self.system.stats
        # LLC level (local directory consulted in parallel with the tag check).
        latency = self.l1_latency_ns + self.local_directory.latency_ns
        llc = self.llc
        llc_line = llc.lookup(block)

        if llc_line is not None:
            latency += self.llc_latency_ns
            stats.llc_hits += 1
            if not is_write:
                latency += self._peer_intervention(core_index, block)
                self._fill_l1(core_index, block, modified=False)
                return latency, ServiceSource.LLC
            if llc_line.state is _MODIFIED:
                self._local_write_update(core_index, block)
                return latency, ServiceSource.LLC
            # Shared in the LLC: data is present but Modified permission is not.
            result = self.protocol.write_miss(
                now + latency, self.socket_id, block,
                thread_id=thread_id, has_shared_copy=True,
            )
            latency += result.latency
            llc.set_state(block, _MODIFIED, dirty=True)
            self._local_write_update(core_index, block)
            return latency, result.source

        # LLC miss: hand the request to the global protocol.
        stats.llc_misses += 1
        if is_write:
            result = self.protocol.write_miss(
                now + latency, self.socket_id, block,
                thread_id=thread_id, has_shared_copy=False,
            )
        else:
            result = self.protocol.read_miss(now + latency, self.socket_id, block)
        latency += result.latency

        # Inlined _record_service (one call per LLC miss saved).
        source = result.source
        if source is ServiceSource.LOCAL_DRAM_CACHE:
            stats.served_local_dram_cache += 1
        elif source is ServiceSource.LOCAL_MEMORY:
            stats.served_local_memory += 1
        elif source is ServiceSource.REMOTE_MEMORY:
            stats.served_remote_memory += 1
        elif source is ServiceSource.REMOTE_LLC:
            stats.served_remote_llc += 1
        elif source is ServiceSource.REMOTE_DRAM_CACHE:
            stats.served_remote_dram_cache += 1
        acc = stats.llc_miss_latency
        acc.total += result.latency
        acc.count += 1
        if result.latency > acc.maximum:
            acc.maximum = result.latency

        self._fill(now + latency, core_index, block, modified=is_write)
        return latency, source

    def access_functional(self, core_index: int, block: int, is_write: bool,
                          thread_id: int = 0) -> None:
        """Functional-only access: advance cache/directory state, no timing.

        Used by the sampled engine's fast-forward segments
        (:meth:`repro.engines.SampledEngine` drives it through
        ``EngineContext.run_phase_functional``).  The *state* transitions
        mirror :meth:`access` exactly -- L1/LLC recency and fills,
        local-directory bookkeeping, and the global protocol's
        directory/DRAM-cache updates, invoked through the protocol's
        ``*_functional`` state-only mirrors (whose generic fallback runs the
        timed entry points under the functional-timing stubs the caller has
        installed).  Latencies are discarded and statistics land on the
        scratch counters the caller installed, so a fast-forward leaves the
        measured statistics untouched while every cache stays warm.
        """
        l1 = self.l1s[core_index]
        line = l1.lookup(block)
        if line is not None and (not is_write or line.state is _MODIFIED):
            if is_write:
                line.dirty = True
                llc_line = self.llc.peek(block)
                if llc_line is not None:
                    llc_line.dirty = True
            return
        llc = self.llc
        llc_line = llc.lookup(block)
        if llc_line is not None:
            if not is_write:
                self._peer_intervention(core_index, block)
                self._fill_l1(core_index, block, modified=False)
                return
            if llc_line.state is _MODIFIED:
                self._local_write_update(core_index, block)
                return
            self.protocol.write_miss_functional(
                self.socket_id, block,
                thread_id=thread_id, has_shared_copy=True,
            )
            llc.set_state(block, _MODIFIED, dirty=True)
            self._local_write_update(core_index, block)
            return
        if is_write:
            self.protocol.write_miss_functional(
                self.socket_id, block,
                thread_id=thread_id, has_shared_copy=False,
            )
        else:
            self.protocol.read_miss_functional(self.socket_id, block)
        self._fill_functional(core_index, block, modified=is_write)

    # ------------------------------------------------------------------
    # Intra-socket mechanics
    # ------------------------------------------------------------------

    def _peer_intervention(self, core_index: int, block: int) -> float:
        """If a peer core's L1 owns the block modified, source it from there."""
        owner = self.local_directory.owner_of(block)
        if owner is None or owner == core_index:
            return 0.0
        self.stats.llc_peer_hits += 1
        self.local_directory.peer_interventions += 1
        # The owner is downgraded to Shared; the LLC copy is made current.
        owner_l1 = self.l1s[owner]
        owner_line = owner_l1.peek(block)
        if owner_line is not None:
            owner_line.state = CacheBlockState.SHARED
            owner_l1.note_external_change(block)
        entry = self.local_directory.peek(block)
        if entry is not None:
            entry.owner = None
        return self.l1_latency_ns

    def _local_write_update(self, core_index: int, block: int) -> None:
        """Give core ``core_index`` the only L1 copy and mark everything dirty."""
        peers = self.local_directory.record_write(block, core_index)
        for peer in peers:
            self.l1s[peer].invalidate(block)
        self._fill_l1(core_index, block, modified=True)
        llc_line = self.llc.peek(block)
        if llc_line is not None:
            llc_line.state = CacheBlockState.MODIFIED
            llc_line.dirty = True

    def _fill_l1(self, core_index: int, block: int, *, modified: bool) -> None:
        l1 = self.l1s[core_index]
        state = _MODIFIED if modified else _SHARED
        victim = l1.insert(block, state, dirty=modified)
        # Inlined LocalDirectory.record_fill.
        local_dir = self.local_directory
        entries = local_dir._entries
        entry = entries.get(block)
        if entry is None:
            entry = entries[block] = LocalDirectoryEntry(block=block)
        entry.sharers.add(core_index)
        if modified:
            entry.owner = core_index
        elif entry.owner == core_index:
            entry.owner = None
        if victim is not None:
            # Inlined LocalDirectory.record_eviction.
            victim_block = victim.block
            victim_entry = entries.get(victim_block)
            if victim_entry is not None:
                victim_entry.sharers.discard(core_index)
                if victim_entry.owner == core_index:
                    victim_entry.owner = None
                if not victim_entry.sharers:
                    del entries[victim_block]
            if victim.dirty:
                # Write the L1 victim's data back into the (inclusive) LLC.
                llc_line = self.llc.peek(victim_block)
                if llc_line is not None:
                    llc_line.dirty = True

    def _fill(self, now: float, core_index: int, block: int, *, modified: bool) -> None:
        """Install a fill returned by the global protocol into LLC + L1."""
        state = _MODIFIED if modified else _SHARED
        victim = self.llc.insert(block, state, dirty=modified)
        if victim is not None:
            self._handle_llc_victim(now, victim.block, victim.dirty)
        self._fill_l1(core_index, block, modified=modified)

    def _fill_functional(self, core_index: int, block: int, *, modified: bool) -> None:
        """State-only :meth:`_fill`: victims go to the protocol's functional mirror."""
        state = _MODIFIED if modified else _SHARED
        victim = self.llc.insert(block, state, dirty=modified)
        if victim is not None:
            victim_block = victim.block
            victim_dirty = victim.dirty
            cores_with_copy = self.local_directory.invalidate_block(victim_block)
            for core in cores_with_copy:
                line = self.l1s[core].invalidate(victim_block)
                if line is not None and line.dirty:
                    victim_dirty = True
            self.protocol.llc_eviction_functional(
                self.socket_id, victim_block, dirty=victim_dirty
            )
        self._fill_l1(core_index, block, modified=modified)

    def _handle_llc_victim(self, now: float, victim_block: int, dirty: bool) -> None:
        """Back-invalidate L1 copies of the victim and hand it to the protocol."""
        cores_with_copy = self.local_directory.invalidate_block(victim_block)
        victim_dirty = dirty
        for core in cores_with_copy:
            line = self.l1s[core].invalidate(victim_block)
            if line is not None and line.dirty:
                victim_dirty = True
        self.protocol.llc_eviction(now, self.socket_id, victim_block, dirty=victim_dirty)

    # ------------------------------------------------------------------
    # Entry points used by the global protocols on remote sockets
    # ------------------------------------------------------------------

    def invalidate_onchip(self, block: int) -> bool:
        """Invalidate any LLC / L1 copies of ``block``; returns True if one existed."""
        had_copy = False
        for core in self.local_directory.invalidate_block(block):
            self.l1s[core].invalidate(block)
            had_copy = True
        if self.llc.invalidate(block) is not None:
            had_copy = True
        return had_copy

    def downgrade_block(self, block: int) -> bool:
        """Downgrade an on-chip Modified copy to Shared; returns True if it was dirty."""
        was_dirty = False
        entry = self.local_directory.peek(block)
        if entry is not None:
            for core in list(entry.sharers):
                core_l1 = self.l1s[core]
                line = core_l1.peek(block)
                if line is not None:
                    if line.dirty:
                        was_dirty = True
                    line.state = CacheBlockState.SHARED
                    line.dirty = False
                    core_l1.note_external_change(block)
            entry.owner = None
        llc_line = self.llc.peek(block)
        if llc_line is not None:
            if llc_line.dirty:
                was_dirty = True
            self.llc.downgrade(block)
        return was_dirty

    # ------------------------------------------------------------------
    # Statistics plumbing
    # ------------------------------------------------------------------

    def _record_service(self, result: MissResult) -> None:
        stats = self.system.stats
        source = result.source
        if source is ServiceSource.LOCAL_DRAM_CACHE:
            stats.served_local_dram_cache += 1
        elif source is ServiceSource.LOCAL_MEMORY:
            stats.served_local_memory += 1
        elif source is ServiceSource.REMOTE_MEMORY:
            stats.served_remote_memory += 1
        elif source is ServiceSource.REMOTE_LLC:
            stats.served_remote_llc += 1
        elif source is ServiceSource.REMOTE_DRAM_CACHE:
            stats.served_remote_dram_cache += 1
        stats.llc_miss_latency.add(result.latency)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dram = "+DRAM$" if self.dram_cache is not None else ""
        return f"Socket({self.socket_id}{dram})"
