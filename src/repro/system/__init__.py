"""System assembly: configuration, sockets, the NUMA machine and the driver."""

from .config import (
    PROTOCOL_NAMES,
    CacheConfig,
    DirectoryConfig,
    DRAMCacheConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    SystemConfig,
    cycles_to_ns,
)
from .numa_system import PROTOCOL_REGISTRY, NumaSystem, build_system
from .simulator import SimulationResult, Simulator
from .socket import Socket

__all__ = [
    "SystemConfig",
    "CacheConfig",
    "DRAMCacheConfig",
    "MemoryConfig",
    "InterconnectConfig",
    "DirectoryConfig",
    "ProcessorConfig",
    "PROTOCOL_NAMES",
    "PROTOCOL_REGISTRY",
    "cycles_to_ns",
    "NumaSystem",
    "build_system",
    "Socket",
    "Simulator",
    "SimulationResult",
]


def __getattr__(name):
    # Deprecated alias of the repro.api facade, kept one release.
    if name == "simulate":
        import warnings

        warnings.warn(
            "importing 'simulate' from repro.system is deprecated; "
            "use repro.api.simulate (docs/architecture.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..api import simulate

        return simulate
    raise AttributeError(f"module 'repro.system' has no attribute {name!r}")
