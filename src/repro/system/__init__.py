"""System assembly: configuration, sockets, the NUMA machine and the driver."""

from .config import (
    PROTOCOL_NAMES,
    CacheConfig,
    DirectoryConfig,
    DRAMCacheConfig,
    InterconnectConfig,
    MemoryConfig,
    ProcessorConfig,
    SystemConfig,
    cycles_to_ns,
)
from .numa_system import PROTOCOL_REGISTRY, NumaSystem, build_system
from .simulator import SimulationResult, Simulator
from .socket import Socket

__all__ = [
    "SystemConfig",
    "CacheConfig",
    "DRAMCacheConfig",
    "MemoryConfig",
    "InterconnectConfig",
    "DirectoryConfig",
    "ProcessorConfig",
    "PROTOCOL_NAMES",
    "PROTOCOL_REGISTRY",
    "cycles_to_ns",
    "NumaSystem",
    "build_system",
    "Socket",
    "Simulator",
    "SimulationResult",
]
