"""System configuration (Table II) expressed as dataclasses.

The default values reproduce Table II of the paper:

* 32 cores at 3 GHz, 1 IPC, 32-entry store queue, TSO;
* 64 KB / 8-way L1 (3 cycles), 16 MB / 16-way LLC (7-cycle tag + 13-cycle
  data), per-socket;
* 1 GB direct-mapped block-based DRAM cache, 40 ns, 4K-entry region miss
  predictor (2 cycles);
* global directory 10 cycles, local directory 7 cycles;
* ring (4-socket) or point-to-point (2-socket) interconnect, 20 ns per hop,
  25.6 GB/s, 16 B control / 80 B data packets;
* 50 ns main memory, 2 DDR3-1600 channels (12.8 GB/s each) per socket.

Because a pure-Python simulator cannot execute billions of accesses, the
experiment harness uses :meth:`SystemConfig.scaled` to divide capacities by a
common factor while keeping every latency and bandwidth at its Table II
value; see DESIGN.md section 5 for why this preserves the paper's shapes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field, replace

__all__ = [
    "CacheConfig",
    "DRAMCacheConfig",
    "MemoryConfig",
    "InterconnectConfig",
    "DirectoryConfig",
    "ProcessorConfig",
    "SystemConfig",
    "PROTOCOL_NAMES",
    "cycles_to_ns",
]

#: Names of the evaluated designs, as used throughout the experiments.
PROTOCOL_NAMES = ("baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir")


def cycles_to_ns(cycles: float, clock_ghz: float = 3.0) -> float:
    """Convert core cycles to nanoseconds at the given clock."""
    return cycles / clock_ghz


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and latency of an SRAM cache level."""

    size_bytes: int
    associativity: int
    latency_ns: float

    def scaled(self, factor: int, *, floor_bytes: int = 4096) -> "CacheConfig":
        """Return a copy with capacity divided by ``factor`` (not below ``floor_bytes``)."""
        new_size = max(floor_bytes, self.size_bytes // factor)
        return replace(self, size_bytes=new_size)


@dataclass(frozen=True)
class DRAMCacheConfig:
    """Per-socket die-stacked DRAM cache parameters."""

    size_bytes: int = 1 << 30          # 1 GB
    latency_ns: float = 40.0
    predictor_entries: int = 4096
    predictor_latency_ns: float = cycles_to_ns(2)
    region_size: int = 4096
    enabled: bool = True
    #: 1 = the paper's direct-mapped organisation; >1 enables the intrusive
    #: per-set LRU (sensitivity sweeps).
    associativity: int = 1

    def scaled(self, factor: int, *, floor_bytes: int = 1 << 16) -> "DRAMCacheConfig":
        new_size = max(floor_bytes, self.size_bytes // factor)
        return replace(self, size_bytes=new_size)


@dataclass(frozen=True)
class MemoryConfig:
    """Per-socket main-memory parameters."""

    latency_ns: float = 50.0
    channels: int = 2
    channel_bandwidth_gbps: float = 12.8
    infinite_bandwidth: bool = False


@dataclass(frozen=True)
class InterconnectConfig:
    """Inter-socket interconnect parameters."""

    topology: str = "ring"
    hop_latency_ns: float = 20.0
    link_bandwidth_gbps: float = 25.6
    control_packet_bytes: int = 16
    data_packet_bytes: int = 80
    zero_latency: bool = False
    infinite_bandwidth: bool = False


@dataclass(frozen=True)
class DirectoryConfig:
    """Global and local directory access latencies."""

    latency_ns: float = cycles_to_ns(10)
    local_latency_ns: float = cycles_to_ns(7)
    snoop_filter_latency_ns: float = cycles_to_ns(10)


@dataclass(frozen=True)
class ProcessorConfig:
    """Core pipeline parameters."""

    clock_ghz: float = 3.0
    store_buffer_entries: int = 32
    tlb_entries: int = 64


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of a simulated machine + protocol choice."""

    num_sockets: int = 4
    cores_per_socket: int = 8
    protocol: str = "c3d"
    allocation_policy: str = "first_touch"
    block_size: int = 64
    page_size: int = 4096
    broadcast_filter: bool = False

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(64 * 1024, 8, cycles_to_ns(3))
    )
    llc: CacheConfig = field(
        default_factory=lambda: CacheConfig(16 * 1024 * 1024, 16, cycles_to_ns(20))
    )
    dram_cache: DRAMCacheConfig = field(default_factory=DRAMCacheConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)

    # -- validation -----------------------------------------------------------

    def __post_init__(self) -> None:
        if self.num_sockets < 1:
            raise ValueError("num_sockets must be >= 1")
        if self.cores_per_socket < 1:
            raise ValueError("cores_per_socket must be >= 1")
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(
                f"unknown protocol {self.protocol!r}; expected one of {PROTOCOL_NAMES}"
            )

    # -- derived quantities -----------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.num_sockets * self.cores_per_socket

    def socket_of_core(self, core_id: int) -> int:
        """Socket housing global core id ``core_id``."""
        return core_id // self.cores_per_socket

    def local_core_index(self, core_id: int) -> int:
        """Index of global core id ``core_id`` within its socket."""
        return core_id % self.cores_per_socket

    # -- canonical configurations ------------------------------------------------

    @classmethod
    def quad_socket(cls, **overrides) -> "SystemConfig":
        """The paper's 4-socket, 8-core/socket machine with a ring interconnect."""
        defaults = dict(num_sockets=4, cores_per_socket=8,
                        interconnect=InterconnectConfig(topology="ring"))
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def dual_socket(cls, **overrides) -> "SystemConfig":
        """The paper's 2-socket, 16-core/socket machine with a P2P interconnect."""
        defaults = dict(num_sockets=2, cores_per_socket=16,
                        interconnect=InterconnectConfig(topology="p2p"))
        defaults.update(overrides)
        return cls(**defaults)

    # -- transformations -----------------------------------------------------------

    def scaled(self, factor: int) -> "SystemConfig":
        """Scale cache capacities down by ``factor`` (latencies unchanged).

        Working sets in the workload generators are scaled by the same factor
        so hit rates (and therefore all normalised results) are preserved.
        """
        if factor < 1:
            raise ValueError("scale factor must be >= 1")
        if factor == 1:
            return self
        return replace(
            self,
            l1=self.l1.scaled(factor, floor_bytes=4 * 1024),
            llc=self.llc.scaled(factor, floor_bytes=64 * 1024),
            dram_cache=self.dram_cache.scaled(factor),
        )

    def with_protocol(self, protocol: str, **overrides) -> "SystemConfig":
        """Return a copy running a different coherence design."""
        return replace(self, protocol=protocol, **overrides)

    def with_idealisation(
        self,
        *,
        zero_qpi_latency: bool = False,
        infinite_memory_bandwidth: bool = False,
        infinite_qpi_bandwidth: bool = False,
    ) -> "SystemConfig":
        """Apply the Fig. 2 idealisations to this configuration."""
        interconnect = replace(
            self.interconnect,
            zero_latency=zero_qpi_latency or self.interconnect.zero_latency,
            infinite_bandwidth=infinite_qpi_bandwidth or self.interconnect.infinite_bandwidth,
        )
        memory = replace(
            self.memory,
            infinite_bandwidth=infinite_memory_bandwidth or self.memory.infinite_bandwidth,
        )
        return replace(self, interconnect=interconnect, memory=memory)

    def describe(self) -> str:
        """Human-readable one-line summary (used in reports)."""
        dram = (
            f"{self.dram_cache.size_bytes // (1024 * 1024)}MB DRAM$"
            if self.dram_cache.enabled and self.protocol != "baseline"
            else "no DRAM$"
        )
        return (
            f"{self.num_sockets}-socket x {self.cores_per_socket} cores, "
            f"LLC {self.llc.size_bytes // (1024 * 1024)}MB, {dram}, "
            f"protocol={self.protocol}, policy={self.allocation_policy}"
        )

    def as_dict(self) -> dict:
        """Flatten to a plain dictionary (for experiment records)."""
        return dataclasses.asdict(self)
