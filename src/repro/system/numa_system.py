"""NUMA machine assembly: sockets, interconnect, directories, protocol, cores.

:class:`NumaSystem` wires a :class:`~repro.system.config.SystemConfig` into a
complete simulated machine and exposes the pieces the simulation driver and
the experiments need.  The coherence design is selected by name through
:data:`PROTOCOL_REGISTRY`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from ..coherence.baseline import BaselineProtocol
from ..coherence.directory import GlobalDirectory
from ..coherence.full_directory import FullDirectoryProtocol
from ..coherence.protocol_base import GlobalCoherenceProtocol
from ..coherence.snoopy import SnoopyProtocol
from ..core.c3d_full_dir import C3DFullDirectoryProtocol
from ..core.c3d_protocol import C3DProtocol
from ..core.page_classifier import PrivateSharedClassifier
from ..cpu.processor import Core
from ..interconnect.network import Interconnect
from ..interconnect.topology import make_topology
from ..memory.address import AddressLayout
from ..memory.allocation import AddressMapper, make_policy
from ..stats.counters import SimulationStats
from .config import SystemConfig
from .socket import Socket

__all__ = ["NumaSystem", "PROTOCOL_REGISTRY", "build_system"]


#: Mapping from the paper's design names to protocol classes.
PROTOCOL_REGISTRY: Dict[str, Type[GlobalCoherenceProtocol]] = {
    "baseline": BaselineProtocol,
    "snoopy": SnoopyProtocol,
    "full-dir": FullDirectoryProtocol,
    "c3d": C3DProtocol,
    "c3d-full-dir": C3DFullDirectoryProtocol,
}


class NumaSystem:
    """A fully assembled multi-socket machine ready to be driven by traces."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        self.stats = SimulationStats()
        self.layout = AddressLayout(config.block_size, config.page_size)
        self.policy = make_policy(config.allocation_policy, config.num_sockets)
        self.mapper = AddressMapper(self.policy, self.layout)

        protocol_cls = PROTOCOL_REGISTRY[config.protocol]
        #: Read by sockets while they build their DRAM caches.
        self.protocol_is_clean = protocol_cls.clean_dram_cache

        topology = make_topology(config.interconnect.topology, config.num_sockets)
        self.interconnect = Interconnect(
            topology,
            hop_latency_ns=config.interconnect.hop_latency_ns,
            link_bandwidth_gbps=config.interconnect.link_bandwidth_gbps,
            control_packet_bytes=config.interconnect.control_packet_bytes,
            data_packet_bytes=config.interconnect.data_packet_bytes,
            zero_latency=config.interconnect.zero_latency,
            infinite_bandwidth=config.interconnect.infinite_bandwidth,
        )
        self.directories: List[GlobalDirectory] = [
            GlobalDirectory(socket_id, latency_ns=config.directory.latency_ns)
            for socket_id in range(config.num_sockets)
        ]
        self.page_classifier: Optional[PrivateSharedClassifier] = (
            PrivateSharedClassifier(layout=self.layout) if config.broadcast_filter else None
        )

        self.sockets: List[Socket] = [
            Socket(socket_id, config, self, with_dram_cache=protocol_cls.uses_dram_cache)
            for socket_id in range(config.num_sockets)
        ]

        if issubclass(protocol_cls, C3DProtocol):
            self.protocol: GlobalCoherenceProtocol = protocol_cls(
                self, broadcast_filter=config.broadcast_filter
            )
        else:
            self.protocol = protocol_cls(self)
        for sock in self.sockets:
            sock.protocol = self.protocol

        self.cores: List[Core] = [
            Core(
                core_id,
                self.sockets[config.socket_of_core(core_id)],
                clock_ghz=config.processor.clock_ghz,
                store_buffer_entries=config.processor.store_buffer_entries,
                tlb_entries=config.processor.tlb_entries,
                thread_id=core_id,
            )
            for core_id in range(config.total_cores)
        ]

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def num_sockets(self) -> int:
        return self.config.num_sockets

    @property
    def num_cores(self) -> int:
        return self.config.total_cores

    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def socket_of_core(self, core_id: int) -> Socket:
        return self.sockets[self.config.socket_of_core(core_id)]

    def inter_socket_bytes(self) -> int:
        """Total bytes injected into the inter-socket interconnect."""
        return self.interconnect.bytes_sent

    # ------------------------------------------------------------------
    # Measurement control
    # ------------------------------------------------------------------

    def reset_measurement(self) -> None:
        """Discard statistics collected so far (end of a warm-up phase).

        Cache, directory and DRAM-cache *contents* are preserved -- only the
        counters restart -- which is exactly what the paper's warm-up phase
        accomplishes.
        """
        self.stats = SimulationStats()
        self.interconnect.reset_counters()

    # ------------------------------------------------------------------
    # Consistency checking (used by tests and the verification harness)
    # ------------------------------------------------------------------

    def check_invariants(self) -> List[str]:
        """Return a list of invariant violations (empty when consistent).

        Checks the socket-granularity Single-Writer/Multiple-Reader property,
        the clean-DRAM-cache property for clean designs, and directory
        Modified-state consistency.
        """
        violations: List[str] = []

        # SWMR at socket granularity: at most one socket holds a block Modified.
        modified_holders: Dict[int, List[int]] = {}
        for sock in self.sockets:
            for block in sock.llc.resident_blocks():
                line = sock.llc.peek(block)
                if line is not None and line.state.value == "M":
                    modified_holders.setdefault(block, []).append(sock.socket_id)
        for block, holders in modified_holders.items():
            if len(holders) > 1:
                violations.append(
                    f"block {block:#x} Modified in multiple sockets: {holders}"
                )
            other_sharers = [
                sock.socket_id
                for sock in self.sockets
                if sock.socket_id not in holders and sock.llc.contains(block)
            ]
            if other_sharers:
                violations.append(
                    f"block {block:#x} Modified in socket {holders} but also "
                    f"present in {other_sharers}"
                )

        # Clean DRAM caches never hold dirty lines.
        if self.protocol.clean_dram_cache:
            for sock in self.sockets:
                if sock.dram_cache is None:
                    continue
                for block in sock.dram_cache.resident_blocks():
                    line = sock.dram_cache.peek(block)
                    if line is not None and line.dirty:
                        violations.append(
                            f"dirty line {block:#x} in clean DRAM cache of socket "
                            f"{sock.socket_id}"
                        )

        # Directory Modified entries must point at a socket that actually holds
        # the block: on chip for the clean/no-DRAM-cache designs, on chip or in
        # the DRAM cache for the dirty-DRAM-cache designs (full-dir).
        for directory in self.directories:
            for entry in directory.entries():
                if entry.state.value == "M":
                    owner = entry.owner
                    has_copy = False
                    if owner is not None:
                        owner_socket = self.sockets[owner]
                        has_copy = owner_socket.llc.contains(entry.block)
                        if not has_copy and not self.protocol.clean_dram_cache:
                            has_copy = (
                                owner_socket.dram_cache is not None
                                and owner_socket.dram_cache.contains(entry.block)
                            )
                    if not has_copy:
                        violations.append(
                            f"directory[{directory.home_socket}] says block "
                            f"{entry.block:#x} is Modified at socket {owner}, "
                            "which has no on-chip copy"
                        )
        return violations


def build_system(config: SystemConfig) -> NumaSystem:
    """Convenience constructor mirroring the public API used in the examples."""
    return NumaSystem(config)
