"""Trace-driven simulation driver.

The driver owns the interleaving of the per-core access streams: it always
advances the core with the smallest local clock, so memory-system resources
(channels, links, caches, directories) observe the accesses in approximate
global time order, which is what makes the busy-until bandwidth accounting
and the coherence interactions meaningful.

A simulation optionally starts with a warm-up phase (the paper warms the
DRAM caches with 100 M accesses before measuring); at the end of warm-up the
statistics are reset while all cache/directory contents are preserved.
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from ..stats.counters import SimulationStats
from ..stats.sampling import (
    SampledSimulationStats,
    SamplingPlan,
    SamplingSummary,
    delta_counters,
    estimate_metrics,
    snapshot_counters,
)
from ..workloads.compiled import CompiledTrace, compile_trace
from ..workloads.trace import MemoryAccess
from .numa_system import NumaSystem

__all__ = ["Simulator", "SimulationResult", "ENGINES"]

#: Supported execution engines.  ``compiled`` materialises per-core traces
#: into flat arrays and runs the lean dispatch loop; ``object`` is the legacy
#: one-``MemoryAccess``-at-a-time generator path kept for equivalence
#: testing; ``sampled`` drives the compiled loop through a
#: :class:`~repro.stats.sampling.SamplingPlan` (fast-forward / warmup /
#: detail alternation with per-metric confidence intervals --
#: docs/sampling.md).
ENGINES = ("compiled", "object", "sampled")


@contextmanager
def _scratch_stats(system: NumaSystem):
    """Swap the system statistics for a throw-away object, then restore.

    Everything in the machine reaches the counters through ``system.stats``
    dynamically (sockets, cores and protocols all read the attribute per
    access), so a swap is a complete measurement blackout: warm-up windows
    advance every architectural and timing structure while the measured
    counters stay untouched.
    """
    real = system.stats
    system.stats = SimulationStats()
    try:
        yield
    finally:
        system.stats = real


@contextmanager
def _functional_timing(system: NumaSystem):
    """Stub the timing models out while leaving every state update intact.

    Inside this context the interconnect's ``send`` and each memory
    controller's ``read_fast``/``write_fast`` return zero latency and mutate
    no busy-until bandwidth state, so the coherence protocols can run their
    normal (state-exact) transaction logic during fast-forward without
    polluting channel/link occupancy for the detailed windows that follow.
    """

    def _zero_send(now, src, dst, message_class):
        return 0.0

    def _zero_memory(now, block):
        return 0.0

    interconnect = system.interconnect
    protocol = system.protocol
    saved_send = interconnect.send
    saved_protocol_send = protocol._net_send
    interconnect.send = _zero_send
    protocol._net_send = _zero_send
    saved_memory = []
    for sock in system.sockets:
        memory = sock.memory
        saved_memory.append((memory, memory.read_fast, memory.write_fast))
        memory.read_fast = _zero_memory
        memory.write_fast = _zero_memory
    try:
        yield
    finally:
        interconnect.send = saved_send
        protocol._net_send = saved_protocol_send
        for memory, read_fast, write_fast in saved_memory:
            memory.read_fast = read_fast
            memory.write_fast = write_fast


@dataclass
class SimulationResult:
    """Everything an experiment needs from one simulation run."""

    stats: SimulationStats
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int

    @property
    def amat_ns(self) -> float:
        return self.stats.amat_ns()


class Simulator:
    """Drives a :class:`~repro.system.numa_system.NumaSystem` with a workload."""

    def __init__(
        self,
        system: NumaSystem,
        workload,
        *,
        engine: str = "compiled",
        sample_plan: Optional[SamplingPlan] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if sample_plan is not None and engine != "sampled":
            raise ValueError(
                f"sample_plan requires engine='sampled', got engine={engine!r}"
            )
        self.system = system
        self.workload = workload
        self.engine = engine
        #: Plan for the ``sampled`` engine; ``None`` derives one from the
        #: measured-region length (:meth:`SamplingPlan.for_region`).
        self.sample_plan = sample_plan

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
        prewarm: bool = False,
    ) -> SimulationResult:
        """Run the workload to completion (or to the per-core access limits).

        ``warmup_accesses_per_core`` accesses per core are executed first with
        full architectural effect but without counting toward the reported
        statistics or the measured execution time.  ``prewarm`` additionally
        pre-loads the DRAM caches with the workload's shared data before the
        run starts (the affordable equivalent of the paper's 100 M-access
        warm-up phase; see :meth:`prewarm_dram_caches`).
        """
        self._prepare_first_touch()
        if prewarm:
            self.prewarm_dram_caches()
        if self.engine == "sampled":
            return self._run_sampled(
                max_accesses_per_core=max_accesses_per_core,
                warmup_accesses_per_core=warmup_accesses_per_core,
            )
        if self.engine == "compiled":
            traces = self._compile_streams()
            if not traces:
                return SimulationResult(self.system.stats, 0.0, 0, 0)
            cursors = {core_id: 0 for core_id in traces}
            if warmup_accesses_per_core > 0:
                self._run_phase_compiled(traces, cursors, warmup_accesses_per_core)
                self.system.reset_measurement()
            streams = traces
        else:
            streams = self._open_streams()
            if not streams:
                return SimulationResult(self.system.stats, 0.0, 0, 0)
            if warmup_accesses_per_core > 0:
                self._run_phase(streams, warmup_accesses_per_core)
                self.system.reset_measurement()
        warmup_offsets = {core_id: self.system.cores[core_id].time for core_id in streams}

        if self.engine == "compiled":
            executed = self._run_phase_compiled(traces, cursors, max_accesses_per_core)
        else:
            executed = self._run_phase(streams, max_accesses_per_core)

        stats = self.system.stats
        for core_id in streams:
            core = self.system.cores[core_id]
            stats.core_finish_ns[core_id] = core.time - warmup_offsets[core_id]
        return SimulationResult(
            stats=stats,
            total_time_ns=stats.total_time_ns(),
            inter_socket_bytes=self.system.inter_socket_bytes(),
            accesses_executed=executed,
        )

    # ------------------------------------------------------------------
    # Warm-up helpers
    # ------------------------------------------------------------------

    def prewarm_dram_caches(self, *, fill_fraction: float = 1.0) -> int:
        """Functionally pre-load the DRAM caches with the workload's shared data.

        The paper warms its DRAM caches with 100 million accesses before
        measuring; replaying that many accesses is not affordable here, so
        the equivalent steady-state content is installed directly: each
        socket's DRAM cache is filled with blocks of the shared regions (cold
        first, then warm, then hot, so that the hottest data wins
        direct-mapped conflicts), up to ``fill_fraction`` of its capacity.
        For directory designs that track DRAM-cache residency (full-dir and
        c3d-full-dir) the pre-loaded blocks are also registered as sharers so
        the directory stays a superset of reality.

        Returns the largest number of blocks inserted into any single cache.
        """
        system = self.system
        if not system.protocol.uses_dram_cache:
            return 0
        regions_fn = getattr(self.workload, "memory_regions", None)
        if regions_fn is None:
            return 0
        layout = system.layout
        shared_regions = [r for r in regions_fn() if r.get("owner_thread") is None]
        # Least important first so the hottest regions win conflicts.
        order = {"cold": 0, "warm": 1, "hot": 2}
        shared_regions.sort(key=lambda r: order.get(r["kind"], 0))
        track_in_directory = system.protocol.tracks_dram_cache_in_directory

        max_inserted = 0
        for sock in system.sockets:
            if sock.dram_cache is None:
                continue
            capacity_blocks = max(1, int(sock.dram_cache.num_sets * fill_fraction))
            inserted = 0
            for region in shared_regions:
                base_block = layout.block_of(region["base"])
                num_blocks = max(1, region["size"] // layout.block_size)
                block_range = range(base_block, base_block + min(num_blocks, capacity_blocks))
                if track_in_directory:
                    for block in block_range:
                        sock.dram_cache.insert(block, dirty=False)
                        inserted += 1
                        home = system.mapper.home_of_block(block)
                        system.directories[home].add_sharer(block, sock.socket_id)
                else:
                    inserted += sock.dram_cache.bulk_insert_clean(block_range)
            max_inserted = max(max_inserted, inserted)
        return max_inserted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _prepare_first_touch(self) -> None:
        """Model the first-touch policies' page placement.

        * **FT1**: the pages touched by the (single-threaded) initialisation
          phase are all homed at socket 0 before the parallel region starts
          (this is why the paper found FT1 to perform poorly).
        * **FT2 / first_touch**: placement reflects steady state -- the
          measured window starts long after the data set was allocated, so
          private pages are homed at their owning thread's socket and shared
          pages are spread (pseudo-uniformly, by page number) across the
          sockets.  Pages not described by the workload's
          :meth:`memory_regions` hint still follow plain dynamic first touch.

        The interleave policy ignores both hints.
        """
        policy_name = self.system.config.allocation_policy.lower()
        pin = getattr(self.system.policy, "pin_page", None)
        if pin is None:
            return

        if policy_name == "ft1":
            pages = getattr(self.workload, "serial_init_pages", None)
            if pages is None:
                return
            for page in pages():
                pin(page, 0)
            return

        if policy_name in ("ft2", "first_touch", "first-touch"):
            regions = getattr(self.workload, "memory_regions", None)
            if regions is None:
                return
            layout = self.system.layout
            config = self.system.config
            num_sockets = config.num_sockets
            for region in regions():
                first_page = layout.page_of(region["base"])
                num_pages = max(1, region["size"] // layout.page_size)
                owner_thread = region.get("owner_thread")
                if owner_thread is not None:
                    core = owner_thread % config.total_cores
                    home = config.socket_of_core(core)
                    for page in range(first_page, first_page + num_pages):
                        pin(page, home)
                else:
                    for page in range(first_page, first_page + num_pages):
                        pin(page, page % num_sockets)

    def _open_streams(self) -> Dict[int, Iterator[MemoryAccess]]:
        """Create one access iterator per active core."""
        num_threads = min(self.workload.num_threads, self.system.num_cores)
        return {
            thread_id: iter(self.workload.stream(thread_id))
            for thread_id in range(num_threads)
        }

    def _compile_streams(self) -> Dict[int, CompiledTrace]:
        """Materialise one compiled trace per active core."""
        num_threads = min(self.workload.num_threads, self.system.num_cores)
        layout = self.system.layout
        return {
            thread_id: compile_trace(self.workload, thread_id, layout=layout)
            for thread_id in range(num_threads)
        }

    def _run_phase_compiled(
        self,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every compiled trace until exhaustion or ``limit_per_core``.

        Executes the same access interleaving as :meth:`_run_phase` (smallest
        ``(core time, core id)`` first) with the per-access Python overhead
        stripped out: no generator resumption, no ``MemoryAccess`` allocation,
        no address arithmetic (block/page are precomputed), a single
        ``heappushpop`` per access instead of a push/pop pair -- and no heap
        at all when at most two cores are active (a direct two-stream merge).
        """
        system = self.system
        classifier = system.page_classifier
        record_access = classifier.record_access if classifier is not None else None
        mapper = system.mapper
        home_of_page = mapper.policy.home_of_page
        touched_pages = mapper._touched_pages
        config = system.config
        cores = system.cores

        # Per-core state tuples indexed by core id:
        # (blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id)
        states = {}
        ends = {}
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit_per_core is None else min(
                trace.length, start + limit_per_core
            )
            ends[core_id] = end
            if start >= end:
                continue
            core = cores[core_id]
            states[core_id] = (
                trace.blocks,
                trace.pages,
                trace.addrs,
                trace.writes,
                trace.gaps,
                core.execute_fast,
                config.socket_of_core(core_id),
                core.thread_id,
            )
        if not states:
            return 0

        executed = 0

        def run_one(core_id: int) -> float:
            """Execute one access of ``core_id``; returns the core's new time."""
            blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id = states[
                core_id
            ]
            i = cursors[core_id]
            page = pages[i]
            # Inlined AddressMapper.touch_page.
            home = home_of_page(page, socket_id)
            if page not in touched_pages:
                touched_pages[page] = home
            if record_access is not None:
                record_access(thread_id, addrs[i])
            new_time = execute_fast(blocks[i], page, writes[i], gaps[i])
            cursors[core_id] = i + 1
            return new_time

        if len(states) <= 2:
            # Two-stream merge: compare the two head entries directly.
            entries = sorted((cores[cid].time, cid) for cid in states)
            if len(entries) == 1:
                (_t, cid), = entries
                end = ends[cid]
                while cursors[cid] < end:
                    run_one(cid)
                    executed += 1
                return executed
            a, b = entries
            while True:
                if a <= b:
                    current, other = a, b
                else:
                    current, other = b, a
                cid = current[1]
                new_time = run_one(cid)
                executed += 1
                if cursors[cid] >= ends[cid]:
                    # Drain the remaining stream alone.
                    cid = other[1]
                    end = ends[cid]
                    while cursors[cid] < end:
                        run_one(cid)
                        executed += 1
                    return executed
                a, b = (new_time, cid), other

        heap = [(cores[cid].time, cid) for cid in states]
        heapq.heapify(heap)
        heappop = heapq.heappop
        heappushpop = heapq.heappushpop

        current = heappop(heap)
        while True:
            cid = current[1]
            # Inlined run_one (this loop executes once per simulated access).
            blocks, pages, addrs, writes, gaps, execute_fast, socket_id, thread_id = states[
                cid
            ]
            i = cursors[cid]
            page = pages[i]
            # Inlined AddressMapper.touch_page.
            home = home_of_page(page, socket_id)
            if page not in touched_pages:
                touched_pages[page] = home
            if record_access is not None:
                record_access(thread_id, addrs[i])
            new_time = execute_fast(blocks[i], page, writes[i], gaps[i])
            i += 1
            cursors[cid] = i
            executed += 1
            if i < ends[cid]:
                current = heappushpop(heap, (new_time, cid))
            elif heap:
                current = heappop(heap)
            else:
                return executed

    # ------------------------------------------------------------------
    # Sampled execution (docs/sampling.md)
    # ------------------------------------------------------------------

    def _run_sampled(
        self,
        *,
        max_accesses_per_core: Optional[int],
        warmup_accesses_per_core: int,
    ) -> SimulationResult:
        """Drive the compiled loop through the sampling plan.

        The run-level warm-up (``warmup_accesses_per_core``) executes in full
        detail with blacked-out statistics, exactly like the exact engines.
        The measured region is then covered by the plan's units: functional
        fast-forward (state advances, no timing), detailed-but-unmeasured
        warm-up, and measured detail windows whose per-window counter deltas
        become the observations behind the per-metric confidence intervals.

        ``accesses_executed`` counts every access the measured region
        *covered* (fast-forwarded, warm-up and detail alike) so that
        accesses/second is directly comparable with an exact run over the
        same trace.
        """
        system = self.system
        traces = self._compile_streams()
        plan = self.sample_plan
        if not traces:
            stats = SampledSimulationStats(
                SamplingSummary(plan=plan or SamplingPlan())
            )
            system.stats = stats
            return SimulationResult(stats, 0.0, 0, 0)
        cursors = {core_id: 0 for core_id in traces}
        if warmup_accesses_per_core > 0:
            with _scratch_stats(system):
                self._run_phase_compiled(traces, cursors, warmup_accesses_per_core)

        # The sampled analogue of reset_measurement(): fresh (sampled)
        # counters, preserved cache/directory/timing state.
        stats = SampledSimulationStats()
        system.stats = stats
        interconnect = system.interconnect
        interconnect.reset_counters()

        region = max(traces[cid].length - cursors[cid] for cid in traces)
        if max_accesses_per_core is not None:
            region = min(region, max_accesses_per_core)
        if plan is None:
            plan = SamplingPlan.for_region(region)
        units = plan.units(region)

        cores = system.cores
        executed = 0
        detail_total = 0
        inter_socket_bytes = 0
        detail_elapsed = {core_id: 0.0 for core_id in traces}
        samples = []
        for unit in units:
            if unit.fastforward:
                with _scratch_stats(system), _functional_timing(system):
                    executed += self._run_phase_functional(
                        traces, cursors, unit.fastforward
                    )
            if unit.warmup:
                with _scratch_stats(system):
                    executed += self._run_phase_compiled(traces, cursors, unit.warmup)
            if unit.detail:
                before = snapshot_counters(stats)
                bytes_before = interconnect.bytes_sent
                starts = {core_id: cores[core_id].time for core_id in traces}
                detail_executed = self._run_phase_compiled(
                    traces, cursors, unit.detail
                )
                if not detail_executed:
                    continue  # every trace exhausted before this window
                executed += detail_executed
                detail_total += detail_executed
                samples.append(delta_counters(before, snapshot_counters(stats)))
                inter_socket_bytes += interconnect.bytes_sent - bytes_before
                for core_id in traces:
                    detail_elapsed[core_id] += cores[core_id].time - starts[core_id]

        for core_id, elapsed in detail_elapsed.items():
            stats.core_finish_ns[core_id] = elapsed
        summary = SamplingSummary(
            plan=plan,
            detail_accesses=detail_total,
            covered_accesses=executed,
        )
        if len(samples) >= 2:
            summary.metrics = estimate_metrics(
                samples, confidence=plan.confidence, bias_floor=plan.bias_floor
            )
        stats.sampling = summary
        return SimulationResult(
            stats=stats,
            total_time_ns=stats.total_time_ns(),
            inter_socket_bytes=inter_socket_bytes,
            accesses_executed=executed,
        )

    #: Accesses each core advances per turn of the functional round-robin.
    #: Coarser than the timed engines' per-access interleave, which is fine:
    #: fast-forward is approximate by design (no timing), and the chunking
    #: amortises the scheduling overhead the phase exists to avoid.
    _FUNCTIONAL_CHUNK = 32

    def _run_phase_functional(
        self,
        traces: Dict[int, CompiledTrace],
        cursors: Dict[int, int],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every compiled trace functionally: state, no timing.

        First-touch page placement and the broadcast-filter classifier see
        every access (they are order-dependent and must not skip), the L1 hit
        path is an inlined recency update, and everything below the L1 goes
        through :meth:`Socket.access_functional` -- the state-exact mirror of
        the demand path.  Callers wrap this phase in ``_scratch_stats`` and
        ``_functional_timing`` so neither statistics nor busy-until state
        advance.
        """
        system = self.system
        classifier = system.page_classifier
        record_access = classifier.record_access if classifier is not None else None
        mapper = system.mapper
        home_of_page = mapper.policy.home_of_page
        touched_pages = mapper._touched_pages
        config = system.config

        states = []
        for core_id, trace in traces.items():
            start = cursors[core_id]
            end = trace.length if limit_per_core is None else min(
                trace.length, start + limit_per_core
            )
            if start >= end:
                continue
            core = system.cores[core_id]
            socket = system.sockets[config.socket_of_core(core_id)]
            l1 = socket.l1s[core.local_index]
            states.append((
                core_id,
                trace.blocks,
                trace.pages,
                trace.addrs,
                trace.writes,
                end,
                core.local_index,
                core.thread_id,
                socket.access_functional,
                l1._sets if getattr(l1, "_touch_moves", False) else None,
                l1.num_sets,
                socket.socket_id,
            ))

        executed = 0
        chunk = self._FUNCTIONAL_CHUNK
        active = states
        while active:
            next_active = []
            for state in active:
                (core_id, blocks, pages, addrs, writes, end,
                 local_index, thread_id, access_functional, l1_sets,
                 num_sets, socket_id) = state
                i = cursors[core_id]
                stop = min(end, i + chunk)
                executed += stop - i
                while i < stop:
                    page = pages[i]
                    # Inlined AddressMapper.touch_page (order-dependent).
                    home = home_of_page(page, socket_id)
                    if page not in touched_pages:
                        touched_pages[page] = home
                    if record_access is not None:
                        record_access(thread_id, addrs[i])
                    block = blocks[i]
                    if writes[i]:
                        # Writes (and every L1 miss below) take the full
                        # functional path, which keeps dirty bits and
                        # coherence state exactly as the demand path would.
                        access_functional(local_index, block, True, thread_id)
                    elif l1_sets is not None:
                        # Inlined intrusive-LRU L1 read-hit path (recency
                        # only; the cache's own hit counters are skipped).
                        cache_set = l1_sets.get(block % num_sets)
                        line = cache_set.get(block) if cache_set is not None else None
                        if line is not None:
                            del cache_set[block]
                            cache_set[block] = line
                        else:
                            access_functional(local_index, block, False, thread_id)
                    else:
                        access_functional(local_index, block, False, thread_id)
                    i += 1
                cursors[core_id] = i
                if i < end:
                    next_active.append(state)
            active = next_active
        return executed

    def _run_phase(
        self,
        streams: Dict[int, Iterator[MemoryAccess]],
        limit_per_core: Optional[int],
    ) -> int:
        """Advance every stream until exhaustion or ``limit_per_core`` accesses."""
        system = self.system
        classifier = system.page_classifier
        mapper = system.mapper
        config = system.config

        heap = [(system.cores[core_id].time, core_id) for core_id in streams]
        heapq.heapify(heap)
        counts = {core_id: 0 for core_id in streams}
        executed = 0

        while heap:
            _time, core_id = heapq.heappop(heap)
            if limit_per_core is not None and counts[core_id] >= limit_per_core:
                continue
            try:
                access = next(streams[core_id])
            except StopIteration:
                continue

            core = system.cores[core_id]
            socket_id = config.socket_of_core(core_id)
            # NUMA placement (first touch) and page classification are driven
            # by the raw access stream, before the caches see the access.
            mapper.touch(access.addr, socket_id)
            if classifier is not None:
                classifier.record_access(core.thread_id, access.addr)

            core.execute(access)
            counts[core_id] += 1
            executed += 1
            if limit_per_core is None or counts[core_id] < limit_per_core:
                heapq.heappush(heap, (core.time, core_id))
        return executed
