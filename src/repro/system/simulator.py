"""Trace-driven simulation driver: orchestration over pluggable engines.

The :class:`Simulator` owns one run's lifecycle -- resolve the requested
execution engine through the :mod:`repro.engines` registry, apply the
first-touch page-placement hints and the optional DRAM-cache pre-warm, hand
an :class:`~repro.engines.EngineContext` to the engine, and return its
:class:`~repro.engines.SimulationResult`.  How the access streams actually
drive the machine (object-at-a-time, compiled arrays, statistical sampling)
is entirely the engine's business; see :mod:`repro.engines` and
docs/architecture.md ("Execution engines").

A simulation optionally starts with a warm-up phase (the paper warms the
DRAM caches with 100 M accesses before measuring); at the end of warm-up the
statistics are reset while all cache/directory contents are preserved.
"""

from __future__ import annotations

from typing import Optional

from .. import engines
from ..engines import EngineContext, SimulationResult
from ..stats.sampling import SamplingPlan

__all__ = ["Simulator", "SimulationResult", "ENGINES"]


def __getattr__(name: str):
    # ``ENGINES`` predates the registry; keep it importable (and live) for
    # backward compatibility.  New code should call ``engines.names()``.
    if name == "ENGINES":
        return engines.names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


class Simulator:
    """Drives a :class:`~repro.system.numa_system.NumaSystem` with a workload."""

    def __init__(
        self,
        system,
        workload,
        *,
        engine: str = "compiled",
        sample_plan: Optional[SamplingPlan] = None,
        engine_options: Optional[dict] = None,
    ) -> None:
        #: Resolved engine instance (registry authority -- unknown names
        #: raise a ``ValueError`` listing the registered engines).
        self.engine_impl = engines.get(engine)()
        if sample_plan is not None and not self.engine_impl.supports_sampling:
            raise ValueError(
                f"sample_plan requires an engine with sampling support "
                f"(e.g. 'sampled'), got engine={engine!r}"
            )
        self.system = system
        self.workload = workload
        self.engine = engine
        #: Plan for sampling engines; ``None`` derives one from the measured
        #: region length (:meth:`SamplingPlan.for_region`).
        self.sample_plan = sample_plan
        #: Execution knobs forwarded to the engine (e.g. ``{"jobs": 4}`` for
        #: ``sampled-par``).  Options shape *how* a run executes, never its
        #: statistics, so they stay out of results-store keys.
        self.engine_options = dict(engine_options or {})

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(
        self,
        *,
        max_accesses_per_core: Optional[int] = None,
        warmup_accesses_per_core: int = 0,
        prewarm: bool = False,
    ) -> SimulationResult:
        """Run the workload to completion (or to the per-core access limits).

        ``warmup_accesses_per_core`` accesses per core are executed first with
        full architectural effect but without counting toward the reported
        statistics or the measured execution time.  ``prewarm`` additionally
        pre-loads the DRAM caches with the workload's shared data before the
        run starts (the affordable equivalent of the paper's 100 M-access
        warm-up phase; see :meth:`prewarm_dram_caches`).
        """
        context = self._context()
        context.prepare_first_touch()
        if prewarm:
            context.prewarm_dram_caches()
        return self.engine_impl.run(
            context,
            max_accesses_per_core=max_accesses_per_core,
            warmup_accesses_per_core=warmup_accesses_per_core,
        )

    def prewarm_dram_caches(self, *, fill_fraction: float = 1.0) -> int:
        """Pre-load the DRAM caches (see :meth:`EngineContext.prewarm_dram_caches`)."""
        return self._context().prewarm_dram_caches(fill_fraction=fill_fraction)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _context(self) -> EngineContext:
        return EngineContext(
            self.system,
            self.workload,
            sample_plan=self.sample_plan,
            engine_options=self.engine_options,
        )
