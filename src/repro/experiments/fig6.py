"""Fig. 6: 4-socket (8 cores/socket) performance comparison.

Speedup of the four coherent-DRAM-cache designs (snoopy, full-dir, c3d,
c3d-full-dir) over the no-DRAM-cache baseline, per workload, on the
quad-socket machine with 1 GB of DRAM cache per socket.

Paper shape to reproduce: C3D improves every workload (6.4-50.7 %, 19.2 % on
average, with streamcluster the big winner); snoopy slows most workloads
down; full-dir hurts the communication-heavy PARSEC workloads but helps the
server workloads; c3d-full-dir is only marginally better than c3d
(broadcasts are cheap).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.report import format_series, geometric_mean
from .common import DRAM_CACHE_DESIGNS, ExperimentContext, ExperimentSettings, speedup

__all__ = ["PAPER_C3D_SPEEDUP_RANGE", "run_fig6", "format_fig6", "main"]

#: The paper's headline C3D speedup range / average for the 4-socket machine.
PAPER_C3D_SPEEDUP_RANGE = (1.064, 1.507)
PAPER_C3D_SPEEDUP_AVG = 1.192


def run_fig6(
    context: Optional[ExperimentContext] = None,
    *,
    designs=DRAM_CACHE_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Measure per-workload speedups over the baseline for each design."""
    context = context or ExperimentContext(ExperimentSettings())
    series: Dict[str, Dict[str, float]] = {}
    for workload in context.workloads():
        baseline = context.run(workload, "baseline")
        series[workload] = {
            design: speedup(baseline, context.run(workload, design)) for design in designs
        }
    series["geomean"] = {
        design: geometric_mean(
            row[design] for name, row in series.items() if name != "geomean"
        )
        for design in designs
    }
    return series


def format_fig6(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 6: 4-socket speedup over the no-DRAM-cache baseline"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig6(context)
    print(format_fig6(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
