"""Experiment harness: one module per reproduced table / figure.

==================  ==========================================================
module              paper content
==================  ==========================================================
``table1``          Table I   -- remote-memory access fractions
``fig2``            Fig. 2    -- NUMA bottleneck analysis (idealisations)
``fig3``            Fig. 3    -- memory accesses vs. cache capacity
``fig6``            Fig. 6    -- 4-socket speedups
``fig7``            Fig. 7    -- 2-socket speedups
``fig8``            Fig. 8    -- C3D memory traffic
``fig9``            Fig. 9    -- inter-socket traffic
``fig10``           Fig. 10   -- DRAM-cache latency sensitivity
``fig11``           Fig. 11   -- inter-socket latency sensitivity
``broadcast_filter``  section VI-C -- TLB broadcast filtering
``directory_cost``  section III-B -- directory storage arithmetic
``runner``          run everything and print a consolidated report
``campaign``        declarative, resumable sweep campaigns (JSON specs)
``report``          render stored results to Markdown/CSV (no simulation)
==================  ==========================================================

``campaign`` and ``report`` work through the persistent results store
(:mod:`repro.stats.store`); see docs/campaigns.md for the workflow.
"""

from .common import (
    DESIGNS,
    DRAM_CACHE_DESIGNS,
    ExperimentContext,
    ExperimentSettings,
    RunRecord,
    speedup,
)

__all__ = [
    "ExperimentSettings",
    "ExperimentContext",
    "RunRecord",
    "DESIGNS",
    "DRAM_CACHE_DESIGNS",
    "speedup",
]


def __getattr__(name):
    # Deprecated aliases of the repro.api facade verbs, kept one release
    # so `from repro.experiments import run_campaign` keeps working.
    if name in ("run_campaign", "campaign_status"):
        import warnings

        warnings.warn(
            f"importing {name!r} from repro.experiments is deprecated; "
            f"use repro.api (docs/architecture.md)",
            DeprecationWarning,
            stacklevel=2,
        )
        from . import campaign

        return getattr(campaign, name)
    raise AttributeError(f"module 'repro.experiments' has no attribute {name!r}")
