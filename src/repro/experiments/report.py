"""``repro report``: render stored experiment results without re-simulating.

Once a results store has been populated -- by ``repro campaign run``, by
``python -m repro.experiments.runner --store DIR`` or incidentally by
``repro bench --store DIR`` -- this module replays every figure module
through an *offline* :class:`~repro.experiments.common.ExperimentContext`
(pure store lookups, zero simulation) and writes, per experiment:

* ``<name>.md``  -- the table as GitHub-flavoured Markdown,
* ``<name>.csv`` -- the same values machine-readable,
* ``<name>.txt`` -- the fixed-width text table previously only printed
  to stdout,

plus an ``index.md`` summarising completeness.  A figure whose runs are not
all in the store is reported as *incomplete* (with the first missing run
named) instead of silently re-simulating; ``repro campaign status`` tells
you the same thing without writing files.

Usage::

    python -m repro report --store results/demo
    python -m repro report --store results/demo --out tables --quick
    python -m repro report --campaign examples/campaigns/quick.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..stats.export import export_series_csv, export_table_csv
from ..stats.report import format_markdown_table, series_to_markdown
from ..stats.store import MissingRunError, ResultsStore
from .common import ExperimentContext, ExperimentSettings
from . import runner as runner_module

__all__ = ["ReportEntry", "generate_report", "main"]

PathLike = Union[str, Path]


@dataclass
class ReportEntry:
    """Outcome of rendering one experiment from the store."""

    name: str
    complete: bool
    result: Optional[object] = None
    text: str = ""
    markdown: str = ""
    missing: Optional[str] = None      #: first missing run (incomplete only)
    files: List[Path] = field(default_factory=list)


def _result_to_markdown(name: str, result: object) -> Optional[str]:
    """Markdown rendering for the two result shapes the experiments return."""
    if isinstance(result, Mapping) and result:
        first = next(iter(result.values()))
        if isinstance(first, Mapping):
            return f"## {name}\n\n" + series_to_markdown(result)
        return f"## {name}\n\n" + format_markdown_table(
            ["name", "value"], list(result.items())
        )
    return None


def _export_csv(name: str, result: object, out_dir: Path) -> Optional[Path]:
    """CSV rendering next to the Markdown (series or flat-table shaped)."""
    if isinstance(result, Mapping) and result:
        first = next(iter(result.values()))
        if isinstance(first, Mapping):
            return export_series_csv(result, out_dir / f"{name}.csv")
        return export_table_csv(result, out_dir / f"{name}.csv")
    return None


def _sampled_points_markdown(store: ResultsStore) -> Optional[str]:
    """Render every stored *sampled* run as a mean +/- CI table.

    Sampled records carry a :class:`~repro.stats.sampling.SamplingSummary`
    on their statistics; each becomes one row with ``mean ± half-width``
    cells per metric (the textual form of an error bar).  Returns ``None``
    when the store holds no sampled runs.
    """
    rows = []
    metric_names: List[str] = []
    # iter_records streams shard by shard without caching indexes: the
    # report stays a thin client even over stores far larger than memory.
    for record in store.iter_records():
        summary = getattr(record.stats, "sampling", None)
        if summary is None or not summary.metrics:
            continue
        params = record.params
        source = (
            params.get("scenario")
            or params.get("trace_dir")
            or params.get("workload")
            or record.key[:12]
        )
        protocol = params.get("protocol", "?")
        # Fully qualify the row so runs differing only in machine shape,
        # scale or plan stay distinguishable.
        parts = [f"{source}/{protocol}"]
        if params.get("scale") is not None:
            parts.append(f"s{params['scale']}")
        if params.get("num_sockets") is not None:
            parts.append(
                f"{params['num_sockets']}x{params.get('cores_per_socket', '?')}"
            )
        plan = params.get("sample_plan")
        if isinstance(plan, Mapping):
            parts.append(
                f"u{plan.get('num_units')}/d{plan.get('detail')}"
                f"/w{plan.get('warmup')}"
            )
        for name in summary.metrics:
            if name not in metric_names:
                metric_names.append(name)
        rows.append((" ".join(parts), summary))
    if not rows:
        return None
    header = ["point", "units", "confidence"] + metric_names
    lines = [
        "## sampled points",
        "",
        "Per-metric mean ± confidence half-width over the detail windows of "
        "each sampled run (docs/sampling.md).",
        "",
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for label, summary in sorted(rows, key=lambda row: row[0]):
        cells = [label, str(summary.plan.num_units), f"{summary.plan.confidence:.0%}"]
        for name in metric_names:
            estimate = summary.metrics.get(name)
            cells.append(
                f"{estimate.mean:.4g} ± {estimate.half_width:.2g}"
                if estimate is not None else "—"
            )
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _point_label(params: Mapping, key: str) -> str:
    """Short human label of a stored point (mirrors the sampled table)."""
    source = (
        params.get("scenario")
        or params.get("trace_dir")
        or params.get("workload")
        or key[:12]
    )
    parts = [f"{source}/{params.get('protocol', '?')}"]
    if params.get("scale") is not None:
        parts.append(f"s{params['scale']}")
    if params.get("num_sockets") is not None:
        parts.append(f"{params['num_sockets']}x{params.get('cores_per_socket', '?')}")
    return " ".join(parts)


def _reliability_markdown(store: ResultsStore) -> Optional[str]:
    """Render the store's retried/degraded/quarantined points as a table.

    Stored records stamp ``attempts`` and ``engine_used`` when a point
    needed retries or ran on a fallback engine (docs/robustness.md); the
    store's ``failures.jsonl`` sidecar holds the points that exhausted their
    attempts.  Returns ``None`` when every point completed first-try on its
    requested engine and nothing is quarantined -- the common case, which
    keeps fault-free reports byte-stable.
    """
    lines = [
        "## reliability",
        "",
        "Points that needed retries, ran degraded on a fallback engine, or "
        "were quarantined (docs/robustness.md).",
    ]
    degraded = []
    for record in store.iter_records():
        requested = record.params.get("engine")
        fell_back = record.engine_used is not None and record.engine_used != requested
        if record.attempts > 1 or fell_back:
            degraded.append((record, requested, fell_back))
    if degraded:
        lines += [
            "",
            "| point | attempts | engine requested | engine used |",
            "| --- | --- | --- | --- |",
        ]
        for record, requested, fell_back in sorted(
            degraded, key=lambda row: _point_label(row[0].params, row[0].key)
        ):
            used = record.engine_used if fell_back else (requested or "?")
            lines.append(
                f"| {_point_label(record.params, record.key)} "
                f"| {record.attempts} | {requested or '?'} | {used} |"
            )
    failures = store.failure_log.records()
    if failures:
        lines += [
            "",
            f"### quarantined points ({store.failures_path.name})",
            "",
            "| point | engine | attempts | error |",
            "| --- | --- | --- | --- |",
        ]
        for failure in failures:
            error = failure.error.replace("|", "\\|")
            lines.append(
                f"| {_point_label(failure.params, failure.key)} "
                f"| {failure.engine or '?'} | {failure.attempts} | {error} |"
            )
    if not degraded and not failures:
        return None
    return "\n".join(lines)


def generate_report(
    store: ResultsStore,
    settings: Optional[ExperimentSettings] = None,
    *,
    out_dir: Optional[PathLike] = None,
    names: Optional[Sequence[str]] = None,
    include_sensitivity: bool = True,
    workloads: Optional[Sequence[str]] = None,
    engine: str = "compiled",
    stream=sys.stdout,
) -> Dict[str, ReportEntry]:
    """Render every requested experiment from ``store`` (never simulates).

    ``names`` restricts the experiment set (default: the full runner
    registry, minus Fig. 10/11 when ``include_sensitivity`` is false);
    ``workloads`` restricts the per-figure workload list (tests use this).
    Returns one :class:`ReportEntry` per experiment; when ``out_dir`` is
    given the Markdown/CSV/text renderings are also written there, plus an
    ``index.md`` marking incomplete figures.
    """
    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings, store=store, offline=True, engine=engine)
    dual_context = ExperimentContext(
        settings.dual_socket(), store=store, offline=True, engine=engine
    )
    if workloads is not None:
        workload_list = list(workloads)
        context.workloads = lambda: list(workload_list)        # type: ignore[assignment]
        dual_context.workloads = lambda: list(workload_list)   # type: ignore[assignment]

    if names is None:
        names = runner_module._experiment_names(include_sensitivity)
    else:
        unknown = [n for n in names if n not in runner_module._EXPERIMENTS]
        if unknown:
            raise ValueError(
                f"unknown experiment(s) {unknown}; "
                f"expected a subset of {list(runner_module._EXPERIMENTS)}"
            )

    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)

    entries: Dict[str, ReportEntry] = {}
    for name in names:
        figure_runner, formatter, dual = runner_module._EXPERIMENTS[name]
        try:
            result = figure_runner(dual_context if dual else context)
        except MissingRunError as exc:
            entries[name] = ReportEntry(
                name=name, complete=False, missing=str(exc)
            )
            print(f"{name}: INCOMPLETE ({exc})", file=stream)
            continue
        entry = ReportEntry(
            name=name,
            complete=True,
            result=result,
            text=formatter(result),
            markdown=_result_to_markdown(name, result) or "",
        )
        if out_path is not None:
            if entry.markdown:
                md_file = out_path / f"{name}.md"
                md_file.write_text(entry.markdown + "\n", encoding="utf-8")
                entry.files.append(md_file)
            csv_file = _export_csv(name, result, out_path)
            if csv_file is not None:
                entry.files.append(csv_file)
            txt_file = out_path / f"{name}.txt"
            txt_file.write_text(entry.text + "\n", encoding="utf-8")
            entry.files.append(txt_file)
        entries[name] = entry
        print(f"{name}: ok", file=stream)

    sampled_markdown = _sampled_points_markdown(store)
    if sampled_markdown is not None:
        print("sampled points: ok", file=stream)
        if out_path is not None:
            (out_path / "sampled_points.md").write_text(
                sampled_markdown + "\n", encoding="utf-8"
            )

    reliability_markdown = _reliability_markdown(store)
    if reliability_markdown is not None:
        print("reliability: retried/degraded/quarantined points present",
              file=stream)
        if out_path is not None:
            (out_path / "reliability.md").write_text(
                reliability_markdown + "\n", encoding="utf-8"
            )

    if out_path is not None:
        index_lines = ["# Experiment report", ""]
        for name, entry in entries.items():
            if entry.complete:
                index_lines.append(f"- [{name}]({name}.md)" if entry.markdown
                                   else f"- {name} (text only: {name}.txt)")
            else:
                index_lines.append(f"- {name} — **incomplete**: {entry.missing}")
        if sampled_markdown is not None:
            index_lines.append("- [sampled points](sampled_points.md) "
                               "(mean ± CI per metric)")
        if reliability_markdown is not None:
            index_lines.append("- [reliability](reliability.md) "
                               "(retried / degraded / quarantined points)")
        (out_path / "index.md").write_text("\n".join(index_lines) + "\n",
                                           encoding="utf-8")
    return entries


# ----------------------------------------------------------------------
# CLI (`repro report`)
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from ..cli_common import store_options

    parser = argparse.ArgumentParser(
        prog="repro report",
        description="Render stored experiment results to Markdown/CSV tables "
                    "without re-simulating.",
        parents=[store_options(
            store_help="results-store directory (required unless "
                       "--campaign provides one)",
        )],
    )
    parser.add_argument("--campaign", default=None, metavar="SPEC",
                        help="take settings/engine/store from a campaign "
                             "JSON spec instead of the profile flags")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="output directory (default: <store>/report)")
    parser.add_argument("--quick", action="store_true",
                        help="the store was populated with --quick settings")
    parser.add_argument("--full", action="store_true",
                        help="the store was populated with --full settings")
    parser.add_argument("--no-sensitivity", action="store_true",
                        help="skip the Fig. 10/11 tables")
    parser.add_argument("--engine", default="compiled",
                        help="engine the store was populated with")
    parser.add_argument("--experiments", nargs="+", default=None,
                        metavar="NAME", help="restrict to these experiments")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    engine = args.engine
    if args.campaign is not None:
        from .campaign import CampaignError, CampaignSpec

        try:
            spec = CampaignSpec.from_file(args.campaign)
        except CampaignError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        settings = spec.settings
        engine = spec.engine
        store_dir = spec.store_directory(args.store)
        # A campaign that declares figures populated exactly those; default
        # the report to them instead of the full registry (whose other
        # figures would be reported incomplete by construction).
        if args.experiments is None and spec.figures:
            args.experiments = list(spec.figures)
    else:
        if args.store is None:
            print("error: --store DIR (or --campaign SPEC) is required",
                  file=sys.stderr)
            return 1
        if args.quick:
            settings = ExperimentSettings.quick()
        elif args.full:
            settings = ExperimentSettings.full()
        else:
            settings = ExperimentSettings()
        store_dir = Path(args.store)

    store = ResultsStore(store_dir)
    out_dir = Path(args.out) if args.out is not None else store.directory / "report"
    entries = generate_report(
        store,
        settings,
        out_dir=out_dir,
        names=args.experiments,
        include_sensitivity=not args.no_sensitivity,
        engine=engine,
    )
    complete = sum(1 for entry in entries.values() if entry.complete)
    if args.json:
        print(json.dumps({
            "out_dir": str(out_dir),
            "complete": complete,
            "total": len(entries),
            "experiments": {
                name: entry.complete for name, entry in entries.items()
            },
        }, sort_keys=True))
    else:
        print(f"report: {complete}/{len(entries)} experiments rendered to "
              f"{out_dir}")
    return 0 if complete == len(entries) else 1


if __name__ == "__main__":  # pragma: no cover - exercised via `repro report`
    sys.exit(main())
