"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module (one per table/figure) builds on the same pieces:

* :class:`ExperimentSettings` -- how hard to scale the machine and how long
  to run each simulation.  The paper simulates 0.5-1 billion instructions
  per core on 32-core machines, which a pure-Python simulator cannot replay;
  the default settings scale capacities and working sets by 512x and replay a
  few thousand accesses per core after pre-warming the DRAM caches
  (DESIGN.md section 5 explains why this preserves the normalised results).
* :class:`ExperimentContext` -- builds systems/workloads, runs simulations
  (on either execution engine) and memoises results at two levels: an
  in-process cache so that e.g. Fig. 8 and Fig. 9 reuse the runs performed
  for Fig. 6 within one invocation, and -- when constructed with a
  :class:`~repro.stats.store.ResultsStore` -- a persistent on-disk cache
  shared across processes and invocations (docs/campaigns.md).  With
  ``offline=True`` the context never simulates: a missing stored run raises
  :class:`~repro.stats.store.MissingRunError` instead, which is how
  ``repro report`` regenerates every figure without re-simulating.
* small helpers for speedups and normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from .. import engines
from ..stats.counters import SimulationStats
from ..stats.report import geometric_mean
from ..stats.store import (
    STORE_SCHEMA_VERSION,
    MissingRunError,
    ResultsStore,
    StoredRun,
    content_key,
)
from ..system.config import SystemConfig
from ..system.numa_system import NumaSystem
from ..system.simulator import SimulationResult, Simulator
from ..workloads.registry import EVALUATED_WORKLOADS, make_workload

__all__ = [
    "ExperimentSettings",
    "RunRecord",
    "ExperimentContext",
    "DESIGNS",
    "DRAM_CACHE_DESIGNS",
    "speedup",
    "geometric_mean",
]

#: The designs compared throughout the evaluation, in the paper's order.
DESIGNS: Tuple[str, ...] = ("baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir")
#: The DRAM-cache designs (everything but the baseline).
DRAM_CACHE_DESIGNS: Tuple[str, ...] = ("snoopy", "full-dir", "c3d", "c3d-full-dir")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment fidelity vs. runtime.

    ``scale`` divides every cache capacity *and* workload working set by the
    same factor (hit rates, and therefore normalised results, are preserved);
    the access counts are per core, with ``warmup_accesses_per_thread``
    excluded from measurement.  Settings objects are frozen and hashable:
    they are part of both the in-process memoisation key and the persistent
    results-store key, so two runs with equal settings are interchangeable.
    """

    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    num_sockets: int = 4
    cores_per_socket: int = 8
    prewarm: bool = True
    allocation_policy: str = "first_touch"
    seed: Optional[int] = None

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Fast settings for CI / pytest-benchmark runs (seconds per run)."""
        return cls(scale=1024, accesses_per_thread=1200, warmup_accesses_per_thread=400)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """Higher-fidelity settings used to produce EXPERIMENTS.md."""
        return cls(scale=512, accesses_per_thread=6000, warmup_accesses_per_thread=2000)

    def dual_socket(self) -> "ExperimentSettings":
        """The 2-socket, 16-core/socket variant of these settings (Fig. 7)."""
        return replace(self, num_sockets=2, cores_per_socket=16)

    @property
    def total_cores(self) -> int:
        """Total simulated cores (``num_sockets * cores_per_socket``)."""
        return self.num_sockets * self.cores_per_socket

    @property
    def trace_length(self) -> int:
        """Accesses generated per core (measured + warm-up)."""
        return self.accesses_per_thread + self.warmup_accesses_per_thread


@dataclass
class RunRecord:
    """One simulation run plus the derived quantities experiments report.

    Records come either from a fresh simulation or from the results store;
    the two are indistinguishable to the figure modules (statistics
    round-trip bit-identically).
    """

    workload: str
    protocol: str
    stats: SimulationStats
    result: SimulationResult
    config: SystemConfig

    @property
    def total_time_ns(self) -> float:
        """Simulated completion time of the slowest core (the makespan)."""
        return self.result.total_time_ns

    @property
    def inter_socket_bytes(self) -> int:
        """Bytes that crossed the inter-socket links during measurement."""
        return self.result.inter_socket_bytes

    @property
    def memory_accesses(self) -> int:
        """Main-memory accesses (reads + writes, local + remote)."""
        return self.stats.memory_accesses


def speedup(baseline: RunRecord, other: RunRecord) -> float:
    """Execution-time speedup of ``other`` relative to ``baseline``."""
    if other.total_time_ns == 0:
        return float("nan")
    return baseline.total_time_ns / other.total_time_ns


class ExperimentContext:
    """Builds, runs and memoises simulations for the experiment modules.

    Parameters
    ----------
    settings:
        Fidelity knobs shared by every run of this context.
    store:
        Optional :class:`~repro.stats.store.ResultsStore`.  When given, every
        run is first looked up by its content key (and persisted after
        simulating), so results are shared across worker processes and
        across invocations -- not just within this object's lifetime.
    offline:
        Never simulate; raise :class:`~repro.stats.store.MissingRunError`
        for any run not already in ``store``.  Requires ``store``.
    engine:
        Execution engine, validated against the :mod:`repro.engines`
        registry; part of the store key because engines are only *verified*
        bit-identical, not assumed.
    """

    def __init__(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        store: Optional[ResultsStore] = None,
        offline: bool = False,
        engine: str = "compiled",
    ) -> None:
        if offline and store is None:
            raise ValueError("offline=True requires a results store")
        engines.validate(engine)
        self.settings = settings or ExperimentSettings()
        self.store = store
        self.offline = offline
        self.engine = engine
        self._cache: Dict[Tuple, RunRecord] = {}

    # ------------------------------------------------------------------
    # Configuration / workload construction
    # ------------------------------------------------------------------

    def make_config(self, protocol: str, **overrides) -> SystemConfig:
        """Build the (scaled) machine configuration for one design."""
        settings = self.settings
        if settings.num_sockets == 2:
            config = SystemConfig.dual_socket(protocol=protocol)
        else:
            config = SystemConfig.quad_socket(protocol=protocol)
        config = replace(
            config,
            num_sockets=settings.num_sockets,
            cores_per_socket=settings.cores_per_socket,
            allocation_policy=settings.allocation_policy,
        )
        if overrides:
            config = replace(config, **overrides)
        return config.scaled(settings.scale)

    def make_workload(self, name: str):
        """Build the (scaled) workload generator for one benchmark."""
        settings = self.settings
        return make_workload(
            name,
            scale=settings.scale,
            accesses_per_thread=settings.trace_length,
            num_threads=settings.total_cores,
            seed=settings.seed,
        )

    # ------------------------------------------------------------------
    # Persistent-store keying
    # ------------------------------------------------------------------

    def store_payload(self, workload_name: str, protocol: str,
                      config: SystemConfig) -> Dict:
        """The outcome-determining payload hashed into a run's store key.

        Everything that can change the simulation's statistics is included:
        the complete machine configuration (capacities after scaling,
        idealisations, broadcast filter, ...), the workload build parameters,
        the measurement split, the engine and the store schema version.
        Changing any of these invalidates the cached point; see
        docs/campaigns.md for the field-by-field semantics.
        """
        settings = self.settings
        return {
            "kind": "context-run",
            "schema": STORE_SCHEMA_VERSION,
            "engine": self.engine,
            "workload": workload_name,
            "protocol": protocol,
            "config": config.as_dict(),
            "workload_params": {
                "scale": settings.scale,
                "accesses_per_thread": settings.trace_length,
                "num_threads": settings.total_cores,
                "seed": settings.seed,
            },
            "run_params": {
                "warmup_accesses_per_core": settings.warmup_accesses_per_thread,
                "prewarm": settings.prewarm,
            },
        }

    def _record_from_stored(self, workload_name: str, protocol: str,
                            config: SystemConfig, stored: StoredRun) -> RunRecord:
        """Materialise a :class:`RunRecord` from a persisted run."""
        result = SimulationResult(
            stats=stored.stats,
            total_time_ns=stored.total_time_ns,
            inter_socket_bytes=stored.inter_socket_bytes,
            accesses_executed=stored.accesses_executed,
        )
        return RunRecord(
            workload=workload_name, protocol=protocol,
            stats=stored.stats, result=result, config=config,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, workload_name: str, protocol: str, *, config: Optional[SystemConfig] = None,
            cache_key_extra: Tuple = ()) -> RunRecord:
        """Run one (workload, design) simulation, memoising the result.

        Lookup order: the in-process cache, then the results store (if any),
        then a fresh simulation (which is persisted to the store).  In-process
        memoisation of runs with an explicit ``config`` requires a
        distinguishing ``cache_key_extra`` (otherwise two different ad-hoc
        configurations could collide on the same key); the *store* key hashes
        the full configuration content, so it needs no such discriminator.
        """
        key = (workload_name, protocol, self.settings, cache_key_extra)
        memoisable = config is None or bool(cache_key_extra)
        if memoisable and key in self._cache:
            return self._cache[key]

        cfg = config if config is not None else self.make_config(protocol)

        store_key = None
        payload = None
        if self.store is not None:
            payload = self.store_payload(workload_name, protocol, cfg)
            store_key = content_key(payload)
            stored = self.store.get(store_key)
            if stored is not None:
                record = self._record_from_stored(workload_name, protocol, cfg, stored)
                if memoisable:
                    self._cache[key] = record
                return record
        if self.offline:
            raise MissingRunError(store_key or "", payload)

        system = NumaSystem(cfg)
        workload = self.make_workload(workload_name)
        simulator = Simulator(system, workload, engine=self.engine)
        result = simulator.run(
            warmup_accesses_per_core=self.settings.warmup_accesses_per_thread,
            prewarm=self.settings.prewarm,
        )
        record = RunRecord(
            workload=workload_name, protocol=protocol,
            stats=result.stats, result=result, config=cfg,
        )
        if self.store is not None:
            self.store.put(StoredRun(
                key=store_key,
                params=payload,
                stats=result.stats,
                total_time_ns=result.total_time_ns,
                inter_socket_bytes=result.inter_socket_bytes,
                accesses_executed=result.accesses_executed,
            ))
        if memoisable:
            self._cache[key] = record
        return record

    def run_designs(
        self,
        workload_name: str,
        designs: Iterable[str] = DESIGNS,
    ) -> Dict[str, RunRecord]:
        """Run one workload under several designs."""
        return {design: self.run(workload_name, design) for design in designs}

    def workloads(self) -> List[str]:
        """The evaluated workloads, in the paper's plotting order."""
        return list(EVALUATED_WORKLOADS)
