"""Shared infrastructure for the paper-reproduction experiments.

Every experiment module (one per table/figure) builds on the same pieces:

* :class:`ExperimentSettings` -- how hard to scale the machine and how long
  to run each simulation.  The paper simulates 0.5-1 billion instructions
  per core on 32-core machines, which a pure-Python simulator cannot replay;
  the default settings scale capacities and working sets by 512x and replay a
  few thousand accesses per core after pre-warming the DRAM caches
  (DESIGN.md section 5 explains why this preserves the normalised results).
* :class:`ExperimentContext` -- builds systems/workloads, runs simulations
  and memoises results so that e.g. Fig. 8 and Fig. 9 can reuse the runs
  performed for Fig. 6.
* small helpers for speedups and normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..stats.counters import SimulationStats
from ..stats.report import geometric_mean
from ..system.config import SystemConfig
from ..system.numa_system import NumaSystem
from ..system.simulator import SimulationResult, Simulator
from ..workloads.registry import EVALUATED_WORKLOADS, make_workload

__all__ = [
    "ExperimentSettings",
    "RunRecord",
    "ExperimentContext",
    "DESIGNS",
    "DRAM_CACHE_DESIGNS",
    "speedup",
    "geometric_mean",
]

#: The designs compared throughout the evaluation, in the paper's order.
DESIGNS: Tuple[str, ...] = ("baseline", "snoopy", "full-dir", "c3d", "c3d-full-dir")
#: The DRAM-cache designs (everything but the baseline).
DRAM_CACHE_DESIGNS: Tuple[str, ...] = ("snoopy", "full-dir", "c3d", "c3d-full-dir")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs controlling experiment fidelity vs. runtime."""

    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    num_sockets: int = 4
    cores_per_socket: int = 8
    prewarm: bool = True
    allocation_policy: str = "first_touch"
    seed: Optional[int] = None

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Fast settings for CI / pytest-benchmark runs (seconds per run)."""
        return cls(scale=1024, accesses_per_thread=1200, warmup_accesses_per_thread=400)

    @classmethod
    def full(cls) -> "ExperimentSettings":
        """Higher-fidelity settings used to produce EXPERIMENTS.md."""
        return cls(scale=512, accesses_per_thread=6000, warmup_accesses_per_thread=2000)

    def dual_socket(self) -> "ExperimentSettings":
        """The 2-socket, 16-core/socket variant of these settings (Fig. 7)."""
        return replace(self, num_sockets=2, cores_per_socket=16)

    @property
    def total_cores(self) -> int:
        return self.num_sockets * self.cores_per_socket

    @property
    def trace_length(self) -> int:
        return self.accesses_per_thread + self.warmup_accesses_per_thread


@dataclass
class RunRecord:
    """One simulation run plus the derived quantities experiments report."""

    workload: str
    protocol: str
    stats: SimulationStats
    result: SimulationResult
    config: SystemConfig

    @property
    def total_time_ns(self) -> float:
        return self.result.total_time_ns

    @property
    def inter_socket_bytes(self) -> int:
        return self.result.inter_socket_bytes

    @property
    def memory_accesses(self) -> int:
        return self.stats.memory_accesses


def speedup(baseline: RunRecord, other: RunRecord) -> float:
    """Execution-time speedup of ``other`` relative to ``baseline``."""
    if other.total_time_ns == 0:
        return float("nan")
    return baseline.total_time_ns / other.total_time_ns


class ExperimentContext:
    """Builds, runs and memoises simulations for the experiment modules."""

    def __init__(self, settings: Optional[ExperimentSettings] = None) -> None:
        self.settings = settings or ExperimentSettings()
        self._cache: Dict[Tuple, RunRecord] = {}

    # ------------------------------------------------------------------
    # Configuration / workload construction
    # ------------------------------------------------------------------

    def make_config(self, protocol: str, **overrides) -> SystemConfig:
        """Build the (scaled) machine configuration for one design."""
        settings = self.settings
        if settings.num_sockets == 2:
            config = SystemConfig.dual_socket(protocol=protocol)
        else:
            config = SystemConfig.quad_socket(protocol=protocol)
        config = replace(
            config,
            num_sockets=settings.num_sockets,
            cores_per_socket=settings.cores_per_socket,
            allocation_policy=settings.allocation_policy,
        )
        if overrides:
            config = replace(config, **overrides)
        return config.scaled(settings.scale)

    def make_workload(self, name: str):
        """Build the (scaled) workload generator for one benchmark."""
        settings = self.settings
        return make_workload(
            name,
            scale=settings.scale,
            accesses_per_thread=settings.trace_length,
            num_threads=settings.total_cores,
            seed=settings.seed,
        )

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, workload_name: str, protocol: str, *, config: Optional[SystemConfig] = None,
            cache_key_extra: Tuple = ()) -> RunRecord:
        """Run one (workload, design) simulation, memoising the result.

        Runs with an explicit ``config`` are memoised only when the caller
        provides a distinguishing ``cache_key_extra`` (otherwise two different
        ad-hoc configurations could collide on the same key).
        """
        key = (workload_name, protocol, self.settings, cache_key_extra)
        cacheable = config is None or bool(cache_key_extra)
        if cacheable and key in self._cache:
            return self._cache[key]

        cfg = config if config is not None else self.make_config(protocol)
        system = NumaSystem(cfg)
        workload = self.make_workload(workload_name)
        simulator = Simulator(system, workload)
        result = simulator.run(
            warmup_accesses_per_core=self.settings.warmup_accesses_per_thread,
            prewarm=self.settings.prewarm,
        )
        record = RunRecord(
            workload=workload_name, protocol=protocol,
            stats=result.stats, result=result, config=cfg,
        )
        if cacheable:
            self._cache[key] = record
        return record

    def run_designs(
        self,
        workload_name: str,
        designs: Iterable[str] = DESIGNS,
    ) -> Dict[str, RunRecord]:
        """Run one workload under several designs."""
        return {design: self.run(workload_name, design) for design in designs}

    def workloads(self) -> List[str]:
        """The evaluated workloads, in the paper's plotting order."""
        return list(EVALUATED_WORKLOADS)
