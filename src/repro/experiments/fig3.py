"""Fig. 3: memory accesses as a function of cache capacity.

The paper grows the (single) cache from 16 MB to 64 MB / 256 MB / 1 GB and
reports main-memory accesses normalised to the 16 MB configuration: even
workloads with huge datasets have significant temporal locality that only
very large (DRAM-cache-sized) caches can capture -- the 1 GB point removes
38.6-45.5 % of memory accesses on average.

In the reproduction the sweep enlarges the per-socket LLC of the baseline
(no DRAM cache) machine, which is exactly the limit study the figure makes:
"what if on-chip capacity were this large?".  Capacities are scaled by the
experiment's scale factor like everything else.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from ..stats.report import format_series
from .common import ExperimentContext, ExperimentSettings

__all__ = ["CACHE_POINTS_MB", "run_fig3", "format_fig3", "main"]

#: Cache capacities swept by the figure (paper scale, MB).
CACHE_POINTS_MB = (16, 64, 256, 1024)


def run_fig3(context: Optional[ExperimentContext] = None) -> Dict[str, Dict[str, float]]:
    """Measure memory accesses vs. cache size, normalised to the 16 MB point.

    Returns ``{workload: {"64MB": ratio, "256MB": ratio, "1GB": ratio}}``.
    """
    context = context or ExperimentContext(ExperimentSettings())
    series: Dict[str, Dict[str, float]] = {}
    scale = context.settings.scale

    for workload in context.workloads():
        accesses: Dict[int, float] = {}
        for capacity_mb in CACHE_POINTS_MB:
            base_config = context.make_config("baseline")
            llc = replace(
                base_config.llc,
                size_bytes=max(64 * 1024, capacity_mb * 1024 * 1024 // scale),
            )
            config = replace(base_config, llc=llc)
            record = context.run(
                workload, "baseline", config=config, cache_key_extra=("fig3", capacity_mb)
            )
            accesses[capacity_mb] = float(record.stats.memory_accesses)
        baseline_accesses = accesses[CACHE_POINTS_MB[0]] or 1.0
        series[workload] = {
            _label(capacity_mb): accesses[capacity_mb] / baseline_accesses
            for capacity_mb in CACHE_POINTS_MB[1:]
        }

    averages = {}
    for capacity_mb in CACHE_POINTS_MB[1:]:
        label = _label(capacity_mb)
        values = [row[label] for row in series.values()]
        averages[label] = sum(values) / len(values)
    series["average"] = averages
    return series


def _label(capacity_mb: int) -> str:
    return "1GB" if capacity_mb >= 1024 else f"{capacity_mb}MB"


def format_fig3(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series,
        title="Fig. 3: memory accesses vs. cache size (normalised to 16MB)",
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig3(context)
    print(format_fig3(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
