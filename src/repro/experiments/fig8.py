"""Fig. 8: C3D memory traffic, normalised to the no-DRAM-cache baseline.

For the 4-socket machine with 1 GB DRAM caches, the paper reports C3D's
main-memory accesses (reads, writes and total) relative to the baseline:
reads drop by up to 99 % (70.9 % on average) because the private DRAM caches
filter them; writes are unchanged because C3D's caches are write-through
(every dirty LLC eviction still reaches memory); total traffic drops by 49 %
on average.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.report import format_series
from .common import ExperimentContext, ExperimentSettings

__all__ = ["PAPER_AVERAGES", "run_fig8", "format_fig8", "main"]

#: Paper averages: normalised reads / writes / total for C3D.
PAPER_AVERAGES = {"reads": 1 - 0.709, "writes": 1.0, "total": 1 - 0.49}


def run_fig8(context: Optional[ExperimentContext] = None) -> Dict[str, Dict[str, float]]:
    """Measure C3D's memory traffic relative to the baseline.

    Returns ``{workload: {"reads": r, "writes": w, "total": t}}`` with every
    value normalised to the baseline design's count.
    """
    context = context or ExperimentContext(ExperimentSettings())
    series: Dict[str, Dict[str, float]] = {}
    for workload in context.workloads():
        baseline = context.run(workload, "baseline").stats
        c3d = context.run(workload, "c3d").stats
        series[workload] = {
            "reads": _ratio(c3d.memory_reads, baseline.memory_reads),
            "writes": _ratio(c3d.memory_writes, baseline.memory_writes),
            "total": _ratio(c3d.memory_accesses, baseline.memory_accesses),
        }
    series["average"] = {
        key: sum(row[key] for name, row in series.items() if name != "average") / len(series)
        for key in ("reads", "writes", "total")
    }
    return series


def _ratio(value: float, baseline: float) -> float:
    return value / baseline if baseline else float("nan")


def format_fig8(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 8: C3D memory traffic (normalised to no DRAM cache)"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig8(context)
    print(format_fig8(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
