"""Section III-B: global directory storage costs (the motivation for C3D's
non-inclusive directory).

The paper's arithmetic: a minimally provisioned (1x) sparse directory for a
256 MB DRAM cache needs 16 MB of storage per socket; at the 2x provisioning
of AMD's Magny-Cours it becomes 32 MB, and a 1 GB DRAM cache needs a
whopping 128 MB per socket.  C3D avoids tracking DRAM-cache blocks entirely,
so its directory remains sized for the 16 MB LLC.

This module reproduces those numbers with
:class:`~repro.coherence.directory.DirectoryCostModel` and also reports the
*measured* peak directory occupancy of a C3D run vs. a full-dir run, showing
the same orders-of-magnitude gap at reproduction scale.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..coherence.directory import DirectoryCostModel
from ..stats.report import format_table
from .common import ExperimentContext, ExperimentSettings

__all__ = ["storage_cost_table", "run_directory_occupancy", "main"]

MB = 2**20


def storage_cost_table(num_sockets: int = 4) -> Dict[str, float]:
    """The paper's sparse-directory storage arithmetic (MB per socket)."""
    model_1x = DirectoryCostModel(num_sockets=num_sockets, provisioning=1.0)
    model_2x = DirectoryCostModel(num_sockets=num_sockets, provisioning=2.0)
    return {
        "256MB cache, 1x sparse": model_1x.storage_megabytes(256 * MB),
        "256MB cache, 2x sparse": model_2x.storage_megabytes(256 * MB),
        "1GB cache, 2x sparse": model_2x.storage_megabytes(1024 * MB),
        "16MB LLC, 2x sparse (C3D)": model_2x.storage_megabytes(16 * MB),
    }


def run_directory_occupancy(
    settings: Optional[ExperimentSettings] = None, workload: str = "facesim"
) -> Dict[str, int]:
    """Measured peak directory entries (all slices): full-dir vs. C3D.

    The full-dir design must track every DRAM-cache-resident block, so its
    peak entry count is close to the aggregate DRAM-cache occupancy; C3D only
    tracks on-chip blocks, so its peak is orders of magnitude smaller.
    """
    from ..system.numa_system import NumaSystem
    from ..system.simulator import Simulator
    from ..workloads.registry import make_workload

    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings)
    occupancy: Dict[str, int] = {}
    for design in ("full-dir", "c3d"):
        system = NumaSystem(context.make_config(design))
        wl = make_workload(
            workload,
            scale=settings.scale,
            accesses_per_thread=settings.trace_length,
            num_threads=settings.total_cores,
        )
        Simulator(system, wl).run(
            warmup_accesses_per_core=settings.warmup_accesses_per_thread,
            prewarm=settings.prewarm,
        )
        occupancy[design] = sum(directory.peak_entries for directory in system.directories)
    return occupancy


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, float]:
    table = storage_cost_table()
    rows = [[name, f"{value:.1f} MB"] for name, value in table.items()]
    print(
        format_table(
            ["configuration", "directory storage per socket"],
            rows,
            title="Section III-B: sparse directory storage costs",
        )
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
