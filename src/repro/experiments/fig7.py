"""Fig. 7: 2-socket (16 cores/socket) performance comparison.

Same comparison as Fig. 6 on the dual-socket machine with a point-to-point
interconnect.  The paper reports slightly *higher* C3D speedups than in the
4-socket system (24.1 % average, within 3 % of the idealised c3d-full-dir)
because 16 cores sharing one LLC miss more often, giving the DRAM cache more
opportunity.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.report import format_series, geometric_mean
from .common import DRAM_CACHE_DESIGNS, ExperimentContext, ExperimentSettings, speedup

__all__ = ["PAPER_C3D_SPEEDUP_AVG", "run_fig7", "format_fig7", "main"]

PAPER_C3D_SPEEDUP_AVG = 1.241


def run_fig7(
    context: Optional[ExperimentContext] = None,
    *,
    designs=DRAM_CACHE_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Measure per-workload speedups on the 2-socket machine."""
    if context is None:
        context = ExperimentContext(ExperimentSettings().dual_socket())
    series: Dict[str, Dict[str, float]] = {}
    for workload in context.workloads():
        baseline = context.run(workload, "baseline")
        series[workload] = {
            design: speedup(baseline, context.run(workload, design)) for design in designs
        }
    series["geomean"] = {
        design: geometric_mean(
            row[design] for name, row in series.items() if name != "geomean"
        )
        for design in designs
    }
    return series


def format_fig7(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 7: 2-socket speedup over the no-DRAM-cache baseline"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    if settings is None:
        settings = ExperimentSettings().dual_socket()
    context = ExperimentContext(settings)
    series = run_fig7(context)
    print(format_fig7(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
