"""Fig. 10: sensitivity to DRAM-cache access latency (30 / 40 / 50 ns).

The paper varies the DRAM-cache latency and reports the average speedup of
snoopy, full-dir and c3d over the baseline.  Even when the DRAM cache is as
slow as main memory (50 ns), C3D retains a 17.3 % gain because its benefit
comes mostly from avoiding the inter-socket trip, not from the device being
faster; a faster cache (30 ns) pushes the gain to ~24 %.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional, Sequence

from ..stats.report import format_series, geometric_mean
from .common import ExperimentContext, ExperimentSettings, speedup

__all__ = ["LATENCY_POINTS_NS", "SENSITIVITY_DESIGNS", "run_fig10", "format_fig10", "main"]

LATENCY_POINTS_NS: Sequence[float] = (30.0, 40.0, 50.0)
SENSITIVITY_DESIGNS = ("snoopy", "full-dir", "c3d")


def run_fig10(
    context: Optional[ExperimentContext] = None,
    *,
    workloads: Optional[Iterable[str]] = None,
    latencies: Sequence[float] = LATENCY_POINTS_NS,
    designs: Sequence[str] = SENSITIVITY_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Average speedup of each design at each DRAM-cache latency.

    Returns ``{"30ns": {design: speedup}, "40ns": ..., "50ns": ...}``.
    """
    context = context or ExperimentContext(ExperimentSettings())
    workload_list = list(workloads) if workloads is not None else context.workloads()
    series: Dict[str, Dict[str, float]] = {}

    for latency in latencies:
        per_design: Dict[str, list] = {design: [] for design in designs}
        for workload in workload_list:
            baseline = context.run(workload, "baseline")
            for design in designs:
                config = context.make_config(design)
                config = replace(
                    config, dram_cache=replace(config.dram_cache, latency_ns=latency)
                )
                record = context.run(
                    workload, design, config=config, cache_key_extra=("fig10", latency)
                )
                per_design[design].append(speedup(baseline, record))
        series[f"{latency:.0f}ns"] = {
            design: geometric_mean(values) for design, values in per_design.items()
        }
    return series


def format_fig10(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 10: speedup vs. DRAM-cache latency (geomean over workloads)"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig10(context)
    print(format_fig10(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
