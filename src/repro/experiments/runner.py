"""Run every reproduced table and figure and print a consolidated report.

Usage::

    python -m repro.experiments.runner                  # default settings
    python -m repro.experiments.runner --quick          # CI-sized runs
    python -m repro.experiments.runner --full           # EXPERIMENTS.md settings
    python -m repro.experiments.runner --jobs 4         # fan out over workers
    python -m repro.experiments.runner --store results  # persist every run
    python -m repro.experiments.runner --store results --jobs 4

Sequentially, the runner shares one
:class:`~repro.experiments.common.ExperimentContext` across experiments so
that e.g. the Fig. 6 runs are reused by Fig. 8/9.  With ``--jobs N`` the
figures are fanned out over a ``multiprocessing`` pool; each worker builds
its own context, so *in-process* memoisation is per-worker -- but with
``--store DIR`` every worker reads and writes the same persistent
:class:`~repro.stats.store.ResultsStore`, which restores cross-figure run
sharing across processes (and across invocations: a second run of the same
command is pure cache hits).  Without ``--store``, ``--jobs N`` still trades
memoised-run sharing for parallelism, exactly as before.

Once a store is populated, ``repro report --store DIR`` regenerates every
figure table from it without re-simulating, and ``repro campaign`` runs
declarative sweep grids against the same store (docs/campaigns.md).

The module also provides the generic sweep machinery the figures are built
from: :func:`run_sweep` executes a list of :class:`SweepPoint` simulations --
optionally in parallel worker processes, optionally through a results store
that skips already-completed points -- and :func:`merge_stats` folds the
per-point :class:`~repro.stats.counters.SimulationStats` into one aggregate.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import (
    broadcast_filter,
    directory_cost,
    fig2,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)
from ..stats.counters import SimulationStats
from ..stats.store import STORE_SCHEMA_VERSION, ResultsStore, StoredRun, content_key
from .common import ExperimentContext, ExperimentSettings

__all__ = [
    "run_all",
    "run_all_parallel",
    "main",
    "SweepPoint",
    "SweepResult",
    "sweep_point_payload",
    "sweep_point_key",
    "run_sweep",
    "merge_stats",
]


# ----------------------------------------------------------------------
# Generic parallel sweep machinery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, design, machine) simulation of a figure sweep.

    The workload comes from any of the three frontends (docs/workloads.md):
    ``workload`` names a synthetic benchmark from the registry; setting
    ``trace_dir`` replays a recorded trace directory instead; setting
    ``scenario`` (a built-in name or a scenario JSON path) builds a composed
    multi-program mix.  ``trace_dir`` and ``scenario`` are mutually
    exclusive and both override ``workload``.

    ``sample_plan`` (a :meth:`~repro.stats.sampling.SamplingPlan.from_spec`
    string such as ``"units=8,detail=150,warmup=100"``) switches the point to
    the ``sampled`` engine (docs/sampling.md); sampled points hash to store
    keys distinct from exact ones, so the two never collide in a results
    store.
    """

    workload: str = "facesim"
    protocol: str = "c3d"
    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    num_sockets: int = 4
    cores_per_socket: int = 8
    allocation_policy: str = "first_touch"
    prewarm: bool = True
    broadcast_filter: bool = False
    seed: Optional[int] = None
    trace_dir: Optional[str] = None
    scenario: Optional[str] = None
    sample_plan: Optional[str] = None


@dataclass
class SweepResult:
    """Outcome of one sweep point (picklable across worker processes)."""

    point: SweepPoint
    stats: SimulationStats
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0


def sweep_point_payload(point: SweepPoint, engine: str = "compiled") -> Dict:
    """The outcome-determining payload hashed into a sweep point's store key.

    Every outcome-shaping :class:`SweepPoint` field participates, plus the
    engine and the store schema version.  When ``trace_dir``/``scenario``
    is set the ``workload`` field is ignored by the workload builder, so it
    is normalised out of the payload -- two callers selecting the same
    scenario with different placeholder workloads share one cached point.
    Note that ``trace_dir``/``scenario`` are keyed by *path*, not file
    content -- editing a trace in place requires ``repro campaign clean``
    (see docs/campaigns.md).

    A ``sample_plan`` switches the payload to a sampling engine -- the
    default ``sampled`` unless the caller already named one with sampling
    support (capability flag, so registered third-party sampling engines
    key under their own name) -- and is normalised to the plan's canonical
    JSON form, so equivalent spec strings (key order, defaulted fields)
    share one key while any *semantic* plan difference -- and the
    exact/sampled distinction itself -- yields a different key.
    """
    payload = asdict(point)
    if point.trace_dir is not None or point.scenario is not None:
        payload["workload"] = None
    if point.sample_plan is not None:
        from .. import engines
        from ..stats.sampling import SamplingPlan

        payload["sample_plan"] = SamplingPlan.from_spec(point.sample_plan).to_json_dict()
        if not engines.get(engine).supports_sampling:
            engine = "sampled"
    payload.update(kind="sweep-point", schema=STORE_SCHEMA_VERSION, engine=engine)
    return payload


def sweep_point_key(point: SweepPoint, engine: str = "compiled") -> str:
    """Content key of one sweep point (see :func:`sweep_point_payload`)."""
    return content_key(sweep_point_payload(point, engine))


def _run_sweep_point(point: SweepPoint, engine: str = "compiled") -> SweepResult:
    """Worker entry point: build and run one simulation."""
    # Imports kept local so forked/spawned workers only pay for what they use.
    from ..system.config import SystemConfig
    from ..system.numa_system import NumaSystem
    from ..system.simulator import Simulator
    from ..workloads.scenario import build_workload

    base = SystemConfig.dual_socket if point.num_sockets == 2 else SystemConfig.quad_socket
    config = base(
        protocol=point.protocol,
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        allocation_policy=point.allocation_policy,
        broadcast_filter=point.broadcast_filter,
    ).scaled(point.scale)
    system = NumaSystem(config)
    workload = build_workload(
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        workload=point.workload,
        trace_dir=point.trace_dir,
        scenario=point.scenario,
        scale=point.scale,
        accesses_per_thread=point.accesses_per_thread + point.warmup_accesses_per_thread,
        seed=point.seed,
    )
    sample_plan = None
    if point.sample_plan is not None:
        from .. import engines
        from ..stats.sampling import SamplingPlan

        sample_plan = SamplingPlan.from_spec(point.sample_plan)
        # Capability flag, not a name comparison: a caller-selected sampling
        # engine keeps running; only non-sampling engines fall back to the
        # default 'sampled' implementation (mirrors sweep_point_payload, so
        # the executed engine always matches the store key).
        if not engines.get(engine).supports_sampling:
            engine = "sampled"
    started = time.time()
    result = Simulator(system, workload, engine=engine, sample_plan=sample_plan).run(
        warmup_accesses_per_core=point.warmup_accesses_per_thread,
        prewarm=point.prewarm,
    )
    return SweepResult(
        point=point,
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=time.time() - started,
    )


def _run_indexed_point(task: Tuple[int, SweepPoint, str]) -> Tuple[int, SweepResult]:
    """Pool entry point carrying the input index for order restoration."""
    index, point, engine = task
    return index, _run_sweep_point(point, engine)


def _stored_from_sweep(result: SweepResult, key: str, engine: str) -> StoredRun:
    return StoredRun(
        key=key,
        params=sweep_point_payload(result.point, engine),
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=result.wall_clock_s,
    )


def _sweep_from_stored(point: SweepPoint, stored: StoredRun) -> SweepResult:
    return SweepResult(
        point=point,
        stats=stored.stats,
        total_time_ns=stored.total_time_ns,
        inter_socket_bytes=stored.inter_socket_bytes,
        accesses_executed=stored.accesses_executed,
        wall_clock_s=stored.wall_clock_s,
    )


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultsStore] = None,
    engine: str = "compiled",
) -> List[SweepResult]:
    """Run a list of sweep points, optionally over a multiprocessing pool.

    ``jobs=None`` or ``jobs<=1`` runs in-process (deterministic order, no
    pickling); otherwise up to ``jobs`` worker processes execute points
    concurrently.  Results are always returned in input order.  ``engine``
    is validated against the :mod:`repro.engines` registry up front, so a
    typo fails before any simulation starts.

    With a ``store``, points whose content key is already persisted are
    loaded instead of simulated, and every freshly simulated point is
    appended to the store *as soon as it completes* -- interrupting a sweep
    loses at most the in-flight points, and re-running it resumes from the
    completed ones (docs/campaigns.md walks through this).
    """
    from .. import engines

    engines.validate(engine)
    points = list(points)
    results: List[Optional[SweepResult]] = [None] * len(points)

    pending: List[int] = []
    if store is not None:
        for index, point in enumerate(points):
            stored = store.get(sweep_point_key(point, engine))
            if stored is not None:
                results[index] = _sweep_from_stored(point, stored)
            else:
                pending.append(index)
    else:
        pending = list(range(len(points)))

    def finish(index: int, result: SweepResult) -> None:
        results[index] = result
        if store is not None:
            key = sweep_point_key(points[index], engine)
            store.put(_stored_from_sweep(result, key, engine))

    if jobs is None or jobs <= 1 or len(pending) <= 1:
        for index in pending:
            finish(index, _run_sweep_point(points[index], engine))
    else:
        tasks = [(index, points[index], engine) for index in pending]
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            # Unordered so completed points persist immediately; the carried
            # index restores input order.
            for index, result in pool.imap_unordered(_run_indexed_point, tasks):
                finish(index, result)
    return results  # type: ignore[return-value]  # every slot is filled above


def merge_stats(results: Sequence[SweepResult]) -> SimulationStats:
    """Fold the statistics of several sweep results into one aggregate."""
    merged = SimulationStats()
    for result in results:
        merged.merge(result.stats)
    return merged


def _format_directory_cost(table) -> str:
    return "\n".join(f"{k}: {v:.1f} MB" for k, v in table.items())


#: The single experiment registry (canonical order):
#: name -> (runner(context), formatter(result), needs dual-socket context).
#: Both the sequential and the parallel paths iterate this registry -- and so
#: does ``repro report`` -- so a new figure is added in exactly one place.
_EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "table1": (table1.run_table1, table1.format_table1, False),
    "fig2": (fig2.run_fig2, fig2.format_fig2, False),
    "fig3": (fig3.run_fig3, fig3.format_fig3, False),
    "fig6": (fig6.run_fig6, fig6.format_fig6, False),
    "fig7": (fig7.run_fig7, fig7.format_fig7, True),
    "fig8": (fig8.run_fig8, fig8.format_fig8, False),
    "fig9": (fig9.run_fig9, fig9.format_fig9, False),
    "broadcast_filter": (
        broadcast_filter.run_broadcast_filter,
        broadcast_filter.format_broadcast_filter,
        False,
    ),
    "directory_cost": (
        lambda _context: directory_cost.storage_cost_table(),
        _format_directory_cost,
        False,
    ),
    "fig10": (fig10.run_fig10, fig10.format_fig10, False),
    "fig11": (fig11.run_fig11, fig11.format_fig11, False),
}

#: Names skipped by ``include_sensitivity=False``.
_SENSITIVITY = ("fig10", "fig11")


def _experiment_names(include_sensitivity: bool) -> List[str]:
    return [n for n in _EXPERIMENTS if include_sensitivity or n not in _SENSITIVITY]


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    include_sensitivity: bool = True,
    stream=sys.stdout,
    store: Optional[ResultsStore] = None,
    names: Optional[Sequence[str]] = None,
    engine: str = "compiled",
) -> Dict[str, object]:
    """Run all experiments sequentially; returns {experiment-name: result}.

    One context is shared across figures (memoised runs are reused, e.g. the
    Fig. 6 simulations by Figs. 8/9) and the returned values are the raw
    per-figure result objects -- unlike :func:`run_all_parallel`, which
    returns formatted report text.  With a ``store``, every simulation is
    read through / persisted to it, so a repeated invocation is pure cache
    hits and ``repro report`` can later rebuild the tables offline.
    ``names`` restricts the run to a subset of the registry (campaigns use
    this for their ``figures`` list).
    """
    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings, store=store, engine=engine)
    dual_context = ExperimentContext(
        settings.dual_socket(), store=store, engine=engine
    )
    results: Dict[str, object] = {}

    for name in names if names is not None else _experiment_names(include_sensitivity):
        runner, formatter, dual = _EXPERIMENTS[name]
        start = time.time()
        result = runner(dual_context if dual else context)
        report = formatter(result)
        elapsed = time.time() - start
        results[name] = result
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return results


def _run_named_experiment(
    task: Tuple[str, ExperimentSettings, Optional[str]]
) -> Tuple[str, str, float]:
    """Worker entry point: run one named experiment and return its report text."""
    name, settings, store_path = task
    store = ResultsStore(store_path) if store_path is not None else None
    runner, formatter, dual = _EXPERIMENTS[name]
    context = ExperimentContext(
        settings.dual_socket() if dual else settings, store=store
    )
    start = time.time()
    result = runner(context)
    return name, formatter(result), time.time() - start


def run_all_parallel(
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: int = 2,
    include_sensitivity: bool = True,
    stream=sys.stdout,
    store: Optional[ResultsStore] = None,
) -> Dict[str, str]:
    """Fan the experiments out over ``jobs`` worker processes.

    Each worker builds its own :class:`ExperimentContext`, so *in-process*
    run sharing is per-worker; pass a ``store`` to share runs across workers
    through the persistent results store instead (workers re-open it by
    path, and duplicated concurrent runs of the same point are harmless --
    identical keys store bit-identical records, last write wins).  Because
    the per-figure result objects are not guaranteed picklable, the workers
    return *formatted report text*: the return value is
    ``{experiment-name: report-text}``, not the result objects of
    :func:`run_all` -- use ``jobs=1`` / :func:`run_all` when structured
    results are needed.
    """
    settings = settings or ExperimentSettings()
    store_path = str(store.directory) if store is not None else None
    tasks = [
        (name, settings, store_path)
        for name in _experiment_names(include_sensitivity)
    ]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        results = pool.map(_run_named_experiment, tasks)
    if store is not None:
        store.reload()  # pick up the records the workers appended
    reports: Dict[str, str] = {}
    for name, report, elapsed in results:
        reports[name] = report
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return reports


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--full", action="store_true", help="EXPERIMENTS.md settings")
    parser.add_argument(
        "--no-sensitivity", action="store_true", help="skip the Fig. 10/11 sweeps"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the figure sweeps (1 = sequential, shared "
             "context, structured results; >1 returns formatted report text)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist every simulation to this results-store directory and "
             "reuse any already stored (shared across --jobs workers and "
             "across invocations; see docs/campaigns.md)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()
    store = ResultsStore(args.store) if args.store is not None else None
    if args.jobs > 1:
        return run_all_parallel(
            settings, jobs=args.jobs,
            include_sensitivity=not args.no_sensitivity, store=store,
        )
    return run_all(
        settings, include_sensitivity=not args.no_sensitivity, store=store
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
