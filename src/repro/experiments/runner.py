"""Run every reproduced table and figure and print a consolidated report.

Usage::

    python -m repro.experiments.runner            # default settings
    python -m repro.experiments.runner --quick    # CI-sized runs
    python -m repro.experiments.runner --full     # EXPERIMENTS.md settings
    python -m repro.experiments.runner --jobs 4   # fan figures out over workers

Sequentially, the runner shares one
:class:`~repro.experiments.common.ExperimentContext` across experiments so
that e.g. the Fig. 6 runs are reused by Fig. 8/9.  With ``--jobs N`` the
figures are fanned out over a ``multiprocessing`` pool instead (each worker
builds its own context, so the memoised-run sharing is traded for
parallelism).

The module also provides the generic sweep machinery the figures are built
from: :func:`run_sweep` executes a list of :class:`SweepPoint` simulations --
optionally in parallel worker processes -- and :func:`merge_stats` folds the
per-point :class:`~repro.stats.counters.SimulationStats` into one aggregate.
"""

from __future__ import annotations

import argparse
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import (
    broadcast_filter,
    directory_cost,
    fig2,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)
from ..stats.counters import SimulationStats
from .common import ExperimentContext, ExperimentSettings

__all__ = [
    "run_all",
    "run_all_parallel",
    "main",
    "SweepPoint",
    "SweepResult",
    "run_sweep",
    "merge_stats",
]


# ----------------------------------------------------------------------
# Generic parallel sweep machinery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, design, machine) simulation of a figure sweep.

    The workload comes from any of the three frontends (docs/workloads.md):
    ``workload`` names a synthetic benchmark from the registry; setting
    ``trace_dir`` replays a recorded trace directory instead; setting
    ``scenario`` (a built-in name or a scenario JSON path) builds a composed
    multi-program mix.  ``trace_dir`` and ``scenario`` are mutually
    exclusive and both override ``workload``.
    """

    workload: str = "facesim"
    protocol: str = "c3d"
    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    num_sockets: int = 4
    cores_per_socket: int = 8
    allocation_policy: str = "first_touch"
    prewarm: bool = True
    broadcast_filter: bool = False
    seed: Optional[int] = None
    trace_dir: Optional[str] = None
    scenario: Optional[str] = None


@dataclass
class SweepResult:
    """Outcome of one sweep point (picklable across worker processes)."""

    point: SweepPoint
    stats: SimulationStats
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0


def _run_sweep_point(point: SweepPoint) -> SweepResult:
    """Worker entry point: build and run one simulation."""
    # Imports kept local so forked/spawned workers only pay for what they use.
    from ..system.config import SystemConfig
    from ..system.numa_system import NumaSystem
    from ..system.simulator import Simulator
    from ..workloads.scenario import build_workload

    base = SystemConfig.dual_socket if point.num_sockets == 2 else SystemConfig.quad_socket
    config = base(
        protocol=point.protocol,
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        allocation_policy=point.allocation_policy,
        broadcast_filter=point.broadcast_filter,
    ).scaled(point.scale)
    system = NumaSystem(config)
    workload = build_workload(
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        workload=point.workload,
        trace_dir=point.trace_dir,
        scenario=point.scenario,
        scale=point.scale,
        accesses_per_thread=point.accesses_per_thread + point.warmup_accesses_per_thread,
        seed=point.seed,
    )
    started = time.time()
    result = Simulator(system, workload).run(
        warmup_accesses_per_core=point.warmup_accesses_per_thread,
        prewarm=point.prewarm,
    )
    return SweepResult(
        point=point,
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=time.time() - started,
    )


def run_sweep(
    points: Sequence[SweepPoint], *, jobs: Optional[int] = None
) -> List[SweepResult]:
    """Run a list of sweep points, optionally over a multiprocessing pool.

    ``jobs=None`` or ``jobs<=1`` runs in-process (deterministic order, no
    pickling); otherwise up to ``jobs`` worker processes execute points
    concurrently.  Results are always returned in input order.
    """
    points = list(points)
    if jobs is None or jobs <= 1 or len(points) <= 1:
        return [_run_sweep_point(point) for point in points]
    with multiprocessing.Pool(processes=min(jobs, len(points))) as pool:
        return pool.map(_run_sweep_point, points)


def merge_stats(results: Sequence[SweepResult]) -> SimulationStats:
    """Fold the statistics of several sweep results into one aggregate."""
    merged = SimulationStats()
    for result in results:
        merged.merge(result.stats)
    return merged


def _format_directory_cost(table) -> str:
    return "\n".join(f"{k}: {v:.1f} MB" for k, v in table.items())


#: The single experiment registry (canonical order):
#: name -> (runner(context), formatter(result), needs dual-socket context).
#: Both the sequential and the parallel paths iterate this registry, so a new
#: figure is added in exactly one place.
_EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "table1": (table1.run_table1, table1.format_table1, False),
    "fig2": (fig2.run_fig2, fig2.format_fig2, False),
    "fig3": (fig3.run_fig3, fig3.format_fig3, False),
    "fig6": (fig6.run_fig6, fig6.format_fig6, False),
    "fig7": (fig7.run_fig7, fig7.format_fig7, True),
    "fig8": (fig8.run_fig8, fig8.format_fig8, False),
    "fig9": (fig9.run_fig9, fig9.format_fig9, False),
    "broadcast_filter": (
        broadcast_filter.run_broadcast_filter,
        broadcast_filter.format_broadcast_filter,
        False,
    ),
    "directory_cost": (
        lambda _context: directory_cost.storage_cost_table(),
        _format_directory_cost,
        False,
    ),
    "fig10": (fig10.run_fig10, fig10.format_fig10, False),
    "fig11": (fig11.run_fig11, fig11.format_fig11, False),
}

#: Names skipped by ``include_sensitivity=False``.
_SENSITIVITY = ("fig10", "fig11")


def _experiment_names(include_sensitivity: bool) -> List[str]:
    return [n for n in _EXPERIMENTS if include_sensitivity or n not in _SENSITIVITY]


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    include_sensitivity: bool = True,
    stream=sys.stdout,
) -> Dict[str, object]:
    """Run all experiments sequentially; returns {experiment-name: result}.

    One context is shared across figures (memoised runs are reused, e.g. the
    Fig. 6 simulations by Figs. 8/9) and the returned values are the raw
    per-figure result objects -- unlike :func:`run_all_parallel`, which
    returns formatted report text.
    """
    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings)
    dual_context = ExperimentContext(settings.dual_socket())
    results: Dict[str, object] = {}

    for name in _experiment_names(include_sensitivity):
        runner, formatter, dual = _EXPERIMENTS[name]
        start = time.time()
        result = runner(dual_context if dual else context)
        report = formatter(result)
        elapsed = time.time() - start
        results[name] = result
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return results


def _run_named_experiment(task: Tuple[str, ExperimentSettings]) -> Tuple[str, str, float]:
    """Worker entry point: run one named experiment and return its report text."""
    name, settings = task
    runner, formatter, dual = _EXPERIMENTS[name]
    context = ExperimentContext(settings.dual_socket() if dual else settings)
    start = time.time()
    result = runner(context)
    return name, formatter(result), time.time() - start


def run_all_parallel(
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: int = 2,
    include_sensitivity: bool = True,
    stream=sys.stdout,
) -> Dict[str, str]:
    """Fan the experiments out over ``jobs`` worker processes.

    Each worker builds its own :class:`ExperimentContext` (so cross-figure
    run sharing is traded for parallelism).  Because the per-figure result
    objects are not guaranteed picklable, the workers return *formatted
    report text*: the return value is ``{experiment-name: report-text}``,
    not the result objects of :func:`run_all` -- use ``jobs=1`` /
    :func:`run_all` when structured results are needed.
    """
    settings = settings or ExperimentSettings()
    tasks = [(name, settings) for name in _experiment_names(include_sensitivity)]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        results = pool.map(_run_named_experiment, tasks)
    reports: Dict[str, str] = {}
    for name, report, elapsed in results:
        reports[name] = report
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return reports


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--full", action="store_true", help="EXPERIMENTS.md settings")
    parser.add_argument(
        "--no-sensitivity", action="store_true", help="skip the Fig. 10/11 sweeps"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the figure sweeps (1 = sequential, shared "
             "context, structured results; >1 returns formatted report text)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()
    if args.jobs > 1:
        return run_all_parallel(
            settings, jobs=args.jobs, include_sensitivity=not args.no_sensitivity
        )
    return run_all(settings, include_sensitivity=not args.no_sensitivity)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
