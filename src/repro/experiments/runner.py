"""Run every reproduced table and figure and print a consolidated report.

Usage::

    python -m repro.experiments.runner            # default settings
    python -m repro.experiments.runner --quick    # CI-sized runs
    python -m repro.experiments.runner --full     # EXPERIMENTS.md settings

The runner shares one :class:`~repro.experiments.common.ExperimentContext`
across experiments so that e.g. the Fig. 6 runs are reused by Fig. 8/9.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from . import (
    broadcast_filter,
    directory_cost,
    fig2,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)
from .common import ExperimentContext, ExperimentSettings

__all__ = ["run_all", "main"]


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    include_sensitivity: bool = True,
    stream=sys.stdout,
) -> Dict[str, object]:
    """Run all experiments; returns {experiment-name: result}."""
    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings)
    dual_context = ExperimentContext(settings.dual_socket())
    results: Dict[str, object] = {}

    experiments: List[Tuple[str, Callable[[], Tuple[object, str]]]] = [
        ("table1", lambda: _wrap(table1.run_table1(context), table1.format_table1)),
        ("fig2", lambda: _wrap(fig2.run_fig2(context), fig2.format_fig2)),
        ("fig3", lambda: _wrap(fig3.run_fig3(context), fig3.format_fig3)),
        ("fig6", lambda: _wrap(fig6.run_fig6(context), fig6.format_fig6)),
        ("fig7", lambda: _wrap(fig7.run_fig7(dual_context), fig7.format_fig7)),
        ("fig8", lambda: _wrap(fig8.run_fig8(context), fig8.format_fig8)),
        ("fig9", lambda: _wrap(fig9.run_fig9(context), fig9.format_fig9)),
        (
            "broadcast_filter",
            lambda: _wrap(
                broadcast_filter.run_broadcast_filter(context),
                broadcast_filter.format_broadcast_filter,
            ),
        ),
        (
            "directory_cost",
            lambda: _wrap(
                directory_cost.storage_cost_table(),
                lambda table: "\n".join(f"{k}: {v:.1f} MB" for k, v in table.items()),
            ),
        ),
    ]
    if include_sensitivity:
        experiments.extend(
            [
                ("fig10", lambda: _wrap(fig10.run_fig10(context), fig10.format_fig10)),
                ("fig11", lambda: _wrap(fig11.run_fig11(context), fig11.format_fig11)),
            ]
        )

    for name, runner in experiments:
        start = time.time()
        result, report = runner()
        elapsed = time.time() - start
        results[name] = result
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return results


def _wrap(result, formatter) -> Tuple[object, str]:
    return result, formatter(result)


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--full", action="store_true", help="EXPERIMENTS.md settings")
    parser.add_argument(
        "--no-sensitivity", action="store_true", help="skip the Fig. 10/11 sweeps"
    )
    args = parser.parse_args(argv)
    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()
    return run_all(settings, include_sensitivity=not args.no_sensitivity)


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
