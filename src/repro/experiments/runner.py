"""Run every reproduced table and figure and print a consolidated report.

Usage::

    python -m repro.experiments.runner                  # default settings
    python -m repro.experiments.runner --quick          # CI-sized runs
    python -m repro.experiments.runner --full           # EXPERIMENTS.md settings
    python -m repro.experiments.runner --jobs 4         # fan out over workers
    python -m repro.experiments.runner --store results  # persist every run
    python -m repro.experiments.runner --store results --jobs 4

Sequentially, the runner shares one
:class:`~repro.experiments.common.ExperimentContext` across experiments so
that e.g. the Fig. 6 runs are reused by Fig. 8/9.  With ``--jobs N`` the
figures are fanned out over a ``multiprocessing`` pool; each worker builds
its own context, so *in-process* memoisation is per-worker -- but with
``--store DIR`` every worker reads and writes the same persistent
:class:`~repro.stats.store.ResultsStore`, which restores cross-figure run
sharing across processes (and across invocations: a second run of the same
command is pure cache hits).  Without ``--store``, ``--jobs N`` still trades
memoised-run sharing for parallelism, exactly as before.

Once a store is populated, ``repro report --store DIR`` regenerates every
figure table from it without re-simulating, and ``repro campaign`` runs
declarative sweep grids against the same store (docs/campaigns.md).

The module also provides the generic sweep machinery the figures are built
from: :func:`run_sweep` executes a list of :class:`SweepPoint` simulations --
optionally in parallel worker processes, optionally through a results store
that skips already-completed points -- and :func:`merge_stats` folds the
per-point :class:`~repro.stats.counters.SimulationStats` into one aggregate.
"""

from __future__ import annotations

import argparse
import hashlib
import multiprocessing
import os
import sys
import time
import traceback as traceback_module
import warnings
from collections import deque
from dataclasses import asdict, dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from . import (
    broadcast_filter,
    directory_cost,
    fig2,
    fig3,
    fig6,
    fig7,
    fig8,
    fig9,
    fig10,
    fig11,
    table1,
)
from ..engines.base import WORKER_ENV
from ..stats.counters import SimulationStats
from ..stats.store import (
    STORE_SCHEMA_VERSION,
    FailureRecord,
    ResultsStore,
    StoredRun,
    content_key,
)
from ..testing import faults
from .common import ExperimentContext, ExperimentSettings

__all__ = [
    "run_all",
    "run_all_parallel",
    "main",
    "SweepPoint",
    "SweepResult",
    "FailurePolicy",
    "PointFailure",
    "fallback_engine",
    "sweep_point_payload",
    "sweep_point_key",
    "run_sweep",
    "merge_stats",
]


# ----------------------------------------------------------------------
# Generic parallel sweep machinery
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SweepPoint:
    """One (workload, design, machine) simulation of a figure sweep.

    The workload comes from any of the three frontends (docs/workloads.md):
    ``workload`` names a synthetic benchmark from the registry; setting
    ``trace_dir`` replays a recorded trace directory instead; setting
    ``scenario`` (a built-in name or a scenario JSON path) builds a composed
    multi-program mix; setting ``clone`` instantiates a fitted clone-spec
    JSON (``repro analyze --clone-out``, docs/ingestion.md).  The three are
    mutually exclusive and each overrides ``workload``.

    ``sample_plan`` (a :meth:`~repro.stats.sampling.SamplingPlan.from_spec`
    string such as ``"units=8,detail=150,warmup=100"``) switches the point to
    the ``sampled`` engine (docs/sampling.md); sampled points hash to store
    keys distinct from exact ones, so the two never collide in a results
    store.

    ``engine_jobs`` is the worker count for engines with their own process
    pool (``sampled-par``).  It shapes *how* the point executes, never what
    it computes -- bit-identical output at any value is the engine's
    contract -- so it is stripped from store payloads
    (:func:`sweep_point_payload`) and two points differing only in it share
    one cached result.
    """

    workload: str = "facesim"
    protocol: str = "c3d"
    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    num_sockets: int = 4
    cores_per_socket: int = 8
    allocation_policy: str = "first_touch"
    prewarm: bool = True
    broadcast_filter: bool = False
    seed: Optional[int] = None
    trace_dir: Optional[str] = None
    scenario: Optional[str] = None
    clone: Optional[str] = None
    sample_plan: Optional[str] = None
    engine_jobs: Optional[int] = None


@dataclass
class SweepResult:
    """Outcome of one sweep point (picklable across worker processes)."""

    point: SweepPoint
    stats: SimulationStats
    total_time_ns: float
    inter_socket_bytes: int
    accesses_executed: int
    wall_clock_s: float = 0.0
    #: Execution attempts this result took (1 = first try; >1 = retried).
    attempts: int = 1
    #: Engine that actually ran the point; ``None`` = the requested engine.
    #: Differs only after an ``on_engine_error="fallback"`` degradation.
    engine_used: Optional[str] = None


def sweep_point_payload(point: SweepPoint, engine: str = "compiled") -> Dict:
    """The outcome-determining payload hashed into a sweep point's store key.

    Every outcome-shaping :class:`SweepPoint` field participates, plus the
    engine and the store schema version.  When ``trace_dir``/``scenario``/
    ``clone`` is set the ``workload`` field is ignored by the workload
    builder, so it is normalised out of the payload -- two callers selecting
    the same scenario with different placeholder workloads share one cached
    point.  Note that ``trace_dir``/``scenario``/``clone`` are keyed by
    *path*, not file content -- editing a trace in place requires
    ``repro campaign clean`` (see docs/campaigns.md).

    A ``sample_plan`` switches the payload to a sampling engine -- the
    default ``sampled`` unless the caller already named one with sampling
    support (capability flag, so registered third-party sampling engines
    key under their own name) -- and is normalised to the plan's canonical
    JSON form, so equivalent spec strings (key order, defaulted fields)
    share one key while any *semantic* plan difference -- and the
    exact/sampled distinction itself -- yields a different key.

    ``engine_jobs`` never reaches the payload, and an engine declaring a
    ``store_name`` (``sampled-par`` aliases to ``sampled``) is keyed under
    that alias: execution knobs and bit-identical engine variants share one
    cached result, and every pre-existing pinned key stays byte-identical.
    """
    from .. import engines

    payload = asdict(point)
    payload.pop("engine_jobs")
    if point.trace_dir is not None or point.scenario is not None or point.clone is not None:
        payload["workload"] = None
    if point.clone is None:
        # Absent from the payload unless used, so every pre-clone store key
        # (pinned in tests/engines/test_store_keys.py) is preserved.
        payload.pop("clone")
    if point.sample_plan is not None:
        from ..stats.sampling import SamplingPlan

        payload["sample_plan"] = SamplingPlan.from_spec(point.sample_plan).to_json_dict()
        if not engines.get(engine).supports_sampling:
            engine = "sampled"
    try:
        store_alias = engines.get(engine).store_name
    except ValueError:
        store_alias = None
    payload.update(
        kind="sweep-point", schema=STORE_SCHEMA_VERSION, engine=store_alias or engine
    )
    return payload


def sweep_point_key(point: SweepPoint, engine: str = "compiled") -> str:
    """Content key of one sweep point (see :func:`sweep_point_payload`)."""
    return content_key(sweep_point_payload(point, engine))


def _run_sweep_point(
    point: SweepPoint, engine: str = "compiled", attempt: int = 1
) -> SweepResult:
    """Worker entry point: build and run one simulation."""
    # Imports kept local so forked/spawned workers only pay for what they use.
    from ..system.config import SystemConfig
    from ..system.numa_system import NumaSystem
    from ..system.simulator import Simulator
    from ..workloads.scenario import build_workload

    # Chaos hook (docs/robustness.md): when a FaultPlan is installed in the
    # environment, this worker may crash, hang, or both -- deterministically,
    # keyed by (seed, point key, attempt) -- before any real work starts.
    plan = faults.active()
    if plan is not None:
        plan.inject_point_faults(
            sweep_point_key(point, engine), sweep_point_payload(point, engine), attempt
        )

    base = SystemConfig.dual_socket if point.num_sockets == 2 else SystemConfig.quad_socket
    config = base(
        protocol=point.protocol,
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        allocation_policy=point.allocation_policy,
        broadcast_filter=point.broadcast_filter,
    ).scaled(point.scale)
    system = NumaSystem(config)
    workload = build_workload(
        num_sockets=point.num_sockets,
        cores_per_socket=point.cores_per_socket,
        workload=point.workload,
        trace_dir=point.trace_dir,
        scenario=point.scenario,
        clone=point.clone,
        scale=point.scale,
        accesses_per_thread=point.accesses_per_thread + point.warmup_accesses_per_thread,
        seed=point.seed,
    )
    sample_plan = None
    if point.sample_plan is not None:
        from .. import engines
        from ..stats.sampling import SamplingPlan

        sample_plan = SamplingPlan.from_spec(point.sample_plan)
        # Capability flag, not a name comparison: a caller-selected sampling
        # engine keeps running; only non-sampling engines fall back to the
        # default 'sampled' implementation (mirrors sweep_point_payload, so
        # the executed engine always matches the store key).
        if not engines.get(engine).supports_sampling:
            engine = "sampled"
    engine_options = (
        {"jobs": point.engine_jobs} if point.engine_jobs is not None else None
    )
    started = time.time()
    result = Simulator(
        system,
        workload,
        engine=engine,
        sample_plan=sample_plan,
        engine_options=engine_options,
    ).run(
        warmup_accesses_per_core=point.warmup_accesses_per_thread,
        prewarm=point.prewarm,
    )
    return SweepResult(
        point=point,
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=time.time() - started,
    )


def _stored_from_sweep(result: SweepResult, key: str, engine: str) -> StoredRun:
    return StoredRun(
        key=key,
        params=sweep_point_payload(result.point, engine),
        stats=result.stats,
        total_time_ns=result.total_time_ns,
        inter_socket_bytes=result.inter_socket_bytes,
        accesses_executed=result.accesses_executed,
        wall_clock_s=result.wall_clock_s,
        attempts=result.attempts,
        engine_used=result.engine_used,
    )


def _sweep_from_stored(point: SweepPoint, stored: StoredRun) -> SweepResult:
    return SweepResult(
        point=point,
        stats=stored.stats,
        total_time_ns=stored.total_time_ns,
        inter_socket_bytes=stored.inter_socket_bytes,
        accesses_executed=stored.accesses_executed,
        wall_clock_s=stored.wall_clock_s,
        attempts=stored.attempts,
        engine_used=stored.engine_used,
    )


# ----------------------------------------------------------------------
# Failure-domain layer: per-point isolation, retries, quarantine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FailurePolicy:
    """How campaign execution reacts to a failing or hanging sweep point.

    Every point runs in its own worker process (one failure domain per
    point), watched by the parent: an exception, a death (e.g. SIGKILL/OOM)
    or a wall-clock timeout fails *that attempt*, the point is retried up to
    ``max_attempts`` times with exponential backoff, and a point that
    exhausts its attempts is quarantined to the store's ``failures.jsonl``
    sidecar while the rest of the campaign completes (docs/robustness.md).

    The backoff jitter is *deterministically seeded* -- a pure function of
    ``(seed, point key, attempt)`` -- so two invocations of the same
    campaign schedule retries identically; there is no global RNG state.
    """

    #: Total attempts per point (1 = no retry).
    max_attempts: int = 3
    #: Per-point wall-clock budget in seconds; ``None`` disables the
    #: watchdog (a hung worker then blocks its slot forever, as before).
    timeout_s: Optional[float] = None
    #: First retry delay; attempt ``n`` waits ``backoff_s * factor**(n-1)``.
    backoff_s: float = 0.25
    backoff_factor: float = 2.0
    #: Relative jitter applied to every delay (0.1 = +/-10%).
    jitter: float = 0.1
    #: Seed of the deterministic jitter.
    seed: int = 0
    #: ``"fail"`` quarantines after ``max_attempts``; ``"fallback"`` first
    #: re-runs the point once on the exact fallback engine (capability
    #: flags: deterministic, non-sampling) when the failing engine samples
    #: or is non-deterministic -- graceful degradation for flaky engines.
    on_engine_error: str = "fail"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.on_engine_error not in ("fail", "fallback"):
            raise ValueError(
                f"on_engine_error must be 'fail' or 'fallback', "
                f"got {self.on_engine_error!r}"
            )

    def backoff(self, key: str, attempt: int) -> float:
        """Seconds to wait before retrying ``attempt`` (which just failed)."""
        base = self.backoff_s * self.backoff_factor ** (attempt - 1)
        token = f"{self.seed}|backoff|{key}|{attempt}".encode("utf-8")
        draw = int.from_bytes(hashlib.sha256(token).digest()[:8], "big") / 2.0**64
        return max(0.0, base * (1.0 + self.jitter * (2.0 * draw - 1.0)))


@dataclass
class PointFailure:
    """A sweep point that exhausted its attempts and was quarantined."""

    point: SweepPoint
    key: str
    attempts: int
    error: str
    traceback: str
    engine: str

    def to_failure_record(self) -> FailureRecord:
        return FailureRecord(
            key=self.key,
            params=sweep_point_payload(self.point, self.engine),
            attempts=self.attempts,
            error=self.error,
            traceback=self.traceback,
            engine=self.engine,
        )


def fallback_engine() -> Optional[str]:
    """The engine degraded points re-run on: deterministic and non-sampling.

    Resolved through the registry's capability flags -- not a hard-coded
    name -- so a third-party exact engine registered ahead of the built-ins
    is honoured.  Returns ``None`` when no registered engine qualifies.
    """
    from .. import engines

    for name in engines.names():
        engine_cls = engines.get(name)
        if engine_cls.deterministic and not engine_cls.supports_sampling:
            return name
    return None


@dataclass
class _PointTask:
    """One point's execution state inside the isolated executor."""

    index: int
    point: SweepPoint
    #: Engine this attempt runs on (switches after a fallback decision).
    engine: str
    #: The point actually executed (fallback strips a pinned sample plan).
    run_point: SweepPoint
    attempt: int = 1
    not_before: float = 0.0
    fell_back: bool = False
    last_error: str = ""
    last_traceback: str = ""


def _isolated_point_worker(conn, point: SweepPoint, engine: str, attempt: int) -> None:
    """Child-process entry: run one point, ship the outcome over the pipe."""
    # Campaign-level parallelism owns the machine: engines with their own
    # process pool (sampled-par) see this marker and clamp to one job.
    os.environ[WORKER_ENV] = "1"
    try:
        outcome = ("ok", _run_sweep_point(point, engine, attempt=attempt))
    except BaseException as exc:  # noqa: BLE001 - the whole point is isolation
        outcome = ("error", repr(exc), traceback_module.format_exc(), exc)
    try:
        conn.send(outcome)
    except Exception:
        if outcome[0] == "ok":
            # The result itself failed to pickle; report that instead.
            conn.send(
                ("error", "result could not be pickled back to the parent",
                 traceback_module.format_exc(), None)
            )
        else:
            # The exception object failed to pickle; resend without it.
            conn.send((outcome[0], outcome[1], outcome[2], None))
    finally:
        conn.close()


def _kill_worker(process) -> None:
    """Terminate a hung worker: SIGTERM, short grace, then SIGKILL."""
    process.terminate()
    process.join(timeout=0.5)
    if process.is_alive():
        process.kill()
        process.join(timeout=5.0)


def _run_points_isolated(
    tasks: List[Tuple[int, SweepPoint]],
    *,
    jobs: int,
    engine: str,
    policy: FailurePolicy,
    propagate: bool,
    finish: Callable[[int, SweepResult], None],
    quarantine: Callable[[PointFailure], None],
) -> None:
    """Run points in per-point worker processes under ``policy``.

    Async submission with a watchdog: up to ``jobs`` workers run
    concurrently, each on its own :class:`multiprocessing.Process` and pipe.
    A worker that returns a result finishes its point; one that raises, dies
    or exceeds ``policy.timeout_s`` fails *that attempt* -- the point is
    rescheduled (exponential backoff, deterministic jitter) until its
    attempts are exhausted, then handed to ``quarantine`` (or, with
    ``propagate=True``, re-raised after in-flight workers are stopped).
    """
    context = multiprocessing.get_context()
    ready = deque(
        _PointTask(index=index, point=point, engine=engine, run_point=point)
        for index, point in tasks
    )
    waiting: List[_PointTask] = []      # backing off until ``not_before``
    inflight: Dict[object, Tuple[_PointTask, object, Optional[float]]] = {}
    fallback = fallback_engine() if policy.on_engine_error == "fallback" else None

    def fail_attempt(task: _PointTask, error: str, trace: str, exc) -> None:
        task.last_error = error
        task.last_traceback = trace
        now = time.monotonic()
        if task.attempt < policy.max_attempts:
            task.not_before = now + policy.backoff(
                sweep_point_key(task.point, engine), task.attempt
            )
            task.attempt += 1
            waiting.append(task)
            return
        if (
            fallback is not None
            and not task.fell_back
            and task.engine != fallback
        ):
            # Graceful degradation: one extra attempt on the exact fallback
            # engine.  Only engines that sample or declare themselves
            # non-deterministic qualify -- a deterministic exact engine
            # would fail the same way again.
            from .. import engines

            failing = engines.get(task.engine)
            if failing.supports_sampling or not failing.deterministic:
                task.fell_back = True
                task.engine = fallback
                # A pinned sampling plan would force the sampled engine
                # right back on (see _run_sweep_point); degrade it to an
                # exact run of the same access stream.
                if task.run_point.sample_plan is not None:
                    task.run_point = replace(task.run_point, sample_plan=None)
                task.not_before = now + policy.backoff(
                    sweep_point_key(task.point, engine), task.attempt
                )
                task.attempt += 1
                waiting.append(task)
                return
        failure = PointFailure(
            point=task.point,
            key=sweep_point_key(task.point, engine),
            attempts=task.attempt,
            error=error,
            traceback=trace,
            engine=task.engine,
        )
        if propagate:
            for process, (_task, conn, _deadline) in list(inflight.items()):
                _kill_worker(process)
                conn.close()
            inflight.clear()
            if isinstance(exc, BaseException):
                raise exc
            raise RuntimeError(
                f"sweep point failed ({error}); worker traceback:\n{trace}"
            )
        quarantine(failure)

    try:
        while ready or waiting or inflight:
            now = time.monotonic()
            if waiting:
                due = [task for task in waiting if task.not_before <= now]
                if due:
                    waiting[:] = [t for t in waiting if t.not_before > now]
                    ready.extend(due)

            while ready and len(inflight) < jobs:
                task = ready.popleft()
                parent_conn, child_conn = context.Pipe(duplex=False)
                process = context.Process(
                    target=_isolated_point_worker,
                    args=(child_conn, task.run_point, task.engine, task.attempt),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                deadline = (
                    time.monotonic() + policy.timeout_s
                    if policy.timeout_s is not None else None
                )
                inflight[process] = (task, parent_conn, deadline)

            if not inflight:
                if waiting:
                    pause = min(task.not_before for task in waiting) - time.monotonic()
                    time.sleep(min(max(pause, 0.001), 0.25))
                continue

            completed = []
            for process, (task, conn, deadline) in inflight.items():
                outcome = None
                if conn.poll(0):
                    try:
                        outcome = conn.recv()
                    except (EOFError, OSError):
                        outcome = (
                            "error",
                            "worker closed its pipe without a result",
                            "", None,
                        )
                    process.join()
                elif not process.is_alive():
                    process.join()
                    outcome = (
                        "error",
                        f"worker died without a result "
                        f"(exit code {process.exitcode}, e.g. killed or OOM)",
                        "", None,
                    )
                elif deadline is not None and time.monotonic() > deadline:
                    _kill_worker(process)
                    outcome = (
                        "error",
                        f"point timed out after {policy.timeout_s:.1f}s "
                        f"(worker killed by the watchdog)",
                        "", None,
                    )
                if outcome is not None:
                    completed.append((process, task, conn, outcome))

            for process, task, conn, outcome in completed:
                del inflight[process]
                conn.close()
                if outcome[0] == "ok":
                    result: SweepResult = outcome[1]
                    result.attempts = task.attempt
                    result.engine_used = task.engine
                    finish(task.index, result)
                else:
                    _tag, error, trace, exc = outcome
                    fail_attempt(task, error, trace, exc)

            if not completed:
                time.sleep(0.005)
    finally:
        for process, (_task, conn, _deadline) in inflight.items():
            _kill_worker(process)
            conn.close()


def run_sweep(
    points: Sequence[SweepPoint],
    *,
    jobs: Optional[int] = None,
    store: Optional[ResultsStore] = None,
    engine: str = "compiled",
    failure_policy: Optional[FailurePolicy] = None,
    on_failure: Optional[Callable[[PointFailure], None]] = None,
) -> List[Optional[SweepResult]]:
    """Run a list of sweep points, optionally over worker processes.

    ``jobs=None`` or ``jobs<=1`` runs in-process (deterministic order, no
    pickling); otherwise up to ``jobs`` worker processes execute points
    concurrently -- one process per point, so a crash or hang is confined to
    its own failure domain.  Results are always returned in input order.
    ``engine`` is validated against the :mod:`repro.engines` registry up
    front, so a typo fails before any simulation starts.

    With a ``store``, points whose content key is already persisted are
    loaded instead of simulated, and every freshly simulated point is
    appended to the store *as soon as it completes* -- interrupting a sweep
    loses at most the in-flight points, and re-running it resumes from the
    completed ones (docs/campaigns.md walks through this).

    Without a ``failure_policy`` a failing point propagates and aborts the
    sweep (completed points are already persisted when a store is in use).
    With one, every point -- even under ``jobs=1`` -- runs in an isolated
    worker process governed by the policy's retries / timeout / fallback;
    points that exhaust their attempts are quarantined to the store's
    ``failures.jsonl`` (and reported through ``on_failure``), their result
    slots are returned as ``None``, and the sweep completes the rest
    (docs/robustness.md).
    """
    from .. import engines

    engines.validate(engine)
    points = list(points)
    results: List[Optional[SweepResult]] = [None] * len(points)

    pending: List[int] = []
    if store is not None:
        for index, point in enumerate(points):
            stored = store.get(sweep_point_key(point, engine))
            if stored is not None:
                results[index] = _sweep_from_stored(point, stored)
            else:
                pending.append(index)
    else:
        pending = list(range(len(points)))

    def finish(index: int, result: SweepResult) -> None:
        results[index] = result
        if store is not None:
            key = sweep_point_key(points[index], engine)
            record = _stored_from_sweep(result, key, engine)
            if failure_policy is None:
                store.put(record)
                return
            try:
                store.put(record)
            except OSError as exc:
                # A failed append must not take the computed result down
                # with it: keep the in-memory result, warn, move on.  The
                # point simply re-runs on the next invocation.
                warnings.warn(
                    f"results store append failed for key {key[:12]}... "
                    f"({exc}); continuing without persisting this point",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def quarantine(failure: PointFailure) -> None:
        if store is not None:
            store.failure_log.append(failure.to_failure_record())
        if on_failure is not None:
            on_failure(failure)

    if failure_policy is None:
        if jobs is None or jobs <= 1 or len(pending) <= 1:
            for index in pending:
                finish(index, _run_sweep_point(points[index], engine))
        else:
            _run_points_isolated(
                [(index, points[index]) for index in pending],
                jobs=min(jobs, len(pending)),
                engine=engine,
                policy=FailurePolicy(max_attempts=1),
                propagate=True,
                finish=finish,
                quarantine=lambda failure: None,
            )
    else:
        _run_points_isolated(
            [(index, points[index]) for index in pending],
            jobs=max(1, min(jobs or 1, max(1, len(pending)))),
            engine=engine,
            policy=failure_policy,
            propagate=False,
            finish=finish,
            quarantine=quarantine,
        )
    return results


def merge_stats(results: Sequence[SweepResult]) -> SimulationStats:
    """Fold the statistics of several sweep results into one aggregate."""
    merged = SimulationStats()
    for result in results:
        merged.merge(result.stats)
    return merged


def _format_directory_cost(table) -> str:
    return "\n".join(f"{k}: {v:.1f} MB" for k, v in table.items())


#: The single experiment registry (canonical order):
#: name -> (runner(context), formatter(result), needs dual-socket context).
#: Both the sequential and the parallel paths iterate this registry -- and so
#: does ``repro report`` -- so a new figure is added in exactly one place.
_EXPERIMENTS: Dict[str, Tuple[Callable, Callable, bool]] = {
    "table1": (table1.run_table1, table1.format_table1, False),
    "fig2": (fig2.run_fig2, fig2.format_fig2, False),
    "fig3": (fig3.run_fig3, fig3.format_fig3, False),
    "fig6": (fig6.run_fig6, fig6.format_fig6, False),
    "fig7": (fig7.run_fig7, fig7.format_fig7, True),
    "fig8": (fig8.run_fig8, fig8.format_fig8, False),
    "fig9": (fig9.run_fig9, fig9.format_fig9, False),
    "broadcast_filter": (
        broadcast_filter.run_broadcast_filter,
        broadcast_filter.format_broadcast_filter,
        False,
    ),
    "directory_cost": (
        lambda _context: directory_cost.storage_cost_table(),
        _format_directory_cost,
        False,
    ),
    "fig10": (fig10.run_fig10, fig10.format_fig10, False),
    "fig11": (fig11.run_fig11, fig11.format_fig11, False),
}

#: Names skipped by ``include_sensitivity=False``.
_SENSITIVITY = ("fig10", "fig11")


def _experiment_names(include_sensitivity: bool) -> List[str]:
    return [n for n in _EXPERIMENTS if include_sensitivity or n not in _SENSITIVITY]


def run_all(
    settings: Optional[ExperimentSettings] = None,
    *,
    include_sensitivity: bool = True,
    stream=sys.stdout,
    store: Optional[ResultsStore] = None,
    names: Optional[Sequence[str]] = None,
    engine: str = "compiled",
) -> Dict[str, object]:
    """Run all experiments sequentially; returns {experiment-name: result}.

    One context is shared across figures (memoised runs are reused, e.g. the
    Fig. 6 simulations by Figs. 8/9) and the returned values are the raw
    per-figure result objects -- unlike :func:`run_all_parallel`, which
    returns formatted report text.  With a ``store``, every simulation is
    read through / persisted to it, so a repeated invocation is pure cache
    hits and ``repro report`` can later rebuild the tables offline.
    ``names`` restricts the run to a subset of the registry (campaigns use
    this for their ``figures`` list).
    """
    settings = settings or ExperimentSettings()
    context = ExperimentContext(settings, store=store, engine=engine)
    dual_context = ExperimentContext(
        settings.dual_socket(), store=store, engine=engine
    )
    results: Dict[str, object] = {}

    for name in names if names is not None else _experiment_names(include_sensitivity):
        runner, formatter, dual = _EXPERIMENTS[name]
        start = time.time()
        result = runner(dual_context if dual else context)
        report = formatter(result)
        elapsed = time.time() - start
        results[name] = result
        print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
        print(report, file=stream)
        stream.flush()
    return results


def _run_named_experiment(
    task: Tuple[str, ExperimentSettings, Optional[str]]
) -> Tuple[str, str, float, str]:
    """Worker entry point: run one named experiment and return its report text.

    Exceptions are caught and returned as a traceback string (the fourth
    element, empty on success) instead of propagating: with a bare
    ``pool.map`` the first raising task used to abort the whole fan-out and
    discard every completed report.
    """
    name, settings, store_path = task
    # This process is one of run_all_parallel's pool workers; nested engine
    # parallelism (sampled-par) must not oversubscribe the machine.
    os.environ[WORKER_ENV] = "1"
    start = time.time()
    try:
        store = ResultsStore(store_path) if store_path is not None else None
        runner, formatter, dual = _EXPERIMENTS[name]
        context = ExperimentContext(
            settings.dual_socket() if dual else settings, store=store
        )
        result = runner(context)
        return name, formatter(result), time.time() - start, ""
    except Exception:
        return name, "", time.time() - start, traceback_module.format_exc()


def run_all_parallel(
    settings: Optional[ExperimentSettings] = None,
    *,
    jobs: int = 2,
    include_sensitivity: bool = True,
    stream=sys.stdout,
    store: Optional[ResultsStore] = None,
    names: Optional[Sequence[str]] = None,
) -> Dict[str, str]:
    """Fan the experiments out over ``jobs`` worker processes.

    Each worker builds its own :class:`ExperimentContext`, so *in-process*
    run sharing is per-worker; pass a ``store`` to share runs across workers
    through the persistent results store instead (workers re-open it by
    path, and duplicated concurrent runs of the same point are harmless --
    identical keys store bit-identical records, last write wins).  Because
    the per-figure result objects are not guaranteed picklable, the workers
    return *formatted report text*: the return value is
    ``{experiment-name: report-text}``, not the result objects of
    :func:`run_all` -- use ``jobs=1`` / :func:`run_all` when structured
    results are needed.

    A raising experiment no longer aborts the fan-out: its error is printed
    (with the worker traceback) alongside the completed reports, and its
    entry in the returned dict is the string ``"FAILED: <traceback>"`` so
    callers can tell partial results from success.  ``names`` restricts the
    run to a subset of the registry, mirroring :func:`run_all`.
    """
    settings = settings or ExperimentSettings()
    store_path = str(store.directory) if store is not None else None
    tasks = [
        (name, settings, store_path)
        for name in (
            names if names is not None else _experiment_names(include_sensitivity)
        )
    ]
    reports: Dict[str, str] = {}
    failed: List[str] = []
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        # Unordered so every completed report is printed even if a later
        # recv or a sibling task fails mid-fan-out.
        for name, report, elapsed, error in pool.imap_unordered(
            _run_named_experiment, tasks
        ):
            if error:
                failed.append(name)
                reports[name] = f"FAILED: {error}"
                print(f"\n### {name}  FAILED  ({elapsed:.1f} s)\n", file=stream)
                print(error, file=stream)
            else:
                reports[name] = report
                print(f"\n### {name}  ({elapsed:.1f} s)\n", file=stream)
                print(report, file=stream)
            stream.flush()
    if store is not None:
        store.reload()  # pick up the records the workers appended
    if failed:
        print(
            f"\n{len(failed)}/{len(tasks)} experiments failed: "
            f"{', '.join(sorted(failed))}",
            file=stream,
        )
        stream.flush()
    # Restore registry order (imap_unordered scrambles it).
    ordered = [name for name, _s, _p in tasks]
    return {name: reports[name] for name in ordered if name in reports}


def main(argv: Optional[List[str]] = None) -> Dict[str, object]:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized runs")
    parser.add_argument("--full", action="store_true", help="EXPERIMENTS.md settings")
    parser.add_argument(
        "--no-sensitivity", action="store_true", help="skip the Fig. 10/11 sweeps"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the figure sweeps (1 = sequential, shared "
             "context, structured results; >1 returns formatted report text)",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="persist every simulation to this results-store directory and "
             "reuse any already stored (shared across --jobs workers and "
             "across invocations; see docs/campaigns.md)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        settings = ExperimentSettings.quick()
    elif args.full:
        settings = ExperimentSettings.full()
    else:
        settings = ExperimentSettings()
    store = ResultsStore(args.store) if args.store is not None else None
    if args.jobs > 1:
        return run_all_parallel(
            settings, jobs=args.jobs,
            include_sensitivity=not args.no_sensitivity, store=store,
        )
    return run_all(
        settings, include_sensitivity=not args.no_sensitivity, store=store
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
