"""Table I: fraction of memory accesses satisfied by a remote socket's memory.

The paper measures, on the baseline (no DRAM cache) quad-socket machine with
the first-touch mapping policy, how many main-memory accesses are served by a
socket other than the requester: ~73-77 % for most workloads (61.6 % for
tunkrank), i.e. only ~26.5 % of accesses enjoy local memory.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.report import format_table
from .common import ExperimentContext, ExperimentSettings

__all__ = ["PAPER_TABLE1", "run_table1", "format_table1", "main"]

#: Remote-memory access fractions reported by the paper (Table I).
PAPER_TABLE1: Dict[str, float] = {
    "facesim": 0.766,
    "streamcluster": 0.736,
    "freqmine": 0.746,
    "fluidanimate": 0.752,
    "canneal": 0.750,
    "tunkrank": 0.616,
    "nutch": 0.752,
    "cassandra": 0.752,
    "classification": 0.752,
}


def run_table1(context: Optional[ExperimentContext] = None) -> Dict[str, float]:
    """Measure the remote-memory access fraction per workload.

    Returns ``{workload: remote_fraction}`` using the baseline design.
    """
    context = context or ExperimentContext(ExperimentSettings())
    fractions: Dict[str, float] = {}
    for workload in context.workloads():
        record = context.run(workload, "baseline")
        fractions[workload] = record.stats.remote_memory_fraction()
    return fractions


def format_table1(measured: Dict[str, float]) -> str:
    """Render measured-vs-paper rows in the paper's layout."""
    rows = []
    for workload, fraction in measured.items():
        paper = PAPER_TABLE1.get(workload)
        rows.append(
            [
                workload,
                f"{fraction * 100:.1f}%",
                f"{paper * 100:.1f}%" if paper is not None else "-",
            ]
        )
    average = sum(measured.values()) / max(1, len(measured))
    paper_avg = sum(PAPER_TABLE1.values()) / len(PAPER_TABLE1)
    rows.append(["average", f"{average * 100:.1f}%", f"{paper_avg * 100:.1f}%"])
    return format_table(
        ["workload", "measured remote", "paper remote"],
        rows,
        title="Table I: fraction of memory accesses satisfied by remote memory",
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, float]:
    """Run the experiment and print the table (module entry point)."""
    context = ExperimentContext(settings)
    measured = run_table1(context)
    print(format_table1(measured))
    return measured


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
