"""Fig. 2: NUMA bottleneck analysis.

The paper idealises one machine parameter at a time on the baseline
(no-DRAM-cache) quad-socket system and reports the speedup over the
unmodified baseline:

* ``0_qpi_lat``      -- zero inter-socket communication latency,
* ``inf_mem_bw``     -- infinite memory bandwidth,
* ``inf_qpi_bw``     -- infinite inter-socket bandwidth,
* ``inf_mem_bw + inf_qpi_bw`` -- both bandwidth idealisations together.

The paper's finding (and this reproduction's expected shape): the latency
idealisation yields 14-60 % speedups while the bandwidth idealisations yield
almost nothing, so inter-socket latency -- not bandwidth -- is the NUMA
bottleneck.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..stats.report import format_series, geometric_mean
from .common import ExperimentContext, ExperimentSettings, speedup

__all__ = ["IDEALISATIONS", "run_fig2", "format_fig2", "main"]

#: The idealised configurations, in the paper's legend order.
IDEALISATIONS = ("0_qpi_lat", "inf_mem_bw", "inf_qpi_bw", "inf_mem_bw + inf_qpi_bw")


def _idealisation_overrides(name: str) -> Dict[str, bool]:
    return {
        "0_qpi_lat": dict(zero_qpi_latency=True),
        "inf_mem_bw": dict(infinite_memory_bandwidth=True),
        "inf_qpi_bw": dict(infinite_qpi_bandwidth=True),
        "inf_mem_bw + inf_qpi_bw": dict(
            infinite_memory_bandwidth=True, infinite_qpi_bandwidth=True
        ),
    }[name]


def run_fig2(context: Optional[ExperimentContext] = None) -> Dict[str, Dict[str, float]]:
    """Measure idealisation speedups; returns {workload: {idealisation: speedup}}."""
    context = context or ExperimentContext(ExperimentSettings())
    series: Dict[str, Dict[str, float]] = {}
    for workload in context.workloads():
        baseline = context.run(workload, "baseline")
        row: Dict[str, float] = {}
        for idealisation in IDEALISATIONS:
            config = context.make_config("baseline").with_idealisation(
                **_idealisation_overrides(idealisation)
            )
            record = context.run(
                workload, "baseline", config=config,
            )
            row[idealisation] = speedup(baseline, record)
        series[workload] = row
    series["geomean"] = {
        idealisation: geometric_mean(row[idealisation] for row in series.values() if idealisation in row)
        for idealisation in IDEALISATIONS
    }
    return series


def format_fig2(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(series, title="Fig. 2: NUMA bottleneck analysis (speedup vs. baseline)")


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig2(context)
    print(format_fig2(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
