"""Section VI-C: reducing broadcast traffic with the TLB private/shared filter.

The paper evaluates the page-classification optimisation of section IV-D in
two settings:

* on the multi-threaded workloads, filtering broadcasts for private pages
  removes only ~5 % of the broadcast messages (and a negligible share of the
  overall inter-socket bytes, which are dominated by data packets);
* on the single-threaded, memory-intensive ``mcf``, every page stays
  thread-private, so *all* of C3D's write-related broadcast traffic is
  eliminated -- although the total traffic change is still small because
  reads dominate.

The experiment runs C3D with and without ``broadcast_filter`` and reports
the fraction of broadcasts elided plus the change in inter-socket bytes.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..stats.report import format_series
from .common import ExperimentContext, ExperimentSettings

__all__ = ["run_broadcast_filter", "format_broadcast_filter", "main"]


def run_broadcast_filter(
    context: Optional[ExperimentContext] = None,
    *,
    workloads: Optional[Iterable[str]] = None,
    include_mcf: bool = True,
) -> Dict[str, Dict[str, float]]:
    """Measure the effect of the TLB broadcast filter on C3D.

    Returns, per workload: the fraction of potential broadcasts elided and
    the inter-socket traffic of filtered C3D relative to plain C3D.
    """
    context = context or ExperimentContext(ExperimentSettings())
    workload_list = list(workloads) if workloads is not None else context.workloads()
    if include_mcf:
        workload_list = workload_list + ["mcf"]

    series: Dict[str, Dict[str, float]] = {}
    for workload in workload_list:
        plain = context.run(workload, "c3d")
        filtered_config = context.make_config("c3d", broadcast_filter=True)
        filtered = context.run(
            workload, "c3d", config=filtered_config, cache_key_extra=("tlb-filter",)
        )
        broadcasts = filtered.stats.broadcasts
        elided = filtered.stats.broadcasts_elided
        potential = broadcasts + elided
        series[workload] = {
            "broadcasts_elided": elided / potential if potential else 0.0,
            "traffic_vs_plain_c3d": (
                filtered.inter_socket_bytes / plain.inter_socket_bytes
                if plain.inter_socket_bytes
                else float("nan")
            ),
        }
    return series


def format_broadcast_filter(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series,
        title="Section VI-C: TLB broadcast filtering (C3D + filter vs. plain C3D)",
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_broadcast_filter(context)
    print(format_broadcast_filter(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
