"""Fig. 11: sensitivity to inter-socket (QPI) latency (5 / 10 / 20 / 30 ns per hop).

The paper varies the per-hop inter-socket latency and reports the average
speedup of snoopy, full-dir and c3d over the baseline.  Even at an
unrealistically fast 5 ns per hop C3D keeps a ~10 % gain, and its advantage
grows with the inter-socket latency because that is exactly the cost it
removes from the critical path; it outperforms snoopy and full-dir at every
point.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterable, Optional, Sequence

from ..stats.report import format_series, geometric_mean
from .common import ExperimentContext, ExperimentSettings, speedup
from .fig10 import SENSITIVITY_DESIGNS

__all__ = ["HOP_LATENCY_POINTS_NS", "run_fig11", "format_fig11", "main"]

HOP_LATENCY_POINTS_NS: Sequence[float] = (5.0, 10.0, 20.0, 30.0)


def run_fig11(
    context: Optional[ExperimentContext] = None,
    *,
    workloads: Optional[Iterable[str]] = None,
    hop_latencies: Sequence[float] = HOP_LATENCY_POINTS_NS,
    designs: Sequence[str] = SENSITIVITY_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Average speedup of each design at each inter-socket hop latency."""
    context = context or ExperimentContext(ExperimentSettings())
    workload_list = list(workloads) if workloads is not None else context.workloads()
    series: Dict[str, Dict[str, float]] = {}

    for hop_latency in hop_latencies:
        per_design: Dict[str, list] = {design: [] for design in designs}
        for workload in workload_list:
            baseline_config = context.make_config("baseline")
            baseline_config = replace(
                baseline_config,
                interconnect=replace(baseline_config.interconnect, hop_latency_ns=hop_latency),
            )
            baseline = context.run(
                workload, "baseline", config=baseline_config,
                cache_key_extra=("fig11", hop_latency),
            )
            for design in designs:
                config = context.make_config(design)
                config = replace(
                    config,
                    interconnect=replace(config.interconnect, hop_latency_ns=hop_latency),
                )
                record = context.run(
                    workload, design, config=config, cache_key_extra=("fig11", hop_latency)
                )
                per_design[design].append(speedup(baseline, record))
        series[f"{hop_latency:.0f}ns"] = {
            design: geometric_mean(values) for design, values in per_design.items()
        }
    return series


def format_fig11(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 11: speedup vs. inter-socket latency (geomean over workloads)"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig11(context)
    print(format_fig11(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
