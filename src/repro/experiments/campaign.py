"""Resumable experiment campaigns: declarative sweep grids + figure sets.

A *campaign* is a JSON file describing a batch of experiments as data: a
fidelity profile (:class:`~repro.experiments.common.ExperimentSettings`),
a list of figure/table modules to reproduce, and any number of *sweep
grids* -- cartesian products of designs x workload sources (synthetic
benchmarks, scenarios, recorded trace directories) x machine topologies
that expand into :class:`~repro.experiments.runner.SweepPoint` lists.
Example (docs/campaigns.md documents every field)::

    {
      "name": "quick-smoke",
      "settings": {"profile": "quick"},
      "figures": ["table1", "fig6"],
      "sweeps": [
        {"protocols": ["baseline", "c3d"],
         "workloads": ["facesim"],
         "topologies": [{"sockets": 2, "cores_per_socket": 2}]}
      ]
    }

Campaigns execute against a persistent
:class:`~repro.stats.store.ResultsStore`: every completed point is appended
to the store immediately, already-stored points are skipped, and an
interrupted ``repro campaign run`` simply resumes where it stopped when
re-invoked -- the merged statistics are bit-identical to an uninterrupted
run (``tests/system/test_campaign_resume.py`` asserts this).  ``repro
campaign status`` reports completion without simulating anything, ``repro
campaign clean`` empties the store, and ``repro report`` renders the stored
results into Markdown/CSV tables (:mod:`repro.experiments.report`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .. import engines
from ..stats.counters import SimulationStats
from ..stats.store import MissingRunError, ResultsStore
from ..system.config import PROTOCOL_NAMES
from ..workloads.registry import WORKLOAD_SPECS
from .common import ExperimentContext, ExperimentSettings
from . import runner as runner_module
from .runner import (
    FailurePolicy,
    PointFailure,
    SweepPoint,
    SweepResult,
    run_all,
    run_sweep,
    sweep_point_key,
)

__all__ = [
    "CampaignError",
    "SweepGrid",
    "CampaignSpec",
    "CampaignSummary",
    "run_campaign",
    "campaign_status",
    "merged_point_stats",
    "main",
]

PathLike = Union[str, Path]

#: Settings profiles selectable from a campaign spec.
_PROFILES = {
    "default": ExperimentSettings,
    "quick": ExperimentSettings.quick,
    "full": ExperimentSettings.full,
}


class CampaignError(ValueError):
    """A campaign spec is malformed (unknown field, bad name, empty grid)."""


def _check_keys(mapping: Mapping, allowed: Sequence[str], where: str) -> None:
    unknown = sorted(set(mapping) - set(allowed))
    if unknown:
        raise CampaignError(
            f"unknown {where} field(s) {unknown}; expected a subset of {sorted(allowed)}"
        )


@dataclass(frozen=True)
class SweepGrid:
    """One cartesian sweep axis-set of a campaign.

    ``protocols`` x (``workloads`` + ``scenarios`` + ``trace_dirs`` +
    ``clones``) x ``topologies`` expand to one :class:`SweepPoint` each
    (``clones`` are clone-spec JSON paths from ``repro analyze --clone-out``,
    docs/ingestion.md); the scalar fields
    (scale, access counts, placement policy, ...) apply to every point of
    the grid and default to the campaign's settings profile.  A
    ``sample_plan`` spec string (docs/sampling.md) runs every point of the
    grid sampled; sampled points key separately from exact ones in the
    results store, so mixed campaigns never collide.  ``engine_jobs`` sets
    the per-point worker count for engines with their own process pool
    (``sampled-par``); it never reaches store keys, and campaign-level
    ``--jobs`` parallelism clamps it to 1 inside point workers.
    """

    protocols: Tuple[str, ...] = ("baseline", "c3d")
    workloads: Tuple[str, ...] = ()
    scenarios: Tuple[str, ...] = ()
    trace_dirs: Tuple[str, ...] = ()
    clones: Tuple[str, ...] = ()
    #: (num_sockets, cores_per_socket) machine shapes.
    topologies: Tuple[Tuple[int, int], ...] = ()
    scale: int = 512
    accesses_per_thread: int = 3000
    warmup_accesses_per_thread: int = 1000
    allocation_policy: str = "first_touch"
    prewarm: bool = True
    broadcast_filter: bool = False
    seed: Optional[int] = None
    sample_plan: Optional[str] = None
    engine_jobs: Optional[int] = None

    def sources(self) -> List[Tuple[str, str]]:
        """The workload sources as ``(kind, value)`` pairs, in spec order."""
        return (
            [("workload", name) for name in self.workloads]
            + [("scenario", name) for name in self.scenarios]
            + [("trace_dir", path) for path in self.trace_dirs]
            + [("clone", path) for path in self.clones]
        )

    def expand(self) -> List[SweepPoint]:
        """Expand to sweep points (protocol-major, then source, topology)."""
        points: List[SweepPoint] = []
        for protocol in self.protocols:
            for kind, value in self.sources():
                for num_sockets, cores_per_socket in self.topologies:
                    point = SweepPoint(
                        workload=value if kind == "workload" else "facesim",
                        protocol=protocol,
                        scale=self.scale,
                        accesses_per_thread=self.accesses_per_thread,
                        warmup_accesses_per_thread=self.warmup_accesses_per_thread,
                        num_sockets=num_sockets,
                        cores_per_socket=cores_per_socket,
                        allocation_policy=self.allocation_policy,
                        prewarm=self.prewarm,
                        broadcast_filter=self.broadcast_filter,
                        seed=self.seed,
                        trace_dir=value if kind == "trace_dir" else None,
                        scenario=value if kind == "scenario" else None,
                        clone=value if kind == "clone" else None,
                        sample_plan=self.sample_plan,
                        engine_jobs=self.engine_jobs,
                    )
                    points.append(point)
        return points


@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign description."""

    name: str
    settings: ExperimentSettings = field(default_factory=ExperimentSettings)
    figures: Tuple[str, ...] = ()
    sweeps: Tuple[SweepGrid, ...] = ()
    engine: str = "compiled"
    #: Default results-store directory (CLI ``--store`` overrides it).
    store: Optional[str] = None

    def expand(self) -> List[SweepPoint]:
        """All sweep points of the campaign, in deterministic spec order."""
        points: List[SweepPoint] = []
        for grid in self.sweeps:
            points.extend(grid.expand())
        return points

    def store_directory(self, override: Optional[PathLike] = None) -> Path:
        """Resolve the store directory (CLI override > spec > results/<name>)."""
        if override is not None:
            return Path(override)
        if self.store is not None:
            return Path(self.store)
        return Path("results") / self.name

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------

    @classmethod
    def from_file(cls, path: PathLike) -> "CampaignSpec":
        """Load and validate a campaign spec from a JSON file."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CampaignError(f"cannot read campaign spec {path}: {exc}") from None
        except ValueError as exc:
            raise CampaignError(f"{path} is not valid JSON: {exc}") from None
        return cls.from_dict(payload, where=str(path))

    @classmethod
    def from_dict(cls, payload: Mapping, *, where: str = "campaign") -> "CampaignSpec":
        """Build a validated spec from a JSON-shaped mapping."""
        if not isinstance(payload, Mapping):
            raise CampaignError(f"{where}: campaign spec must be a JSON object")
        _check_keys(
            payload,
            ("name", "settings", "figures", "sweeps", "engine", "store"),
            "campaign",
        )
        name = payload.get("name")
        if not name or not isinstance(name, str):
            raise CampaignError(f"{where}: campaign 'name' must be a non-empty string")

        settings = _parse_settings(payload.get("settings", {}))

        figures = tuple(payload.get("figures", ()))
        known_figures = tuple(runner_module._EXPERIMENTS)
        for figure in figures:
            if figure not in known_figures:
                raise CampaignError(
                    f"unknown figure {figure!r}; expected one of {list(known_figures)}"
                )

        engine = payload.get("engine", "compiled")
        try:
            engines.validate(engine)
        except ValueError as exc:
            raise CampaignError(str(exc)) from None
        sweeps = tuple(
            _parse_grid(grid, settings, index)
            for index, grid in enumerate(payload.get("sweeps", ()))
        )
        if not figures and not sweeps:
            raise CampaignError(
                f"{where}: campaign has neither 'figures' nor 'sweeps' -- nothing to run"
            )
        return cls(
            name=name,
            settings=settings,
            figures=figures,
            sweeps=sweeps,
            engine=engine,
            store=payload.get("store"),
        )


def _parse_settings(payload: Mapping) -> ExperimentSettings:
    """Parse the ``settings`` block: a profile name plus field overrides."""
    if not isinstance(payload, Mapping):
        raise CampaignError("'settings' must be a JSON object")
    allowed = ("profile",) + tuple(f.name for f in fields(ExperimentSettings))
    _check_keys(payload, allowed, "settings")
    profile = payload.get("profile", "default")
    if profile not in _PROFILES:
        raise CampaignError(
            f"unknown settings profile {profile!r}; expected one of {sorted(_PROFILES)}"
        )
    settings = _PROFILES[profile]()
    overrides = {k: v for k, v in payload.items() if k != "profile"}
    if overrides:
        settings = replace(settings, **overrides)
    return settings


def _parse_grid(payload: Mapping, settings: ExperimentSettings, index: int) -> SweepGrid:
    """Parse one ``sweeps[i]`` block, defaulting scalars to ``settings``."""
    where = f"sweeps[{index}]"
    if not isinstance(payload, Mapping):
        raise CampaignError(f"{where} must be a JSON object")
    allowed = tuple(f.name for f in fields(SweepGrid))
    _check_keys(payload, allowed, where)

    protocols = tuple(payload.get("protocols", ("baseline", "c3d")))
    for protocol in protocols:
        if protocol not in PROTOCOL_NAMES:
            raise CampaignError(
                f"{where}: unknown protocol {protocol!r}; "
                f"expected one of {list(PROTOCOL_NAMES)}"
            )
    workloads = tuple(payload.get("workloads", ()))
    for workload in workloads:
        if workload not in WORKLOAD_SPECS:
            raise CampaignError(
                f"{where}: unknown workload {workload!r}; "
                f"expected one of {sorted(WORKLOAD_SPECS)}"
            )
    scenarios = tuple(payload.get("scenarios", ()))
    trace_dirs = tuple(payload.get("trace_dirs", ()))
    clones = tuple(payload.get("clones", ()))
    if not (workloads or scenarios or trace_dirs or clones):
        raise CampaignError(
            f"{where}: needs at least one of 'workloads', 'scenarios', "
            f"'trace_dirs', 'clones'"
        )

    raw_topologies = payload.get(
        "topologies",
        ({"sockets": settings.num_sockets,
          "cores_per_socket": settings.cores_per_socket},),
    )
    topologies = []
    for topo in raw_topologies:
        if not isinstance(topo, Mapping):
            raise CampaignError(f"{where}: each topology must be an object")
        _check_keys(topo, ("sockets", "cores_per_socket"), f"{where} topology")
        try:
            topologies.append(
                (int(topo.get("sockets", 4)), int(topo.get("cores_per_socket", 8)))
            )
        except (TypeError, ValueError):
            raise CampaignError(
                f"{where}: topology sockets/cores_per_socket must be integers, "
                f"got {dict(topo)}"
            ) from None

    sample_plan = payload.get("sample_plan")
    if sample_plan is not None:
        from ..stats.sampling import SamplingPlan

        try:
            SamplingPlan.from_spec(sample_plan)
        except ValueError as exc:
            raise CampaignError(f"{where}: bad sample_plan: {exc}") from None

    engine_jobs = payload.get("engine_jobs")
    if engine_jobs is not None:
        try:
            engine_jobs = int(engine_jobs)
        except (TypeError, ValueError):
            raise CampaignError(
                f"{where}: engine_jobs must be an integer, got {engine_jobs!r}"
            ) from None
        if engine_jobs < 1:
            raise CampaignError(f"{where}: engine_jobs must be >= 1")

    return SweepGrid(
        protocols=protocols,
        workloads=workloads,
        scenarios=scenarios,
        trace_dirs=trace_dirs,
        clones=clones,
        topologies=tuple(topologies),
        scale=payload.get("scale", settings.scale),
        accesses_per_thread=payload.get(
            "accesses_per_thread", settings.accesses_per_thread
        ),
        warmup_accesses_per_thread=payload.get(
            "warmup_accesses_per_thread", settings.warmup_accesses_per_thread
        ),
        allocation_policy=payload.get(
            "allocation_policy", settings.allocation_policy
        ),
        prewarm=payload.get("prewarm", settings.prewarm),
        broadcast_filter=payload.get("broadcast_filter", False),
        seed=payload.get("seed", settings.seed),
        sample_plan=sample_plan,
        engine_jobs=engine_jobs,
    )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


@dataclass
class CampaignSummary:
    """Outcome of one ``run_campaign`` invocation."""

    name: str
    total_points: int
    executed_points: int
    cached_points: int
    figures: Tuple[str, ...]
    figure_store_hits: int
    figure_store_misses: int
    wall_clock_s: float
    #: Points quarantined this invocation (exhausted their retry budget).
    failed_points: int = 0
    results: List[Optional[SweepResult]] = field(default_factory=list, repr=False)
    figure_results: Dict[str, object] = field(default_factory=dict, repr=False)
    failures: List[PointFailure] = field(default_factory=list, repr=False)

    def format(self) -> str:
        """One parse-friendly summary line (the CI smoke greps it)."""
        counts = f"{self.executed_points} executed, {self.cached_points} cached"
        if self.failed_points:
            # Appended only when non-zero so the fault-free line stays
            # byte-stable for the CI greps.
            counts += f", {self.failed_points} failed"
        parts = [f"campaign '{self.name}': {self.total_points} points ({counts})"]
        if self.figures:
            parts.append(
                f"{len(self.figures)} figures "
                f"({self.figure_store_misses} runs simulated, "
                f"{self.figure_store_hits} cached)"
            )
        parts.append(f"{self.wall_clock_s:.1f} s")
        return ", ".join(parts)


def run_campaign(
    spec: CampaignSpec,
    store: ResultsStore,
    *,
    jobs: int = 1,
    stream=sys.stdout,
    failure_policy: Optional[FailurePolicy] = FailurePolicy(),
) -> CampaignSummary:
    """Execute a campaign against a results store, resuming automatically.

    Sweep points already in the store are skipped; fresh points are appended
    to the store the moment they complete, so an interrupted run loses at
    most the in-flight points and the next invocation continues from there.
    Figures run after the sweeps through store-backed contexts, so their
    simulations are cached and skipped the same way.

    Sweep points run fault-tolerantly by default (docs/robustness.md): each
    point is retried per ``failure_policy`` and, if it keeps failing, is
    quarantined to the store's ``failures.jsonl`` while the campaign
    completes the rest -- the summary reports them as ``failed_points``.
    Pass ``failure_policy=None`` for the legacy fail-fast behaviour, where
    the first failing point aborts the campaign.  A quarantined point is
    *not* blacklisted: the next invocation retries it.
    """
    started = time.time()
    points = spec.expand()
    cached = sum(
        1 for point in points if sweep_point_key(point, spec.engine) in store
    )
    failures: List[PointFailure] = []
    results = run_sweep(
        points, jobs=jobs, store=store, engine=spec.engine,
        failure_policy=failure_policy, on_failure=failures.append,
    )
    for failure in failures:
        print(
            f"point FAILED after {failure.attempts} attempt(s) "
            f"[{failure.engine}]: {failure.error} "
            f"(quarantined to {store.failures_path})",
            file=stream,
        )

    hits_before, misses_before = store.hits, store.misses
    figure_results: Dict[str, object] = {}
    if spec.figures:
        figure_results = run_all(
            spec.settings, names=spec.figures, store=store,
            engine=spec.engine, stream=stream,
        )

    summary = CampaignSummary(
        name=spec.name,
        total_points=len(points),
        executed_points=len(points) - cached - len(failures),
        cached_points=cached,
        figures=spec.figures,
        figure_store_hits=store.hits - hits_before,
        figure_store_misses=store.misses - misses_before,
        wall_clock_s=time.time() - started,
        failed_points=len(failures),
        results=results,
        figure_results=figure_results,
        failures=failures,
    )
    print(summary.format(), file=stream)
    return summary


def campaign_status(spec: CampaignSpec, store: ResultsStore) -> Dict[str, object]:
    """Completion state of a campaign without simulating anything.

    Returns ``{"points_done", "points_total", "points_quarantined",
    "figures": {name: bool}}``; figure completeness is probed by replaying
    the figure through an *offline* context (pure store lookups -- a missing
    run means incomplete).  ``points_quarantined`` counts the campaign's
    points present in the store's ``failures.jsonl`` sidecar but not yet
    completed -- they re-run on the next invocation (docs/robustness.md).

    Point counting consults only the store's key index
    (:meth:`~repro.stats.store.ResultsStore.known_keys`, a raw scan of the
    shard files): no record body is parsed, so status on a store of
    millions of results costs one sequential read, not a full load --
    ``tests/experiments/test_status_index.py`` pins that.  (Figure
    probing, when the spec names figures, does fetch the records it
    replays.)
    """
    points = spec.expand()
    stored_keys = store.known_keys()
    campaign_keys = {sweep_point_key(point, spec.engine) for point in points}
    done = sum(
        1 for point in points
        if sweep_point_key(point, spec.engine) in stored_keys
    )
    quarantined = len(store.failure_log.keys() & campaign_keys - stored_keys)
    figures: Dict[str, bool] = {}
    if spec.figures:
        context = ExperimentContext(
            spec.settings, store=store, offline=True, engine=spec.engine
        )
        dual_context = ExperimentContext(
            spec.settings.dual_socket(), store=store, offline=True, engine=spec.engine
        )
        for name in spec.figures:
            figure_runner, _formatter, dual = runner_module._EXPERIMENTS[name]
            try:
                figure_runner(dual_context if dual else context)
            except MissingRunError:
                figures[name] = False
            else:
                figures[name] = True
    return {
        "points_done": done,
        "points_total": len(points),
        "points_quarantined": quarantined,
        "figures": figures,
    }


def merged_point_stats(
    spec: CampaignSpec, store: ResultsStore, *, skip_missing: bool = False
) -> SimulationStats:
    """Fold the stored statistics of every sweep point, in expansion order.

    Raises :class:`~repro.stats.store.MissingRunError` if any point has not
    been run yet; with ``skip_missing=True`` absent points (e.g. quarantined
    ones) are skipped instead, folding only the surviving points.  Because
    the fold order is the deterministic expansion order (not completion
    order), the aggregate is bit-identical whether the campaign ran cold,
    resumed, fanned out over workers, or survived injected faults.
    """
    merged = SimulationStats()
    for point in spec.expand():
        key = sweep_point_key(point, spec.engine)
        stored = store.get(key)
        if stored is None:
            if skip_missing:
                continue
            raise MissingRunError(key, runner_module.sweep_point_payload(point, spec.engine))
        merged.merge(stored.stats)
    return merged


# ----------------------------------------------------------------------
# CLI (`repro campaign ...`)
# ----------------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    from ..cli_common import store_options

    def common():
        # The unified --store/--json pair every store-touching subcommand
        # shares (repro.cli_common).
        return store_options(
            store_help="results-store directory (default: the spec's "
                       "'store' field, else results/<name>)"
        )

    parser = argparse.ArgumentParser(
        prog="repro campaign",
        description="Run, inspect or reset resumable experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", parents=[common()],
                                help="run a campaign (resumes automatically)")
    run_parser.add_argument("spec", help="campaign JSON file (docs/campaigns.md)")
    run_parser.add_argument("--jobs", type=int, default=1,
                            help="worker processes for the sweep points")
    run_parser.add_argument("--max-attempts", type=int, default=3,
                            help="attempts per sweep point before it is "
                                 "quarantined to failures.jsonl (default: 3)")
    run_parser.add_argument("--timeout", type=float, default=None, metavar="S",
                            help="per-point wall-clock budget in seconds; a "
                                 "point past it is killed and counted as a "
                                 "failed attempt (default: no timeout)")
    run_parser.add_argument("--retry-backoff", type=float, default=0.25,
                            metavar="S",
                            help="first retry delay in seconds, doubling per "
                                 "attempt with deterministic jitter "
                                 "(default: 0.25)")
    run_parser.add_argument("--on-engine-error", choices=("fail", "fallback"),
                            default="fail",
                            help="'fallback' re-runs a point that keeps "
                                 "failing on a sampled/non-deterministic "
                                 "engine once on the exact engine "
                                 "(default: fail)")
    run_parser.add_argument("--no-fault-tolerance", action="store_true",
                            help="legacy fail-fast mode: the first failing "
                                 "point aborts the campaign")

    status_parser = sub.add_parser("status", parents=[common()],
                                   help="report completion without running")
    status_parser.add_argument("spec")

    clean_parser = sub.add_parser("clean", parents=[common()],
                                  help="delete a campaign's stored results")
    clean_parser.add_argument("spec")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = CampaignSpec.from_file(args.spec)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    store = ResultsStore(spec.store_directory(args.store))

    if args.command == "run":
        if args.no_fault_tolerance:
            policy = None
        else:
            policy = FailurePolicy(
                max_attempts=args.max_attempts,
                timeout_s=args.timeout,
                backoff_s=args.retry_backoff,
                on_engine_error=args.on_engine_error,
            )
        summary = run_campaign(spec, store, jobs=args.jobs, failure_policy=policy,
                               # keep stdout pure JSON; progress goes to stderr
                               stream=sys.stderr if args.json else sys.stdout)
        if args.json:
            print(json.dumps({
                "name": spec.name,
                "total_points": summary.total_points,
                "executed": summary.executed_points,
                "cached": summary.cached_points,
                "failed": summary.failed_points,
            }, sort_keys=True))
        return 1 if summary.failed_points else 0
    if args.command == "status":
        status = campaign_status(spec, store)
        if args.json:
            print(json.dumps({"name": spec.name, **status}, sort_keys=True))
            all_done = (status["points_done"] == status["points_total"]
                        and all(status["figures"].values()))
            return 0 if all_done else 1
        print(
            f"campaign '{spec.name}': {status['points_done']}/"
            f"{status['points_total']} points complete"
        )
        if status["points_quarantined"]:
            print(
                f"  {status['points_quarantined']} point(s) quarantined in "
                f"{store.failures_path} (will retry on the next run)"
            )
        for name, complete in status["figures"].items():
            print(f"  figure {name}: {'complete' if complete else 'incomplete'}")
        all_points = status["points_done"] == status["points_total"]
        all_figures = all(status["figures"].values())
        return 0 if all_points and all_figures else 1
    if args.command == "clean":
        removed = store.clean()
        if args.json:
            print(json.dumps({"removed": removed,
                              "store": str(store.directory)}, sort_keys=True))
        else:
            print(f"removed {removed} stored result(s) from {store.directory}")
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via `repro campaign`
    sys.exit(main())
