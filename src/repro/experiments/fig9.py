"""Fig. 9: inter-socket traffic, normalised to the no-DRAM-cache baseline.

The paper reports the bytes crossing the inter-socket links for each coherent
DRAM-cache design relative to the baseline: C3D generates 35.9 % less traffic
than the baseline (the DRAM caches filter remote memory reads), and only
about 5 % more than the full-directory designs (the broadcast invalidations
are small control packets, while the bulk of the traffic is data).
Snoopy is far worse because every miss broadcasts snoops to every socket.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..stats.report import format_series
from .common import DRAM_CACHE_DESIGNS, ExperimentContext, ExperimentSettings

__all__ = ["PAPER_C3D_REDUCTION", "run_fig9", "format_fig9", "main"]

#: Paper: C3D reduces inter-socket traffic by 35.9 % on average.
PAPER_C3D_REDUCTION = 0.359


def run_fig9(
    context: Optional[ExperimentContext] = None,
    *,
    designs: Iterable[str] = DRAM_CACHE_DESIGNS,
) -> Dict[str, Dict[str, float]]:
    """Measure normalised inter-socket bytes per design per workload."""
    context = context or ExperimentContext(ExperimentSettings())
    designs = tuple(designs)
    series: Dict[str, Dict[str, float]] = {}
    for workload in context.workloads():
        baseline_bytes = context.run(workload, "baseline").inter_socket_bytes or 1
        series[workload] = {
            design: context.run(workload, design).inter_socket_bytes / baseline_bytes
            for design in designs
        }
    series["average"] = {
        design: sum(row[design] for name, row in series.items() if name != "average")
        / len(series)
        for design in designs
    }
    return series


def format_fig9(series: Dict[str, Dict[str, float]]) -> str:
    return format_series(
        series, title="Fig. 9: inter-socket traffic (normalised to no DRAM cache)"
    )


def main(settings: Optional[ExperimentSettings] = None) -> Dict[str, Dict[str, float]]:
    context = ExperimentContext(settings)
    series = run_fig9(context)
    print(format_fig9(series))
    return series


if __name__ == "__main__":  # pragma: no cover - manual invocation
    main()
