"""Inter-socket packet definitions.

Table II specifies 16-byte control packets and 80-byte data packets (64-byte
payload plus header).  Every inter-socket message belongs to one of a small
number of classes, which the statistics module uses to break down traffic
(e.g. the broadcast-invalidation traffic studied in section VI-C is entirely
control traffic, which is why its byte contribution is small).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PacketKind", "MessageClass", "Packet", "CONTROL_PACKET_BYTES", "DATA_PACKET_BYTES"]

#: Default packet sizes from Table II.
CONTROL_PACKET_BYTES = 16
DATA_PACKET_BYTES = 80


class PacketKind(enum.Enum):
    """Physical packet size class."""

    CONTROL = "control"
    DATA = "data"

    # Enum's default __hash__ is a Python-level function; identity hashing is
    # equivalent for enum members and stays in C on the hot traffic counters.
    __hash__ = object.__hash__


class MessageClass(enum.Enum):
    """Semantic class of an inter-socket message (for traffic breakdowns)."""

    REQUEST = "request"              # GetS / GetX / Upgrade forwarded to the home
    SNOOP = "snoop"                  # snoop probes (snoopy protocol)
    INVALIDATION = "invalidation"    # directed invalidations
    BROADCAST_INVALIDATION = "broadcast_invalidation"  # C3D untracked-write broadcasts
    ACK = "ack"                      # acknowledgements / completion messages
    DATA_RESPONSE = "data_response"  # cache-block-carrying responses
    WRITEBACK = "writeback"          # PutX / memory write-through data
    FORWARD = "forward"              # home-to-owner forwarded requests

    __hash__ = object.__hash__       # identity hashing, C-level (hot counters)

    @property
    def kind(self) -> PacketKind:
        """Physical packet kind carrying this message class."""
        if self in (MessageClass.DATA_RESPONSE, MessageClass.WRITEBACK):
            return PacketKind.DATA
        return PacketKind.CONTROL


@dataclass(frozen=True)
class Packet:
    """A single inter-socket packet."""

    src: int
    dst: int
    message_class: MessageClass
    size_bytes: int

    @classmethod
    def control(cls, src: int, dst: int, message_class: MessageClass,
                size_bytes: int = CONTROL_PACKET_BYTES) -> "Packet":
        return cls(src=src, dst=dst, message_class=message_class, size_bytes=size_bytes)

    @classmethod
    def data(cls, src: int, dst: int, message_class: MessageClass,
             size_bytes: int = DATA_PACKET_BYTES) -> "Packet":
        return cls(src=src, dst=dst, message_class=message_class, size_bytes=size_bytes)

    @property
    def is_data(self) -> bool:
        return self.message_class.kind is PacketKind.DATA
