"""Inter-socket interconnect topologies.

The paper models a ring for the 4-socket machine and a point-to-point link
for the 2-socket machine (Table II).  A topology answers two questions:

* how many hops separate two sockets (each hop costs the configured
  round-trip latency contribution), and
* which directed links a packet traverses (for bandwidth accounting).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Tuple

__all__ = ["Topology", "RingTopology", "PointToPointTopology", "FullMeshTopology", "make_topology"]


class Topology(ABC):
    """Abstract socket-to-socket topology."""

    name = "abstract"

    def __init__(self, num_sockets: int) -> None:
        if num_sockets < 1:
            raise ValueError("num_sockets must be >= 1")
        self.num_sockets = num_sockets

    @abstractmethod
    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Return the list of directed links ``(a, b)`` from ``src`` to ``dst``."""

    def hops(self, src: int, dst: int) -> int:
        """Number of inter-socket hops between ``src`` and ``dst``."""
        return len(self.route(src, dst))

    def max_hops(self) -> int:
        """Largest hop count between any pair of sockets."""
        return max(
            self.hops(a, b)
            for a in range(self.num_sockets)
            for b in range(self.num_sockets)
        )

    def links(self) -> List[Tuple[int, int]]:
        """All directed links present in the topology."""
        seen = set()
        for a in range(self.num_sockets):
            for b in range(self.num_sockets):
                for link in self.route(a, b):
                    seen.add(link)
        return sorted(seen)

    def _validate(self, socket: int) -> None:
        if not 0 <= socket < self.num_sockets:
            raise ValueError(f"socket {socket} out of range [0, {self.num_sockets})")


class RingTopology(Topology):
    """Bidirectional ring; packets take the shorter direction."""

    name = "ring"

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        self._validate(src)
        self._validate(dst)
        if src == dst:
            return []
        n = self.num_sockets
        clockwise = (dst - src) % n
        counter = (src - dst) % n
        step = 1 if clockwise <= counter else -1
        links = []
        current = src
        while current != dst:
            nxt = (current + step) % n
            links.append((current, nxt))
            current = nxt
        return links


class PointToPointTopology(Topology):
    """Direct link between every pair of sockets (2-socket QPI, small gluelss systems)."""

    name = "p2p"

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        self._validate(src)
        self._validate(dst)
        if src == dst:
            return []
        return [(src, dst)]


#: Alias used when a fully connected system with more than two sockets is wanted.
FullMeshTopology = PointToPointTopology


def make_topology(name: str, num_sockets: int) -> Topology:
    """Create a topology by name (``ring``, ``p2p``/``mesh``)."""
    key = name.lower()
    if key == "ring":
        return RingTopology(num_sockets)
    if key in ("p2p", "point-to-point", "mesh", "full-mesh"):
        return PointToPointTopology(num_sockets)
    raise ValueError(f"unknown topology {name!r}")
