"""Inter-socket network model combining a topology, per-link bandwidth and
per-hop latency, with traffic accounting by message class.

Table II: 20 ns per hop one way (40 ns round trip per hop, as used by the
methodology section), 25.6 GB/s per link, 16-byte control / 80-byte data
packets.  Fig. 2's idealisations map to ``zero_latency`` (0-QPI-latency) and
``infinite_bandwidth`` (inf-QPI-bandwidth).
"""

from __future__ import annotations

from typing import Dict, Tuple

from .link import Link
from .packet import CONTROL_PACKET_BYTES, DATA_PACKET_BYTES, MessageClass, PacketKind
from .topology import Topology

__all__ = ["Interconnect"]


class Interconnect:
    """The socket-to-socket interconnect (QPI/HyperTransport-like)."""

    def __init__(
        self,
        topology: Topology,
        *,
        hop_latency_ns: float = 20.0,
        link_bandwidth_gbps: float = 25.6,
        control_packet_bytes: int = CONTROL_PACKET_BYTES,
        data_packet_bytes: int = DATA_PACKET_BYTES,
        zero_latency: bool = False,
        infinite_bandwidth: bool = False,
    ) -> None:
        if hop_latency_ns < 0:
            raise ValueError("hop_latency_ns must be non-negative")
        self.topology = topology
        self.hop_latency_ns = 0.0 if zero_latency else hop_latency_ns
        self.control_packet_bytes = control_packet_bytes
        self.data_packet_bytes = data_packet_bytes
        self.zero_latency = zero_latency
        self.infinite_bandwidth = infinite_bandwidth
        self._links: Dict[Tuple[int, int], Link] = {
            (a, b): Link(a, b, link_bandwidth_gbps, infinite_bandwidth=infinite_bandwidth)
            for a, b in topology.links()
        }
        # Route cache: topologies are static, so the per-pair link list never
        # changes.  The routes are resolved to Link objects directly so the
        # hot send loop performs no per-hop dict lookups.
        self._routes: Dict[Tuple[int, int], list] = {
            (a, b): topology.route(a, b)
            for a in range(topology.num_sockets)
            for b in range(topology.num_sockets)
        }
        self._route_links: Dict[Tuple[int, int], list] = {
            pair: [self._links[hop] for hop in route]
            for pair, route in self._routes.items()
        }
        # Physical packet size per message class, precomputed so the hot path
        # never evaluates the MessageClass.kind property.
        self._packet_sizes: Dict[MessageClass, int] = {
            cls: (self.data_packet_bytes if cls.kind is PacketKind.DATA
                  else self.control_packet_bytes)
            for cls in MessageClass
        }

        self.messages_sent = 0
        self.bytes_sent = 0
        # Per-class [bytes, messages] pairs: one dict lookup per send instead
        # of four.  Exposed through the bytes_by_class / messages_by_class
        # properties for the experiments and tests.
        self._traffic: Dict[MessageClass, list] = {cls: [0, 0] for cls in MessageClass}

    # -- basic properties -----------------------------------------------------

    @property
    def num_sockets(self) -> int:
        return self.topology.num_sockets

    def packet_size(self, message_class: MessageClass) -> int:
        """Physical size in bytes of a packet of the given class."""
        return self._packet_sizes[message_class]

    def hops(self, src: int, dst: int) -> int:
        """Hop count between two sockets."""
        return self.topology.hops(src, dst)

    # -- transfers ------------------------------------------------------------

    def send(self, now: float, src: int, dst: int, message_class: MessageClass) -> float:
        """Send one packet from ``src`` to ``dst``; return its network latency.

        A same-socket "send" is free and generates no traffic (the message
        never leaves the chip).
        """
        if src == dst:
            return 0.0
        size = self._packet_sizes[message_class]
        links = self._route_links[(src, dst)]
        latency = self.hop_latency_ns * len(links)
        arrival = now
        for link in links:
            # Inlined Link.occupy (busy-until bandwidth accounting).
            link.bytes_transferred += size
            link.packets += 1
            if not link.infinite_bandwidth:
                service_time = size / link.bandwidth_bytes_per_ns
                link.busy_time += service_time
                if arrival >= link.last_arrival:
                    link.last_arrival = arrival
                    busy_until = link.busy_until
                    if busy_until > arrival:
                        latency += busy_until - arrival
                        link.busy_until = busy_until + service_time
                    else:
                        link.busy_until = arrival + service_time
            arrival = now + latency

        self.messages_sent += 1
        self.bytes_sent += size
        pair = self._traffic[message_class]
        pair[0] += size
        pair[1] += 1
        return latency

    def round_trip(
        self,
        now: float,
        src: int,
        dst: int,
        request_class: MessageClass = MessageClass.REQUEST,
        response_class: MessageClass = MessageClass.DATA_RESPONSE,
    ) -> float:
        """Request/response pair between two sockets; returns total latency."""
        if src == dst:
            return 0.0
        request_latency = self.send(now, src, dst, request_class)
        response_latency = self.send(now + request_latency, dst, src, response_class)
        return request_latency + response_latency

    def broadcast(
        self,
        now: float,
        src: int,
        message_class: MessageClass = MessageClass.BROADCAST_INVALIDATION,
        *,
        collect_acks: bool = True,
        ack_class: MessageClass = MessageClass.ACK,
    ) -> float:
        """Send a packet from ``src`` to every other socket.

        Returns the time until the last destination has received the packet
        (plus the ack collection latency when ``collect_acks``), which is the
        completion latency of a broadcast invalidation.
        """
        worst = 0.0
        for dst in range(self.num_sockets):
            if dst == src:
                continue
            out_latency = self.send(now, src, dst, message_class)
            total = out_latency
            if collect_acks:
                total += self.send(now + out_latency, dst, src, ack_class)
            worst = max(worst, total)
        return worst

    # -- statistics -----------------------------------------------------------

    @property
    def bytes_by_class(self) -> Dict[MessageClass, int]:
        """Bytes sent per message class."""
        return {cls: pair[0] for cls, pair in self._traffic.items()}

    @property
    def messages_by_class(self) -> Dict[MessageClass, int]:
        """Messages sent per message class."""
        return {cls: pair[1] for cls, pair in self._traffic.items()}

    def reset_counters(self) -> None:
        """Zero the traffic counters (used when a warm-up phase ends)."""
        self.messages_sent = 0
        self.bytes_sent = 0
        self._traffic = {cls: [0, 0] for cls in MessageClass}
        for link in self._links.values():
            link.bytes_transferred = 0
            link.packets = 0
            link.busy_time = 0.0

    def data_bytes(self) -> int:
        """Bytes sent in data-carrying packets."""
        return sum(
            pair[0] for cls, pair in self._traffic.items() if cls.kind is PacketKind.DATA
        )

    def control_bytes(self) -> int:
        """Bytes sent in control packets."""
        return self.bytes_sent - self.data_bytes()

    def link_bytes(self) -> int:
        """Bytes summed over every link traversal (counts each hop)."""
        return sum(link.bytes_transferred for link in self._links.values())

    def link_utilisations(self, elapsed_ns: float) -> Dict[Tuple[int, int], float]:
        """Per-link utilisation over ``elapsed_ns``."""
        return {key: link.utilisation(elapsed_ns) for key, link in self._links.items()}

    def busiest_link_utilisation(self, elapsed_ns: float) -> float:
        """Utilisation of the most loaded link (0 when there are no links)."""
        utilisations = self.link_utilisations(elapsed_ns)
        if not utilisations:
            return 0.0
        return max(utilisations.values())
