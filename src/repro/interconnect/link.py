"""Directed inter-socket link with bandwidth (busy-until) accounting."""

from __future__ import annotations

__all__ = ["Link"]


class Link:
    """One directed inter-socket link (e.g. one direction of a QPI link).

    Table II gives 25.6 GB/s per link.  Like the memory channels, the link
    uses busy-until accounting: a packet arriving while the link is still
    serialising earlier packets waits for its turn, which is how QPI
    congestion manifests as latency.  Fig. 2's ``inf_qpi_bw`` idealisation
    disables the queueing term.
    """

    def __init__(self, src: int, dst: int, bandwidth_bytes_per_ns: float,
                 *, infinite_bandwidth: bool = False) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        self.src = src
        self.dst = dst
        self.bandwidth_bytes_per_ns = bandwidth_bytes_per_ns
        self.infinite_bandwidth = infinite_bandwidth
        self.busy_until = 0.0
        self.last_arrival = 0.0
        self.bytes_transferred = 0
        self.packets = 0
        self.busy_time = 0.0

    def occupy(self, now: float, size_bytes: int) -> float:
        """Reserve the link for ``size_bytes`` starting no earlier than ``now``.

        Returns the queueing delay experienced by this packet.  Packets that
        arrive out of time order (trace-driven core skew) are assumed to use
        an earlier idle slot and are charged no queueing delay -- see
        :meth:`repro.memory.main_memory.MemoryChannel.occupy` for why.
        """
        self.bytes_transferred += size_bytes
        self.packets += 1
        if self.infinite_bandwidth:
            return 0.0
        service_time = size_bytes / self.bandwidth_bytes_per_ns
        self.busy_time += service_time
        if now < self.last_arrival:
            return 0.0
        self.last_arrival = now
        start = max(now, self.busy_until)
        queue_delay = start - now
        self.busy_until = start + service_time
        return queue_delay

    def utilisation(self, elapsed_ns: float) -> float:
        """Fraction of time this link was busy over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_time / elapsed_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Link({self.src}->{self.dst}, {self.bytes_transferred} bytes)"
