"""Inter-socket interconnect substrate: topologies, links, packets, network."""

from .link import Link
from .network import Interconnect
from .packet import (
    CONTROL_PACKET_BYTES,
    DATA_PACKET_BYTES,
    MessageClass,
    Packet,
    PacketKind,
)
from .topology import (
    FullMeshTopology,
    PointToPointTopology,
    RingTopology,
    Topology,
    make_topology,
)

__all__ = [
    "Interconnect",
    "Link",
    "MessageClass",
    "Packet",
    "PacketKind",
    "CONTROL_PACKET_BYTES",
    "DATA_PACKET_BYTES",
    "Topology",
    "RingTopology",
    "PointToPointTopology",
    "FullMeshTopology",
    "make_topology",
]
