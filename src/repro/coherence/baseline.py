"""Baseline inter-socket coherence: directory-tracked LLCs, no DRAM caches.

This is the paper's *baseline* design (section V-A): each socket's memory is
kept coherent across sockets with a global directory that tracks which LLCs
cache each block; there is no DRAM cache, so every LLC miss that cannot be
served by a remote LLC goes to (possibly remote) main memory.
"""

from __future__ import annotations

from ..interconnect.packet import MessageClass
from .directory import DirectoryState
from .messages import CoherenceRequestType, EvictionResult, MissResult, ServiceSource
from .protocol_base import GlobalCoherenceProtocol

__all__ = ["BaselineProtocol"]


class BaselineProtocol(GlobalCoherenceProtocol):
    """Directory MSI across sockets with no DRAM caches."""

    name = "baseline"
    uses_dram_cache = False
    clean_dram_cache = False

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        home = self._home_of_block(block)
        directory = self.directories[home]

        latency = self._net_send(now, requester, home, MessageClass.REQUEST)
        latency += directory.latency_ns
        self.system.stats.directory_lookups += 1
        entry = directory.lookup(block)

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            latency += self._fetch_from_remote_llc(
                now + latency, home, owner, requester, block, downgrade=True
            )
            directory.set_shared(block, {owner, requester})
            source = ServiceSource.REMOTE_LLC
        else:
            latency += self._memory_read(now + latency, home, block, requester)
            latency += self._net_send(now + latency, home, requester, MessageClass.DATA_RESPONSE)
            self._directory_note_read_sharer(directory, block, requester)
            source = (ServiceSource.LOCAL_MEMORY if home == requester
                      else ServiceSource.REMOTE_MEMORY)

        return MissResult(latency=latency, source=source, request_type=CoherenceRequestType.GETS)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        home = self._home_of_block(block)
        directory = self.directories[home]
        request_type = (
            CoherenceRequestType.UPGRADE if has_shared_copy else CoherenceRequestType.GETX
        )

        latency = self._net_send(now, requester, home, MessageClass.REQUEST)
        latency += directory.latency_ns
        self.system.stats.directory_lookups += 1
        entry = directory.lookup(block)
        invalidations = 0

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            latency += self._fetch_from_remote_llc(
                now + latency, home, owner, requester, block, downgrade=False
            )
            invalidations = 1
            source = ServiceSource.REMOTE_LLC
        else:
            sharers = sorted(entry.sharers - {requester}) if entry is not None else []
            invalidation_latency = 0.0
            for target in sharers:
                invalidation_latency = max(
                    invalidation_latency,
                    self._invalidate_remote_socket(
                        now + latency, home, target, block, include_dram_cache=False
                    ),
                )
                invalidations += 1
            data_latency = 0.0
            if has_shared_copy:
                source = ServiceSource.LLC
            else:
                data_latency = self._memory_read(now + latency, home, block, requester)
                data_latency += self._net_send(now + latency + data_latency, home, requester,
                                               MessageClass.DATA_RESPONSE)
                source = (ServiceSource.LOCAL_MEMORY if home == requester
                          else ServiceSource.REMOTE_MEMORY)
            latency += max(invalidation_latency, data_latency)

        directory.set_modified(block, requester)
        if has_shared_copy:
            self.system.stats.upgrades += 1
        return MissResult(
            latency=latency,
            source=source,
            request_type=request_type,
            invalidations=invalidations,
        )

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def llc_eviction(
        self, now: float, requester: int, block: int, *, dirty: bool
    ) -> EvictionResult:
        result = EvictionResult()
        home = self._home_of_block(block)
        directory = self.directories[home]
        if dirty:
            result.latency = self._memory_write(now, home, block, requester)
            result.wrote_memory = True
            directory.invalidate(block)
        # Clean (Shared) evictions are silent: the sharing vector becomes a
        # stale superset, which is still a valid over-approximation.
        return result

    # ------------------------------------------------------------------
    # Functional (state-only) mirrors -- see GlobalCoherenceProtocol
    # ------------------------------------------------------------------

    def read_miss_functional(self, requester: int, block: int) -> None:
        directory = self.directories[self._home_of_block(block)]
        entry = directory.lookup(block)
        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            # Mirror of _fetch_from_remote_llc(downgrade=True): the owner
            # keeps a Shared copy (the write-through touches only counters).
            self.sockets[owner].downgrade_block(block)
            directory.set_shared(block, {owner, requester})
        else:
            self._directory_note_read_sharer(directory, block, requester)

    def write_miss_functional(
        self, requester: int, block: int, *, thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> None:
        directory = self.directories[self._home_of_block(block)]
        entry = directory.lookup(block)
        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            # Mirror of _fetch_from_remote_llc(downgrade=False).
            self.sockets[entry.owner].invalidate_onchip(block)
        elif entry is not None:
            # Mirror of _invalidate_remote_socket(include_dram_cache=False)
            # per sharer (the baseline has no DRAM caches to probe).
            for target in sorted(entry.sharers - {requester}):
                self.sockets[target].invalidate_onchip(block)
        directory.set_modified(block, requester)

    def llc_eviction_functional(self, requester: int, block: int, *, dirty: bool) -> None:
        if dirty:
            self.directories[self._home_of_block(block)].invalidate(block)
