"""Local (intra-socket) directory.

Table II: "Local Directory -- 7-cycle, embedded in L2, full sharing vector".
Within a socket the LLC is inclusive of the per-core L1s, and the local
directory records which cores hold each LLC-resident block and which core (if
any) owns it in Modified state.  The socket uses it to invalidate peer L1
copies on writes and to source data from a peer L1 that holds the block
modified (avoiding an LLC data access).

The local directory settings are identical in all evaluated designs, so it is
part of the coherence substrate rather than of any particular protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

__all__ = ["LocalDirectoryEntry", "LocalDirectory"]


@dataclass
class LocalDirectoryEntry:
    """Per-block record of which cores cache the block inside a socket."""

    block: int
    sharers: Set[int] = field(default_factory=set)
    owner: Optional[int] = None  # core holding the block Modified, if any


class LocalDirectory:
    """Tracks L1 residency for every block held in the socket's LLC."""

    def __init__(self, *, latency_ns: float = 7 / 3.0, name: str = "local_directory") -> None:
        self.latency_ns = latency_ns
        self.name = name
        self._entries: Dict[int, LocalDirectoryEntry] = {}

        self.lookups = 0
        self.peer_interventions = 0
        self.peer_invalidations = 0

    # -- queries ------------------------------------------------------------

    def lookup(self, block: int) -> Optional[LocalDirectoryEntry]:
        """Return the entry for ``block`` (None when no core caches it)."""
        self.lookups += 1
        return self._entries.get(block)

    def peek(self, block: int) -> Optional[LocalDirectoryEntry]:
        return self._entries.get(block)

    def sharers_of(self, block: int) -> Set[int]:
        entry = self._entries.get(block)
        return set(entry.sharers) if entry else set()

    def owner_of(self, block: int) -> Optional[int]:
        entry = self._entries.get(block)
        return entry.owner if entry else None

    # -- updates --------------------------------------------------------------

    def record_fill(self, block: int, core: int, *, modified: bool = False) -> None:
        """Record that ``core`` now holds ``block`` in its L1."""
        entry = self._entries.get(block)
        if entry is None:
            entry = self._entries[block] = LocalDirectoryEntry(block=block)
        entry.sharers.add(core)
        if modified:
            entry.owner = core
        elif entry.owner == core:
            entry.owner = None

    def record_write(self, block: int, core: int) -> Set[int]:
        """Record a write by ``core``; returns the peer cores to invalidate."""
        entry = self._entries.get(block)
        if entry is None:
            entry = self._entries[block] = LocalDirectoryEntry(block=block)
        peers = {c for c in entry.sharers if c != core}
        if peers:
            self.peer_invalidations += len(peers)
        entry.sharers = {core}
        entry.owner = core
        return peers

    def record_eviction(self, block: int, core: int) -> None:
        """Record that ``core`` dropped its L1 copy of ``block``."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None
        if not entry.sharers:
            del self._entries[block]

    #: Shared empty result for blocks with no residency info (hot path).
    _NO_CORES = frozenset()

    def invalidate_block(self, block: int) -> Set[int]:
        """Drop all L1 residency info for ``block``; returns the cores affected.

        The returned set must be treated as read-only (the entry it came
        from has just been dropped, so no aliasing can occur inside the
        directory itself).
        """
        entry = self._entries.pop(block, None)
        if entry is None:
            return self._NO_CORES
        return entry.sharers

    def __len__(self) -> int:
        return len(self._entries)
