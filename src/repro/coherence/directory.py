"""Global directory slices and the directory storage-cost model.

Each socket hosts a *slice* of the global directory that tracks blocks whose
home memory lives on that socket (Fig. 1).  An entry carries the MSI state of
section IV-C, the owner socket (Modified) and a socket-grain sharing vector
(Shared).  The same class serves every evaluated design; what differs between
designs is *which* blocks get entries:

* baseline / C3D: only blocks cached by an LLC (or higher) are tracked;
* full-dir / c3d-full-dir: blocks resident in DRAM caches are tracked too.

The module also provides :class:`DirectoryCostModel`, which reproduces the
storage arithmetic of section III-B (a 2x-provisioned sparse directory for a
256 MB DRAM cache costs 32 MB per socket; 128 MB for a 1 GB cache).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set

__all__ = ["DirectoryState", "DirectoryEntry", "GlobalDirectory", "DirectoryCostModel"]


class DirectoryState(enum.Enum):
    """Stable states of the global directory (Fig. 5)."""

    INVALID = "I"
    SHARED = "S"
    MODIFIED = "M"

    __hash__ = object.__hash__  # identity hashing, C-level


#: Precomputed transition labels, so recording a transition does not format
#: a string on every directory state change.
_TRANSITION_KEYS = {}


@dataclass
class DirectoryEntry:
    """One tracked block."""

    block: int
    state: DirectoryState = DirectoryState.INVALID
    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    def copy(self) -> "DirectoryEntry":
        return DirectoryEntry(self.block, self.state, self.owner, set(self.sharers))


class GlobalDirectory:
    """A directory slice for the blocks homed at one socket.

    The slice is functionally unbounded (entries are allocated on demand) but
    records the peak entry count so the experiments can report how much
    storage each design would actually need; the sparse-capacity arithmetic
    itself lives in :class:`DirectoryCostModel`.
    """

    def __init__(self, home_socket: int, *, latency_ns: float = 10 / 3.0,
                 name: Optional[str] = None) -> None:
        self.home_socket = home_socket
        self.latency_ns = latency_ns
        self.name = name or f"directory[{home_socket}]"
        self._entries: Dict[int, DirectoryEntry] = {}

        self.lookups = 0
        self.allocations = 0
        self.deallocations = 0
        self.transitions: Dict[str, int] = {}
        self.peak_entries = 0

    # -- lookup / allocation ----------------------------------------------

    def lookup(self, block: int) -> Optional[DirectoryEntry]:
        """Return the entry for ``block`` (None when untracked); counts a lookup."""
        self.lookups += 1
        return self._entries.get(block)

    def peek(self, block: int) -> Optional[DirectoryEntry]:
        """Return the entry without counting a lookup (for assertions/tests)."""
        return self._entries.get(block)

    def state_of(self, block: int) -> DirectoryState:
        """Return the stable state of ``block`` (INVALID when untracked)."""
        entry = self._entries.get(block)
        return entry.state if entry is not None else DirectoryState.INVALID

    def _get_or_allocate(self, block: int) -> DirectoryEntry:
        entry = self._entries.get(block)
        if entry is None:
            entry = DirectoryEntry(block=block)
            self._entries[block] = entry
            self.allocations += 1
            if len(self._entries) > self.peak_entries:
                self.peak_entries = len(self._entries)
        return entry

    def _record_transition(self, old: DirectoryState, new: DirectoryState) -> None:
        key = _TRANSITION_KEYS[(old, new)]
        self.transitions[key] = self.transitions.get(key, 0) + 1

    # -- state changes -------------------------------------------------------

    def set_modified(self, block: int, owner: int) -> DirectoryEntry:
        """Transition ``block`` to Modified with the given owner socket."""
        entries = self._entries
        entry = entries.get(block)
        if entry is None:
            entry = entries[block] = DirectoryEntry(block=block)
            self.allocations += 1
            if len(entries) > self.peak_entries:
                self.peak_entries = len(entries)
        key = _TRANSITION_KEYS[(entry.state, DirectoryState.MODIFIED)]
        self.transitions[key] = self.transitions.get(key, 0) + 1
        entry.state = DirectoryState.MODIFIED
        entry.owner = owner
        entry.sharers = {owner}
        return entry

    def set_shared(self, block: int, sharers: Set[int]) -> DirectoryEntry:
        """Transition ``block`` to Shared with the given sharing vector."""
        if not sharers:
            raise ValueError("shared state requires at least one sharer")
        entry = self._get_or_allocate(block)
        self._record_transition(entry.state, DirectoryState.SHARED)
        entry.state = DirectoryState.SHARED
        entry.owner = None
        entry.sharers = set(sharers)
        return entry

    def add_sharer(self, block: int, socket: int) -> DirectoryEntry:
        """Add ``socket`` to the sharing vector (allocating a Shared entry)."""
        entries = self._entries
        entry = entries.get(block)
        if entry is None:
            entry = entries[block] = DirectoryEntry(block=block)
            self.allocations += 1
            if len(entries) > self.peak_entries:
                self.peak_entries = len(entries)
        if entry.state is DirectoryState.MODIFIED:
            raise ValueError(f"add_sharer on Modified block {block:#x}")
        if entry.state is DirectoryState.INVALID:
            key = _TRANSITION_KEYS[(DirectoryState.INVALID, DirectoryState.SHARED)]
            self.transitions[key] = self.transitions.get(key, 0) + 1
            entry.state = DirectoryState.SHARED
        entry.sharers.add(socket)
        return entry

    def remove_sharer(self, block: int, socket: int) -> None:
        """Drop ``socket`` from the sharing vector; deallocate when empty."""
        entry = self._entries.get(block)
        if entry is None:
            return
        entry.sharers.discard(socket)
        if entry.owner == socket:
            entry.owner = None
        if not entry.sharers:
            self.invalidate(block)

    def invalidate(self, block: int) -> None:
        """Remove the entry for ``block`` (transition to Invalid / untracked)."""
        entry = self._entries.pop(block, None)
        if entry is not None:
            self._record_transition(entry.state, DirectoryState.INVALID)
            self.deallocations += 1

    # -- inspection ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> Iterator[DirectoryEntry]:
        return iter(self._entries.values())

    def tracked_blocks(self) -> Set[int]:
        return set(self._entries)


_TRANSITION_KEYS.update(
    {(a, b): f"{a.value}->{b.value}" for a in DirectoryState for b in DirectoryState}
)


@dataclass(frozen=True)
class DirectoryCostModel:
    """Sparse-directory storage arithmetic from section III-B.

    A sparse directory provisioned at ``provisioning`` times the number of
    blocks in the tracked cache, with each entry holding a tag plus a sharing
    vector of one bit per socket and a handful of state bits.

    >>> model = DirectoryCostModel(num_sockets=4)
    >>> round(model.storage_bytes(256 * 2**20) / 2**20)  # 256 MB cache, 2x sparse
    32
    """

    num_sockets: int = 4
    block_size: int = 64
    provisioning: float = 2.0
    tag_bits: int = 26
    state_bits: int = 2

    def entry_bits(self) -> int:
        """Size of one directory entry in bits."""
        return self.tag_bits + self.state_bits + self.num_sockets

    def entries_for_cache(self, cache_bytes: int) -> int:
        """Number of entries needed to track a cache of ``cache_bytes``."""
        blocks = cache_bytes // self.block_size
        return int(math.ceil(blocks * self.provisioning))

    def storage_bytes(self, cache_bytes: int) -> float:
        """Directory storage (bytes) required to track ``cache_bytes`` of cache."""
        return self.entries_for_cache(cache_bytes) * self.entry_bits() / 8.0

    def storage_megabytes(self, cache_bytes: int) -> float:
        return self.storage_bytes(cache_bytes) / 2**20
