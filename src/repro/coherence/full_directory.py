"""Inclusive full-directory coherent DRAM caches (the naive design of
section III-B, evaluated as *full-dir*).

The global directory is extended to track every block resident in any DRAM
cache, in addition to the on-chip caches.  The paper models this directory
optimistically: no capacity recalls and the same 10-cycle access latency as
the baseline directory, despite the enormous storage it would require (the
:class:`~repro.coherence.directory.DirectoryCostModel` reproduces that
storage arithmetic).

DRAM caches are dirty: a modified LLC victim is absorbed by the local DRAM
cache without a memory write-back, so a later read from another socket must
be forwarded to the owner and served by its slow DRAM cache -- the "modified
block in a remote DRAM cache" pathology of Fig. 4.
"""

from __future__ import annotations

from .directory import DirectoryState
from .messages import CoherenceRequestType, EvictionResult, MissResult, ServiceSource
from .protocol_base import GlobalCoherenceProtocol

__all__ = ["FullDirectoryProtocol"]


class FullDirectoryProtocol(GlobalCoherenceProtocol):
    """Inclusive directory tracking LLC and DRAM-cache contents; dirty DRAM caches."""

    name = "full-dir"
    uses_dram_cache = True
    clean_dram_cache = False
    tracks_dram_cache_in_directory = True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        hit, local_latency, _dirty = self._probe_local_dram_cache(now, requester, block)
        if hit:
            # The directory continues to track the requester (it already did,
            # by inclusivity), so no global transaction is needed.
            return MissResult(
                latency=local_latency,
                source=ServiceSource.LOCAL_DRAM_CACHE,
                request_type=CoherenceRequestType.GETS,
            )

        home = self.home_of(block)
        directory = self.directories[home]
        latency = local_latency
        latency += self._request_to_home(now + latency, requester, home)
        latency += directory.latency_ns
        self.stats.directory_lookups += 1
        entry = directory.lookup(block)

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            latency += self._fetch_from_owner_any_level(
                now + latency, home, owner, requester, block
            )
            owner_socket = self.socket(owner)
            source = (
                ServiceSource.REMOTE_LLC
                if owner_socket.llc.contains(block)
                else ServiceSource.REMOTE_DRAM_CACHE
            )
            directory.set_shared(block, {owner, requester})
        else:
            latency += self._memory_read(now + latency, home, block, requester)
            latency += self._data_response(now + latency, home, requester)
            self._directory_note_read_sharer(directory, block, requester)
            source = self._memory_source(home, requester)

        return MissResult(latency=latency, source=source, request_type=CoherenceRequestType.GETS)

    def _fetch_from_owner_any_level(
        self, now: float, home: int, owner: int, requester: int, block: int
    ) -> float:
        """Forward a read to the owner socket; serve from its LLC or DRAM cache.

        The owner keeps a Shared (clean) copy and its dirty data is written
        back to the home memory so that the Shared invariant (memory not
        stale) holds afterwards.
        """
        from ..interconnect.packet import MessageClass

        owner_socket = self.socket(owner)
        forward = self._send(now, home, owner, MessageClass.FORWARD)
        if owner_socket.llc.contains(block):
            probe = owner_socket.llc_latency_ns
            was_dirty = owner_socket.downgrade_block(block)
            self.stats.downgrades += 1
        else:
            # The dirty copy lives in the owner's DRAM cache (Fig. 4 path).
            probe = owner_socket.dram_cache_latency_ns
            line = (
                owner_socket.dram_cache.peek(block)
                if owner_socket.dram_cache is not None
                else None
            )
            was_dirty = bool(line is not None and line.dirty)
            if owner_socket.dram_cache is not None and line is not None:
                owner_socket.dram_cache.mark_clean(block)
        if was_dirty:
            self._memory_write(now + forward + probe, home, block, owner)
        response = self._data_response(now + forward + probe, owner, requester)
        return forward + probe + response

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        request_type = (
            CoherenceRequestType.UPGRADE if has_shared_copy else CoherenceRequestType.GETX
        )
        local_hit = False
        local_latency = 0.0
        if not has_shared_copy:
            local_hit, local_latency, _ = self._probe_local_dram_cache(now, requester, block)

        home = self.home_of(block)
        directory = self.directories[home]
        latency = local_latency
        latency += self._request_to_home(now + latency, requester, home)
        latency += directory.latency_ns
        self.stats.directory_lookups += 1
        entry = directory.lookup(block)
        invalidations = 0

        if (
            entry is not None
            and entry.state is DirectoryState.MODIFIED
            and entry.owner is not None
            and entry.owner != requester
        ):
            owner = entry.owner
            owner_socket = self.socket(owner)
            source = (
                ServiceSource.REMOTE_LLC
                if owner_socket.llc.contains(block)
                else ServiceSource.REMOTE_DRAM_CACHE
            )
            latency += self._invalidate_remote_socket(
                now + latency, home, owner, block, include_dram_cache=True
            )
            latency += self._data_response(now + latency, owner, requester)
            invalidations = 1
        else:
            sharers = sorted(entry.sharers - {requester}) if entry is not None else []
            invalidation_latency = 0.0
            for target in sharers:
                invalidation_latency = max(
                    invalidation_latency,
                    self._invalidate_remote_socket(
                        now + latency, home, target, block, include_dram_cache=True
                    ),
                )
                invalidations += 1
            data_latency = 0.0
            if has_shared_copy:
                source = ServiceSource.LLC
            elif local_hit:
                source = ServiceSource.LOCAL_DRAM_CACHE
            else:
                data_latency = self._memory_read(now + latency, home, block, requester)
                data_latency += self._data_response(now + latency + data_latency, home, requester)
                source = self._memory_source(home, requester)
            latency += max(invalidation_latency, data_latency)

        directory.set_modified(block, requester)
        if has_shared_copy:
            self.stats.upgrades += 1
        return MissResult(
            latency=latency,
            source=source,
            request_type=request_type,
            invalidations=invalidations,
        )

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def llc_eviction(
        self, now: float, requester: int, block: int, *, dirty: bool
    ) -> EvictionResult:
        result = EvictionResult()
        sock = self.socket(requester)
        if sock.dram_cache is None:
            if dirty:
                home = self.home_of(block)
                result.latency = self._memory_write(now, home, block, requester)
                result.wrote_memory = True
                self.directories[home].invalidate(block)
            return result

        # The victim (dirty or clean) is absorbed by the local DRAM cache; the
        # directory keeps tracking the block at this socket (inclusive of the
        # DRAM cache), so no directory transition happens here.
        self._insert_into_dram_cache(now, requester, block, dirty=dirty)
        result.inserted_in_dram_cache = True
        return result

    # ------------------------------------------------------------------
    # DRAM-cache eviction hooks (directory bookkeeping)
    # ------------------------------------------------------------------

    def _on_dram_cache_dirty_victim(self, block: int, socket_id: int) -> None:
        from ..caches.block import CacheBlockState

        directory = self.directory_for(block)
        entry = directory.peek(block)
        if entry is None:
            return
        llc_line = self.socket(socket_id).llc.peek(block)
        if entry.state is DirectoryState.MODIFIED and entry.owner == socket_id:
            if llc_line is None:
                # The written-back data was the only copy: stop tracking.
                directory.invalidate(block)
            elif llc_line.state is not CacheBlockState.MODIFIED:
                # A clean, current on-chip copy remains: downgrade to Shared.
                directory.set_shared(block, {socket_id})
            # If the LLC still holds the block Modified, the DRAM victim was
            # an older value and the entry must stay Modified.
        elif llc_line is None:
            directory.remove_sharer(block, socket_id)

    def _on_dram_cache_clean_victim(self, block: int, socket_id: int) -> None:
        if not self.socket(socket_id).llc.contains(block):
            self.directory_for(block).remove_sharer(block, socket_id)
