"""Abstract base class and shared machinery for the global coherence protocols.

Five concrete designs are evaluated in the paper, all implemented as
subclasses of :class:`GlobalCoherenceProtocol`:

==============================  ==========================================
class                           paper name
==============================  ==========================================
``BaselineProtocol``            baseline (no DRAM cache)
``SnoopyProtocol``              snoopy
``FullDirectoryProtocol``       full-dir
``C3DProtocol``                 c3d                  (``repro.core``)
``C3DFullDirectoryProtocol``    c3d-full-dir         (``repro.core``)
==============================  ==========================================

A protocol is invoked by a :class:`~repro.system.socket.Socket` in three
situations:

* :meth:`read_miss` -- a demand read missed in the socket's on-chip hierarchy;
* :meth:`write_miss` -- a store needs Modified permission it does not have
  (covering both write misses and S->M upgrades);
* :meth:`llc_eviction` -- the LLC displaced a block and the victim must be
  handled (write-back, DRAM-cache insertion, directory update).

All latencies are in nanoseconds and describe the critical path of the
transaction as seen by the requesting socket.  Traffic and memory accesses
are accounted on the shared :class:`~repro.stats.counters.SimulationStats`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Tuple

from ..interconnect.packet import MessageClass
from .directory import DirectoryState, GlobalDirectory
from .messages import EvictionResult, MissResult, ServiceSource

if TYPE_CHECKING:  # pragma: no cover - import cycle avoidance for type checkers only
    from ..system.numa_system import NumaSystem
    from ..system.socket import Socket

__all__ = ["GlobalCoherenceProtocol"]


class GlobalCoherenceProtocol(ABC):
    """Common machinery shared by all inter-socket coherence designs."""

    #: Paper name of the design (used by the experiment harness).
    name: str = "abstract"
    #: Whether the design deploys per-socket DRAM caches.
    uses_dram_cache: bool = True
    #: Whether the DRAM caches are kept clean (write-through w.r.t. memory).
    clean_dram_cache: bool = False
    #: Whether the global directory tracks blocks resident only in DRAM caches
    #: (the inclusive full-dir designs).  Used e.g. by the pre-warm facility to
    #: keep the directory consistent with pre-loaded DRAM-cache contents.
    tracks_dram_cache_in_directory: bool = False

    def __init__(self, system: "NumaSystem") -> None:
        self.system = system
        self.sockets: List["Socket"] = system.sockets
        self.interconnect = system.interconnect
        self.mapper = system.mapper
        self.directories: List[GlobalDirectory] = system.directories
        # Hot-path bindings: one call layer instead of two or three.
        self._net_send = system.interconnect.send
        self._home_of_block = system.mapper.home_of_block

    @property
    def stats(self):
        """The system-wide statistics object (swappable for warm-up resets)."""
        return self.system.stats

    # ------------------------------------------------------------------
    # Abstract entry points
    # ------------------------------------------------------------------

    @abstractmethod
    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        """Service a demand read that missed the requester's on-chip hierarchy."""

    @abstractmethod
    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        """Obtain Modified permission (and data if needed) for a store."""

    @abstractmethod
    def llc_eviction(self, now: float, requester: int, block: int, *, dirty: bool) -> EvictionResult:
        """Handle an LLC victim produced by the requester socket."""

    # ------------------------------------------------------------------
    # Functional (state-only) mirrors
    # ------------------------------------------------------------------
    #
    # The sampled engine's fast-forward phase advances architectural state
    # without timing (docs/sampling.md).  These entry points perform exactly
    # the state mutations of their timed counterparts -- directory
    # transitions, peer invalidations/downgrades, DRAM-cache probes and
    # inserts -- while skipping the latency arithmetic, message accounting
    # and result allocation.  The defaults below simply run the timed entry
    # points; they are only correct when the caller has installed functional
    # timing (zero-latency interconnect/memory stubs, scratch statistics --
    # see ``EngineContext.functional_timing``), which the sampled engine
    # always does, so a design without a lean override stays state-exact.
    # Subclasses override them with lean state-only mirrors for speed;
    # tests/engines/test_functional_mirrors.py asserts every lean mirror
    # leaves bit-identical state behind by re-running the same sampled
    # simulation with the mirrors forced back to these generic fallbacks.

    def read_miss_functional(self, requester: int, block: int) -> None:
        """State-only mirror of :meth:`read_miss` (no timing, no result)."""
        self.read_miss(0.0, requester, block)

    def write_miss_functional(
        self, requester: int, block: int, *, thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> None:
        """State-only mirror of :meth:`write_miss` (no timing, no result)."""
        self.write_miss(
            0.0, requester, block, thread_id=thread_id,
            has_shared_copy=has_shared_copy,
        )

    def llc_eviction_functional(self, requester: int, block: int, *, dirty: bool) -> None:
        """State-only mirror of :meth:`llc_eviction` (no timing, no result)."""
        self.llc_eviction(0.0, requester, block, dirty=dirty)

    # ------------------------------------------------------------------
    # Address / component helpers
    # ------------------------------------------------------------------

    def home_of(self, block: int) -> int:
        """Home socket of a block (where its memory and directory slice live)."""
        return self._home_of_block(block)

    def directory_for(self, block: int) -> GlobalDirectory:
        """Directory slice responsible for ``block``."""
        return self.directories[self.home_of(block)]

    def socket(self, socket_id: int) -> "Socket":
        return self.sockets[socket_id]

    @property
    def num_sockets(self) -> int:
        return len(self.sockets)

    # ------------------------------------------------------------------
    # Interconnect helpers
    # ------------------------------------------------------------------

    def _send(self, now: float, src: int, dst: int, message_class: MessageClass) -> float:
        """Send one message; returns its latency (0 for same-socket)."""
        return self.interconnect.send(now, src, dst, message_class)

    def _request_to_home(self, now: float, requester: int, home: int) -> float:
        """Carry the coherence request from the requester to the home socket."""
        return self._send(now, requester, home, MessageClass.REQUEST)

    def _data_response(self, now: float, src: int, dst: int) -> float:
        """Send a data-carrying response."""
        return self._send(now, src, dst, MessageClass.DATA_RESPONSE)

    # ------------------------------------------------------------------
    # Memory helpers
    # ------------------------------------------------------------------

    def _memory_read(self, now: float, home: int, block: int, requester: int) -> float:
        """Read ``block`` from its home memory; returns the memory latency.

        Also classifies the access as local or remote relative to the
        requesting socket for the Table I / Fig. 8 statistics.
        """
        latency = self.sockets[home].memory.read_fast(now, block)
        stats = self.system.stats
        if home == requester:
            stats.memory_reads_local += 1
        else:
            stats.memory_reads_remote += 1
        return latency

    def _memory_write(self, now: float, home: int, block: int, requester: int) -> float:
        """Write ``block`` back to its home memory (includes the data transfer).

        Returns the total latency, which callers normally keep off the
        requester's critical path.
        """
        transfer = self.interconnect.send(now, requester, home, MessageClass.WRITEBACK)
        latency = self.sockets[home].memory.write_fast(now + transfer, block)
        stats = self.system.stats
        if home == requester:
            stats.memory_writes_local += 1
        else:
            stats.memory_writes_remote += 1
        stats.writebacks += 1
        return transfer + latency

    # ------------------------------------------------------------------
    # DRAM-cache helpers
    # ------------------------------------------------------------------

    def _probe_local_dram_cache(
        self, now: float, requester: int, block: int
    ) -> Tuple[bool, float, bool]:
        """Probe the requester's own DRAM cache.

        Returns ``(hit, latency, dirty)``.  The latency charges the miss
        predictor and, unless the predictor confidently predicted a miss, the
        DRAM array access.
        """
        sock = self.sockets[requester]
        if sock.dram_cache is None:
            return False, 0.0, False
        latency = sock.dram_predictor_latency_ns
        probe = sock.dram_cache.probe(block)
        if probe.array_accessed:
            latency += sock.dram_cache_latency_ns
        stats = self.system.stats
        if probe.hit:
            stats.dram_cache_hits += 1
        else:
            stats.dram_cache_misses += 1
        return probe.hit, latency, probe.dirty

    def _dram_cache_contains(self, socket_id: int, block: int) -> bool:
        sock = self.socket(socket_id)
        return sock.dram_cache is not None and sock.dram_cache.contains(block)

    def _insert_into_dram_cache(self, now: float, socket_id: int, block: int, *, dirty: bool) -> None:
        """Insert an LLC victim into the socket's DRAM cache and handle its victim."""
        sock = self.sockets[socket_id]
        if sock.dram_cache is None:
            return
        victim = sock.dram_cache.insert(block, dirty=dirty)
        if victim is not None and victim.dirty:
            # A dirty DRAM-cache victim must reach its home memory
            # (only possible in the non-clean designs).
            victim_home = self._home_of_block(victim.block)
            self._memory_write(now, victim_home, victim.block, socket_id)
            self._on_dram_cache_dirty_victim(victim.block, socket_id)
        elif victim is not None:
            self._on_dram_cache_clean_victim(victim.block, socket_id)

    def _on_dram_cache_dirty_victim(self, block: int, socket_id: int) -> None:
        """Directory bookkeeping hook for a dirty DRAM-cache eviction."""

    def _on_dram_cache_clean_victim(self, block: int, socket_id: int) -> None:
        """Directory bookkeeping hook for a clean DRAM-cache eviction."""

    # ------------------------------------------------------------------
    # Remote-socket probe / invalidation helpers
    # ------------------------------------------------------------------

    def _fetch_from_remote_llc(
        self,
        now: float,
        home: int,
        owner: int,
        requester: int,
        block: int,
        *,
        downgrade: bool,
    ) -> float:
        """Home forwards the request to the owner's LLC; owner sends the data.

        With ``downgrade`` the owner keeps a Shared copy and its dirty data is
        written through to the home memory (so that memory is not stale, which
        the Shared state requires); otherwise the owner invalidates its copy.
        Returns the critical-path latency from the moment the home decided to
        forward.
        """
        owner_socket = self.sockets[owner]
        send = self._net_send
        forward = send(now, home, owner, MessageClass.FORWARD)
        probe = owner_socket.llc_latency_ns
        stats = self.system.stats
        if downgrade:
            was_dirty = owner_socket.downgrade_block(block)
            stats.downgrades += 1
            if was_dirty:
                self._memory_write(now + forward + probe, home, block, owner)
        else:
            owner_socket.invalidate_onchip(block)
            stats.invalidations_sent += 1
        response = send(now + forward + probe, owner, requester, MessageClass.DATA_RESPONSE)
        return forward + probe + response

    def _invalidate_remote_socket(
        self,
        now: float,
        home: int,
        target: int,
        block: int,
        *,
        include_dram_cache: bool,
        message_class: MessageClass = MessageClass.INVALIDATION,
    ) -> float:
        """Invalidate every copy of ``block`` at ``target``; returns round-trip latency."""
        target_socket = self.sockets[target]
        send = self._net_send
        out = send(now, home, target, message_class)
        probe = 0.0
        if include_dram_cache and target_socket.dram_cache is not None:
            target_socket.dram_cache.invalidate(block)
            probe = target_socket.dram_cache_latency_ns
        if target_socket.llc.contains(block):
            probe = max(probe, target_socket.llc_latency_ns)
        target_socket.invalidate_onchip(block)
        ack = send(now + out + probe, target, home, MessageClass.ACK)
        self.system.stats.invalidations_sent += 1
        return out + probe + ack

    def _sockets_with_onchip_copy(self, block: int, exclude: Optional[int] = None) -> List[int]:
        """Sockets whose LLC currently holds ``block``."""
        holders = []
        for sock in self.sockets:
            if exclude is not None and sock.socket_id == exclude:
                continue
            if sock.llc.contains(block):
                holders.append(sock.socket_id)
        return holders

    def _sockets_with_any_copy(self, block: int, exclude: Optional[int] = None) -> List[int]:
        """Sockets holding ``block`` in their LLC or DRAM cache."""
        holders = []
        for sock in self.sockets:
            if exclude is not None and sock.socket_id == exclude:
                continue
            if sock.llc.contains(block) or (
                sock.dram_cache is not None and sock.dram_cache.contains(block)
            ):
                holders.append(sock.socket_id)
        return holders

    def _directory_note_read_sharer(self, directory: GlobalDirectory, block: int,
                                    requester: int) -> None:
        """Record ``requester`` as a sharer after a read served by memory.

        Handles the (defensive) case of a stale Modified entry by degrading
        it to Shared rather than violating the directory's M-state invariant.
        """
        entry = directory.peek(block)
        if entry is not None and entry.state is DirectoryState.MODIFIED:
            directory.set_shared(block, set(entry.sharers) | {requester})
        else:
            directory.add_sharer(block, requester)

    # ------------------------------------------------------------------
    # Classification of sources
    # ------------------------------------------------------------------

    def _memory_source(self, home: int, requester: int) -> ServiceSource:
        if home == requester:
            return ServiceSource.LOCAL_MEMORY
        return ServiceSource.REMOTE_MEMORY

    # ------------------------------------------------------------------
    # Fill bookkeeping shared by subclasses
    # ------------------------------------------------------------------

    def _register_llc_fill(self, requester: int, block: int, *, modified: bool) -> None:
        """Hook invoked by the socket after it installs the fill into its LLC.

        Subclasses that track on-chip residency (all directory designs) do
        their sharer/owner bookkeeping in :meth:`read_miss`/:meth:`write_miss`
        directly; this hook exists for designs that need to observe the fill
        itself (currently none), and for tests.
        """

    def describe(self) -> str:
        """One-line human-readable description of the design."""
        dram = "no DRAM cache" if not self.uses_dram_cache else (
            "clean DRAM cache" if self.clean_dram_cache else "dirty DRAM cache"
        )
        return f"{self.name} ({dram})"
