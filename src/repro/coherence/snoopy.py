"""Snoopy coherent DRAM caches (the naive design of section III-A).

Every local DRAM-cache miss is broadcast to all remote sockets.  A remote
socket consults its snoop filter (the baseline's global directory structure,
repurposed as a per-socket block-level filter) and, when it may have the
block, probes its LLC or DRAM cache before responding.  Main memory is
accessed *in parallel* with the snoops so that a miss everywhere does not
serialise behind them, but the transaction cannot complete before the slowest
snoop response -- this is exactly the "slow remote hit" pathology (the
furthest socket's DRAM-cache latency lands on the critical path).

DRAM caches are dirty (they absorb modified LLC victims), so a snoop that
finds a dirty copy must source data from the remote DRAM cache.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..caches.block import CacheBlockState
from ..interconnect.packet import MessageClass
from .messages import CoherenceRequestType, EvictionResult, MissResult, ServiceSource
from .protocol_base import GlobalCoherenceProtocol

__all__ = ["SnoopyProtocol"]


class SnoopyProtocol(GlobalCoherenceProtocol):
    """Broadcast snooping over private, dirty DRAM caches."""

    name = "snoopy"
    uses_dram_cache = True
    clean_dram_cache = False

    # ------------------------------------------------------------------
    # Snoop machinery
    # ------------------------------------------------------------------

    def _snoop_socket(
        self,
        now: float,
        requester: int,
        target: int,
        block: int,
        *,
        invalidate: bool,
    ) -> Tuple[float, Optional[ServiceSource]]:
        """Snoop one remote socket.

        Returns ``(latency, data_source)`` where ``data_source`` is non-None
        when the target supplied (dirty) data.  ``invalidate`` selects the
        write-snoop behaviour (all copies at the target are invalidated).
        """
        target_socket = self.socket(target)
        home = self.home_of(block)
        out = self._send(now, requester, target, MessageClass.SNOOP)
        # The snoop filter (the baseline's directory structure) only covers
        # the on-chip caches -- it cannot possibly track the GB-scale DRAM
        # cache, which is the whole storage problem of section III.  Every
        # snoop therefore probes the DRAM-cache array, and that latency is on
        # the critical path of the requester's miss.
        probe = target_socket.snoop_filter_latency_ns
        if target_socket.dram_cache is not None:
            probe += target_socket.dram_cache_latency_ns
        data_source: Optional[ServiceSource] = None

        llc_line = target_socket.llc.peek(block)
        dram_line = (
            target_socket.dram_cache.peek(block)
            if target_socket.dram_cache is not None
            else None
        )

        if llc_line is not None:
            probe += target_socket.llc_latency_ns
            if llc_line.state is CacheBlockState.MODIFIED:
                data_source = ServiceSource.REMOTE_LLC
                if invalidate:
                    target_socket.invalidate_onchip(block)
                else:
                    target_socket.downgrade_block(block)
                    self.stats.downgrades += 1
                    self._memory_write(now + out + probe, home, block, target)
            elif invalidate:
                target_socket.invalidate_onchip(block)
        elif dram_line is not None:
            if dram_line.dirty:
                data_source = ServiceSource.REMOTE_DRAM_CACHE
                if not invalidate:
                    # Keep a clean copy and make memory valid again.
                    target_socket.dram_cache.mark_clean(block)
                    self._memory_write(now + out + probe, home, block, target)

        if invalidate:
            if dram_line is not None and target_socket.dram_cache is not None:
                target_socket.dram_cache.invalidate(block)
            target_socket.invalidate_onchip(block)
            self.stats.invalidations_sent += 1

        response_class = (
            MessageClass.DATA_RESPONSE if data_source is not None else MessageClass.ACK
        )
        back = self._send(now + out + probe, target, requester, response_class)
        return out + probe + back, data_source

    def _memory_path(self, now: float, requester: int, block: int) -> float:
        """Latency of the memory access issued in parallel with the snoops."""
        home = self.home_of(block)
        latency = self._request_to_home(now, requester, home)
        latency += self._memory_read(now + latency, home, block, requester)
        latency += self._data_response(now + latency, home, requester)
        return latency

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def read_miss(self, now: float, requester: int, block: int) -> MissResult:
        hit, local_latency, _dirty = self._probe_local_dram_cache(now, requester, block)
        if hit:
            return MissResult(
                latency=local_latency,
                source=ServiceSource.LOCAL_DRAM_CACHE,
                request_type=CoherenceRequestType.GETS,
            )

        home = self.home_of(block)
        start = now + local_latency
        memory_latency = self._memory_path(start, requester, block)

        snoop_latency = 0.0
        data_source: Optional[ServiceSource] = None
        for target in range(self.num_sockets):
            if target == requester:
                continue
            latency, source = self._snoop_socket(
                start, requester, target, block, invalidate=False
            )
            snoop_latency = max(snoop_latency, latency)
            if source is not None:
                data_source = source

        total = local_latency + max(memory_latency, snoop_latency)
        source = data_source if data_source is not None else self._memory_source(home, requester)
        return MissResult(
            latency=total, source=source, request_type=CoherenceRequestType.GETS
        )

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------

    def write_miss(
        self,
        now: float,
        requester: int,
        block: int,
        *,
        thread_id: int = 0,
        has_shared_copy: bool = False,
    ) -> MissResult:
        request_type = (
            CoherenceRequestType.UPGRADE if has_shared_copy else CoherenceRequestType.GETX
        )
        local_hit = False
        local_latency = 0.0
        if not has_shared_copy:
            local_hit, local_latency, _ = self._probe_local_dram_cache(now, requester, block)

        home = self.home_of(block)
        start = now + local_latency

        snoop_latency = 0.0
        data_source: Optional[ServiceSource] = None
        invalidations = 0
        for target in range(self.num_sockets):
            if target == requester:
                continue
            latency, source = self._snoop_socket(
                start, requester, target, block, invalidate=True
            )
            invalidations += 1
            snoop_latency = max(snoop_latency, latency)
            if source is not None:
                data_source = source

        memory_latency = 0.0
        if has_shared_copy or local_hit:
            source = ServiceSource.LOCAL_DRAM_CACHE if local_hit else ServiceSource.LLC
        elif data_source is not None:
            source = data_source
        else:
            memory_latency = self._memory_path(start, requester, block)
            source = self._memory_source(home, requester)

        total = local_latency + max(memory_latency, snoop_latency)
        self.stats.broadcasts += 1
        if has_shared_copy:
            self.stats.upgrades += 1
        return MissResult(
            latency=total,
            source=source,
            request_type=request_type,
            invalidations=invalidations,
            used_broadcast=True,
        )

    # ------------------------------------------------------------------
    # Evictions
    # ------------------------------------------------------------------

    def llc_eviction(
        self, now: float, requester: int, block: int, *, dirty: bool
    ) -> EvictionResult:
        result = EvictionResult()
        sock = self.socket(requester)
        if sock.dram_cache is not None:
            self._insert_into_dram_cache(now, requester, block, dirty=dirty)
            result.inserted_in_dram_cache = True
        elif dirty:
            home = self.home_of(block)
            result.latency = self._memory_write(now, home, block, requester)
            result.wrote_memory = True
        return result
