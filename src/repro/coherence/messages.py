"""Coherence transaction vocabulary shared by all protocol implementations.

The paper's protocol (Fig. 5) is expressed in terms of GetS / GetX / Upgrade
requests and PutX write-backs exchanged between the LLC, the DRAM-cache
controller and the global directory.  This module defines those request
types, plus the result record a protocol returns to the socket when it
services an LLC miss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["CoherenceRequestType", "ServiceSource", "MissResult"]


class CoherenceRequestType(enum.Enum):
    """Request types from Fig. 5 of the paper."""

    GETS = "GetS"        # read request
    GETX = "GetX"        # write request (requester lacks the data)
    UPGRADE = "Upgrade"  # write request, requester already holds the data in Shared
    PUTX = "PutX"        # write-back of modified data

    __hash__ = object.__hash__  # identity hashing, C-level

    @property
    def is_write(self) -> bool:
        return self in (CoherenceRequestType.GETX, CoherenceRequestType.UPGRADE)


class ServiceSource(enum.Enum):
    """Where a request was ultimately served from (for AMAT breakdowns)."""

    L1 = "l1"
    LOCAL_L1_PEER = "local_l1_peer"
    LLC = "llc"
    LOCAL_DRAM_CACHE = "local_dram_cache"
    LOCAL_MEMORY = "local_memory"
    REMOTE_LLC = "remote_llc"
    REMOTE_DRAM_CACHE = "remote_dram_cache"
    REMOTE_MEMORY = "remote_memory"
    STORE_BUFFER = "store_buffer"

    __hash__ = object.__hash__  # identity hashing, C-level

    @property
    def is_off_socket(self) -> bool:
        return self in (
            ServiceSource.REMOTE_LLC,
            ServiceSource.REMOTE_DRAM_CACHE,
            ServiceSource.REMOTE_MEMORY,
        )

    @property
    def is_memory(self) -> bool:
        return self in (ServiceSource.LOCAL_MEMORY, ServiceSource.REMOTE_MEMORY)


@dataclass(slots=True)
class MissResult:
    """Outcome of a globally serviced LLC miss (or permission upgrade).

    Attributes
    ----------
    latency:
        Critical-path latency of the transaction in nanoseconds, measured
        from the moment the LLC miss is presented to the protocol.
    source:
        Where the data (or write permission) came from.
    request_type:
        The coherence request that was performed.
    invalidations:
        Number of directed invalidation messages sent.
    used_broadcast:
        True when the transaction had to broadcast invalidations
        (C3D write to an untracked block).
    notes:
        Optional free-form tags used by tests and ablations (None until a
        tag is attached; avoids a per-miss list allocation).
    """

    latency: float
    source: ServiceSource
    request_type: CoherenceRequestType
    invalidations: int = 0
    used_broadcast: bool = False
    notes: Optional[List[str]] = None

    @property
    def off_socket(self) -> bool:
        return self.source.is_off_socket


@dataclass(slots=True)
class EvictionResult:
    """Outcome of handing an LLC victim to the protocol."""

    wrote_memory: bool = False
    inserted_in_dram_cache: bool = False
    latency: float = 0.0
    source_note: Optional[str] = None
