"""Coherence substrate: directories, messages, and the non-C3D protocols."""

from .baseline import BaselineProtocol
from .directory import DirectoryCostModel, DirectoryEntry, DirectoryState, GlobalDirectory
from .full_directory import FullDirectoryProtocol
from .local_directory import LocalDirectory, LocalDirectoryEntry
from .messages import CoherenceRequestType, EvictionResult, MissResult, ServiceSource
from .protocol_base import GlobalCoherenceProtocol
from .snoopy import SnoopyProtocol

__all__ = [
    "GlobalCoherenceProtocol",
    "BaselineProtocol",
    "SnoopyProtocol",
    "FullDirectoryProtocol",
    "GlobalDirectory",
    "DirectoryEntry",
    "DirectoryState",
    "DirectoryCostModel",
    "LocalDirectory",
    "LocalDirectoryEntry",
    "CoherenceRequestType",
    "MissResult",
    "EvictionResult",
    "ServiceSource",
]
