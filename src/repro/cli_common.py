"""Shared argparse conventions for every store-touching `repro` subcommand.

``repro campaign``, ``repro report``, ``repro store``, ``repro bench``,
``repro serve`` and ``repro submit`` all accept the same two flags, wired
from the one parent parser built here:

* ``--store PATH`` -- the results-store directory (docs/serving.md).
* ``--json``       -- machine-readable JSON on stdout instead of prose.

Old per-command spellings (e.g. the positional directory of
``repro store verify DIR``) are kept as hidden aliases for one release;
:func:`resolve_store_path` folds them into the unified flag.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Optional

__all__ = ["store_options", "engine_jobs_options", "resolve_store_path"]


def store_options(*, store_help: Optional[str] = None,
                  json_help: Optional[str] = None) -> argparse.ArgumentParser:
    """The shared ``--store PATH`` / ``--json`` parent parser.

    Use with ``argparse.ArgumentParser(parents=[store_options()])`` (or on a
    subparser).  Returns a fresh parser each call, so per-command help text
    overrides never leak between commands.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("common options")
    group.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help=store_help or "results-store directory (docs/serving.md)",
    )
    group.add_argument(
        "--json",
        action="store_true",
        help=json_help or "emit machine-readable JSON instead of prose",
    )
    return parent


def engine_jobs_options() -> argparse.ArgumentParser:
    """The shared ``--engine-jobs N`` parent parser.

    Worker-process count for engines that parallelise a single simulation
    (``sampled-par``, docs/performance.md "Parallel windows").  Purely an
    execution knob: output and store keys are bit-identical at any value,
    and nested parallelism (campaign ``--jobs`` workers, ``repro serve``)
    clamps it to 1.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--engine-jobs",
        type=int,
        metavar="N",
        default=None,
        help="worker processes for parallel engines such as sampled-par "
        "(default: serial)",
    )
    return parent


def resolve_store_path(flag_value: Optional[str],
                       positional_value: Optional[str] = None,
                       *, command: str = "repro") -> Path:
    """Fold the unified ``--store`` flag and a legacy positional into one path.

    The flag wins; the hidden positional (old spelling) is accepted for one
    release.  Raises ``SystemExit`` with a usage message when neither was
    given or the two disagree.
    """
    if flag_value and positional_value and str(flag_value) != str(positional_value):
        raise SystemExit(
            f"{command}: --store {flag_value} conflicts with positional "
            f"store {positional_value!r}; pass --store only"
        )
    chosen = flag_value or positional_value
    if not chosen:
        raise SystemExit(f"{command}: a store directory is required "
                         f"(pass --store PATH)")
    return Path(chosen)
